#!/usr/bin/env bash
# Perf-ratchet driver: the single source of truth for how baselines are
# saved and compared, used verbatim by CI (.github/workflows/ci.yml,
# `perf-ratchet` job) and by local runs — so the invocation can't drift
# between the two.
#
# Usage:
#   scripts/bench-ratchet.sh cycle     [name]   # per bench: save baseline,
#                                               # calibrate (fail on ANY
#                                               # change), ratchet-check
#                                               # (fail on regression)
#   scripts/bench-ratchet.sh save      [name]   # run benches, save baseline
#   scripts/bench-ratchet.sh calibrate [name]   # compare; fail on ANY change
#   scripts/bench-ratchet.sh check     [name]   # compare; fail on regression
#   scripts/bench-ratchet.sh cross     [name]   # cross-commit check: like
#                                               # `check` against a baseline
#                                               # restored from another
#                                               # commit's run (CI caches it
#                                               # keyed on the base branch);
#                                               # skips cleanly when the
#                                               # baseline is absent, and
#                                               # widens the noise threshold
#                                               # (different runner hardware)
#                                               # unless the caller set one
#
# `name` defaults to "ratchet". The benches covered are the closure
# microbenchmark and the engine round-throughput benchmark — one pure
# graph-algorithm kernel and one end-to-end engine hot path.
#
# `cycle` (what CI runs) keeps the save and compare passes of each bench
# **adjacent**: measured on this workload, interposing another bench's
# memory churn between a bench's save and compare passes shifts physical
# page allocation enough to flip cache-aliasing modes (observed 2.4×
# uniform slowdowns on closure/gnp with nothing in between but a big-graph
# bench) — while back-to-back save→compare of the same bench repeats
# within ±2%. Per-bench pairing is what makes the same-runner calibration
# meaningful.
#
# The verdict gates are enforced by the criterion shim itself
# (CRITERION_FAIL_ON_CHANGE / CRITERION_FAIL_ON_REGRESSION; a missing
# baseline record also fails under either gate; comparisons use the
# stall-robust trimmed mean), so a regression fails the process — and
# therefore the CI job — rather than just printing a line.
#
# Local workflow around a change (cross-commit, so the pairing caveat does
# not apply — the runs being compared are the point):
#   git stash && scripts/bench-ratchet.sh save before && git stash pop
#   scripts/bench-ratchet.sh check before

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:?usage: bench-ratchet.sh cycle|save|calibrate|check|cross [baseline-name]}"
BASELINE="${2:-ratchet}"
# bench[:filter] — filter is a CRITERION_FILTER substring list keeping each
# pass short (a multi-minute pass drifts 15-25% on shared runners between
# save and compare; a sub-minute pass repeats within a few percent). The
# closure bench is quick and runs whole; round_throughput is ratcheted on
# its 4096-node rows (AdjSet seq/pool + arena) — the 16k/64k rows' working
# sets straddle cache capacity and flip layout modes 20% between process
# instances, which no same-runner comparison survives. frame_codec (the
# transport's mailbox encode/decode hot path) is quick and runs whole.
BENCHES=(closure round_throughput:4096 frame_codec)
export CRITERION_BASELINE_DIR="${CRITERION_BASELINE_DIR:-target/criterion-baselines}"

one_bench() {
    local bench="${1%%:*}" filter=""
    case "$1" in *:*) filter="${1#*:}" ;; esac
    CRITERION_FILTER="$filter" cargo bench -p gossip-bench --bench "$bench"
}

# Glob matching the baseline record files a bench's ids sanitize to
# (<group>_<name>_<param>.json). Group names usually share the bench
# target's name as a prefix; round_throughput's groups are round/
# round_arena/round_sharded/round_listened.
baseline_glob() {
    case "${1%%:*}" in
        round_throughput) echo "round_*" ;;
        *) echo "${1%%:*}*" ;;
    esac
}

# A gated pass, retried in a fresh process on failure (3 attempts).
# Per-process allocator/ASLR layout shifts cache aliasing enough to move
# some rows 10-25% between process instances of *identical code*; a real
# regression shifts every instance, a layout flip only some, so demanding
# one in-threshold instance out of three separates the two. A genuine
# regression still fails all three attempts.
gated_pass() {
    local attempt
    for attempt in 1 2 3; do
        if "$@"; then
            return 0
        fi
        echo "[bench-ratchet] gated pass failed (attempt $attempt/3)" >&2
    done
    return 1
}

# Compile everything up front: a measured pass must never run in the heat
# (and CPU contention) of a fresh build — a save pass that overlapped
# compilation tail has been observed 30-50% slow, which the calibration
# pass then correctly-but-uselessly flags as an "improvement".
echo "[bench-ratchet] pre-building bench binaries"
cargo bench -p gossip-bench --no-run

for_each_bench() {
    for bench in "${BENCHES[@]}"; do
        one_bench "$bench"
    done
}

case "$MODE" in
    cycle)
        for bench in "${BENCHES[@]}"; do
            echo "[bench-ratchet] $bench 1/3: saving baseline '$BASELINE' (best of 2 runs)"
            # Two save runs with keep-best: the baseline is each row's
            # least-contaminated process instance (layout flips and load
            # bursts only ever slow a run down), symmetric with the
            # retried compare passes below.
            CRITERION_SAVE_BASELINE="$BASELINE" CRITERION_SAVE_KEEP_BEST=1 one_bench "$bench"
            CRITERION_SAVE_BASELINE="$BASELINE" CRITERION_SAVE_KEEP_BEST=1 one_bench "$bench"
            echo "[bench-ratchet] $bench 2/3: calibration (any change verdict fails)"
            CRITERION_BASELINE="$BASELINE" CRITERION_FAIL_ON_CHANGE=1 gated_pass one_bench "$bench"
            echo "[bench-ratchet] $bench 3/3: ratchet (a regression verdict fails)"
            CRITERION_BASELINE="$BASELINE" CRITERION_FAIL_ON_REGRESSION=1 gated_pass one_bench "$bench"
        done
        ;;
    save)
        echo "[bench-ratchet] saving baseline '$BASELINE' -> $CRITERION_BASELINE_DIR"
        CRITERION_SAVE_BASELINE="$BASELINE" for_each_bench
        ;;
    calibrate)
        echo "[bench-ratchet] calibration vs '$BASELINE': any change verdict fails"
        for bench in "${BENCHES[@]}"; do
            CRITERION_BASELINE="$BASELINE" CRITERION_FAIL_ON_CHANGE=1 gated_pass one_bench "$bench"
        done
        ;;
    check)
        echo "[bench-ratchet] ratchet vs '$BASELINE': a regression verdict fails"
        for bench in "${BENCHES[@]}"; do
            CRITERION_BASELINE="$BASELINE" CRITERION_FAIL_ON_REGRESSION=1 gated_pass one_bench "$bench"
        done
        ;;
    cross)
        # The between-PRs ratchet (ROADMAP PR 4 follow-up): the baseline
        # was measured by a *different* CI run on the base branch and
        # restored via the actions cache. First run / evicted cache is not
        # a regression — skip loudly instead of failing. Cross-runner
        # comparisons see different physical hardware, so the default
        # noise threshold is widened well past the same-runner 15%; a real
        # regression (algorithmic, not layout) still clears 40%.
        if ! ls "$CRITERION_BASELINE_DIR/$BASELINE"/*.json >/dev/null 2>&1; then
            echo "[bench-ratchet] no cross-commit baseline '$BASELINE' under $CRITERION_BASELINE_DIR — skipping (cache miss)"
            exit 0
        fi
        echo "[bench-ratchet] cross-commit ratchet vs '$BASELINE': a regression verdict fails"
        # Skip-on-missing is per bench, not per run: a baseline cached
        # before a bench existed (e.g. frame_codec landing after the base
        # branch's run) has records for the other benches but none for the
        # new one, and the shim's missing-record gate would fail it. That
        # is cache staleness, not a regression — skip that bench loudly
        # and still ratchet the benches the baseline does cover.
        for bench in "${BENCHES[@]}"; do
            if ! ls "$CRITERION_BASELINE_DIR/$BASELINE"/$(baseline_glob "$bench").json >/dev/null 2>&1; then
                echo "[bench-ratchet] no cross-commit baseline records for '${bench%%:*}' — skipping this bench (stale cache)"
                continue
            fi
            CRITERION_NOISE_THRESHOLD="${CRITERION_NOISE_THRESHOLD:-0.40}" \
            CRITERION_BASELINE="$BASELINE" CRITERION_FAIL_ON_REGRESSION=1 gated_pass one_bench "$bench"
        done
        ;;
    *)
        echo "error: unknown mode '$MODE' (cycle|save|calibrate|check|cross)" >&2
        exit 2
        ;;
esac
