//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides the API subset the wire-format code uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits. The upstream
//! crate's zero-copy slicing machinery is not reproduced — [`Bytes`] here is
//! an immutable owned buffer — but the encode/decode surface is identical.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Box<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

/// A growable byte buffer used while encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }

    /// Empties the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source. Getters consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`. Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`. Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads one byte, or `None` if the cursor is empty — the checked
    /// form decoders use to reject truncated input without panicking.
    fn try_get_u8(&mut self) -> Option<u8> {
        if self.remaining() < 1 {
            return None;
        }
        Some(self.get_u8())
    }

    /// Reads a little-endian `u32`, or `None` if fewer than 4 bytes remain.
    fn try_get_u32_le(&mut self) -> Option<u32> {
        if self.remaining() < 4 {
            return None;
        }
        Some(self.get_u32_le())
    }

    /// Reads a little-endian `u64`, or `None` if fewer than 8 bytes remain.
    fn try_get_u64_le(&mut self) -> Option<u64> {
        if self.remaining() < 8 {
            return None;
        }
        Some(self.get_u64_le())
    }

    /// Copies `dst.len()` bytes into `dst`. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor onto a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 13);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_moves_the_window() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[3, 4]);
    }

    #[test]
    fn try_getters_refuse_truncated_input() {
        let data = [9u8, 1, 2, 3, 4, 5];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.try_get_u8(), Some(9));
        assert_eq!(
            cursor.try_get_u32_le(),
            Some(u32::from_le_bytes([1, 2, 3, 4]))
        );
        // One byte left: every wider getter declines and consumes nothing.
        assert_eq!(cursor.try_get_u32_le(), None);
        assert_eq!(cursor.try_get_u64_le(), None);
        assert_eq!(cursor.remaining(), 1);
        assert_eq!(cursor.try_get_u8(), Some(5));
        assert_eq!(cursor.try_get_u8(), None);
    }

    #[test]
    fn copy_to_slice_consumes_exactly() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cursor: &[u8] = &data;
        let mut dst = [0u8; 3];
        cursor.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2, 3]);
        assert_eq!(cursor.chunk(), &[4, 5]);
    }

    #[test]
    fn clear_and_reserve_keep_the_allocation() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u32_le(42);
        buf.clear();
        assert!(buf.is_empty());
        buf.reserve(64);
        buf.put_u8(1);
        assert_eq!(buf.len(), 1);
    }
}
