//! Persistent worker pool with dynamic chunk-claiming work distribution.
//!
//! # Architecture
//!
//! A `Pool` owns `k` long-lived worker threads parked on a condvar. A job
//! is an index range `0..len` plus a shared atomic cursor; every executor
//! (the `k` workers *and* the thread that called `Pool::run`, which
//! participates instead of blocking) claims the next `chunk` indices with a
//! `fetch_add` until the range is exhausted. Dynamic distribution replaces
//! rayon's per-thread deques: an executor stuck on an expensive item simply
//! claims fewer chunks, so imbalanced workloads (heavy-tailed Monte Carlo
//! trials) balance themselves without any stealing protocol.
//!
//! # Why determinism survives work stealing
//!
//! Scheduling decides only *which thread* runs index `i`, never *whether* or
//! *with what arguments*: each index is claimed exactly once (the cursor is
//! a single atomic RMW sequence), the closure derives everything from the
//! index, and callers write results into pre-sized per-index slots. The
//! output is therefore bit-identical to a sequential loop regardless of
//! thread count, chunk size, or claim order.
//!
//! # Lifetime safety
//!
//! `Pool::run` type-erases the borrowed job closure to `'static` to hand
//! it to long-lived workers. This is sound because `run` does not return
//! until every claimed index has finished (`completed == len`), and a worker
//! only dereferences the closure after successfully claiming a chunk — which
//! is impossible once the cursor has passed `len`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// How many chunks each executor should claim on average for a balanced
/// workload. Higher = finer grain = better balance but more cursor traffic.
const CHUNKS_PER_EXECUTOR: usize = 8;

/// Picks the claim-chunk size for a job of `len` items across `executors`
/// threads: small enough that every executor gets several claims (dynamic
/// balancing has room to act), never below 1.
pub(crate) fn chunk_size(len: usize, executors: usize) -> usize {
    (len / (executors * CHUNKS_PER_EXECUTOR).max(1)).max(1)
}

/// One submitted job. Shared between the submitting thread and the workers
/// via `Arc`; the closure pointer is only dereferenced under a successful
/// chunk claim (see module docs).
struct Job {
    /// Borrowed from the `run` call, lifetime-erased; valid until
    /// `completed == len`, which `run` blocks on.
    task: &'static (dyn Fn(usize) + Sync),
    len: usize,
    chunk: usize,
    /// Next unclaimed index.
    cursor: AtomicUsize,
    /// Indices fully executed (or abandoned by a panic, which still counts
    /// its whole chunk so completion is always reached).
    completed: AtomicUsize,
    /// First panic payload caught in any executor, rethrown by `run`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: all shared state is atomics / mutexes; `task` is `Sync` and only
// dereferenced while the submitting `run` call keeps the closure alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes chunks until the cursor is exhausted. Called from
    /// both workers and the submitting thread.
    fn execute(&self) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    (self.task)(i);
                }
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            // AcqRel chains every executor's writes through the counter so the
            // submitter's final acquire observes all per-index results.
            let before = self.completed.fetch_add(end - start, Ordering::AcqRel);
            if before + (end - start) == self.len {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Blocks until every index has finished executing.
    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Pool state guarded by one mutex: the current job and a monotonically
/// increasing epoch so a worker never re-runs a job it already drained.
struct State {
    job: Option<Arc<Job>>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    /// Worker threads that have started running, ever. Bounded by the pool
    /// size for the pool's whole lifetime — the observable proof that jobs
    /// ("rounds") spawn zero threads after warm-up.
    started: AtomicUsize,
}

/// A persistent pool of parked worker threads. Dropping it shuts the
/// workers down and joins them; the process-global pool (see
/// [`crate::fan_out`]) lives for the whole process instead.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` parked worker threads (the submitting thread makes
    /// `workers + 1` executors per job).
    pub(crate) fn new(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            started: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("rayon-shim-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn rayon shim pool worker")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Number of executors a job submitted to this pool runs on.
    pub(crate) fn executors(&self) -> usize {
        self.workers.len() + 1
    }

    /// How many worker threads have ever started in this pool. Can never
    /// exceed the pool size: submitting jobs spawns nothing.
    pub(crate) fn threads_started(&self) -> usize {
        self.shared.started.load(Ordering::Relaxed)
    }

    /// Runs `f(i)` for every `i` in `0..len` across the pool, blocking until
    /// all indices complete. Panics in `f` are rethrown here (workers
    /// survive them). Safe to call from several threads at once and from
    /// inside a running job: the submitter always participates, so a job can
    /// never be starved by the pool being busy elsewhere.
    pub(crate) fn run<F: Fn(usize) + Sync>(&self, len: usize, f: F) {
        if len == 0 {
            return;
        }
        let task: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: lifetime erasure only; see module docs ("Lifetime safety").
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task,
            len,
            chunk: chunk_size(len, self.executors()),
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().unwrap();
            state.job = Some(Arc::clone(&job));
            state.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        job.execute();
        job.wait_done();
        {
            // Drop the finished job from the pool slot (unless a concurrent
            // submitter already replaced it) so the lifetime-erased closure
            // reference never outlives this call in reachable state.
            let mut state = self.shared.state.lock().unwrap();
            if state.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                state.job = None;
            }
        }
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: park until a job with a fresh epoch appears, drain it,
/// repeat until shutdown.
fn worker_loop(shared: &Shared) {
    shared.started.fetch_add(1, Ordering::Relaxed);
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    if let Some(job) = state.job.clone() {
                        last_epoch = state.epoch;
                        break job;
                    }
                }
                state = shared.work_cv.wait(state).unwrap();
            }
        };
        job.execute();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn hit_counts(pool: &Pool, len: usize) -> Vec<usize> {
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.run(len, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        hits.into_iter().map(|h| h.into_inner()).collect()
    }

    #[test]
    fn every_index_exactly_once() {
        for workers in [1usize, 2, 3, 7] {
            let pool = Pool::new(workers);
            for len in [0usize, 1, 2, 5, 100, 4096] {
                let hits = hit_counts(&pool, len);
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "workers={workers} len={len}: {hits:?}"
                );
            }
        }
    }

    #[test]
    fn reuse_spawns_no_new_threads() {
        let pool = Pool::new(4);
        for _ in 0..50 {
            let _ = hit_counts(&pool, 1000);
        }
        assert!(
            pool.threads_started() <= 4,
            "50 jobs started {} threads on a 4-worker pool",
            pool.threads_started()
        );
    }

    #[test]
    fn results_independent_of_pool_size() {
        use std::sync::atomic::AtomicU64;
        let expect: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        for workers in [1usize, 2, 5] {
            let pool = Pool::new(workers);
            let out: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            pool.run(500, |i| {
                out[i].store((i as u64) * (i as u64), Ordering::Relaxed);
            });
            let got: Vec<u64> = out.into_iter().map(|s| s.into_inner()).collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(caught.is_err(), "panic must reach the submitter");
        // The pool is still fully functional afterwards.
        let hits = hit_counts(&pool, 64);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn shutdown_joins_workers() {
        let pool = Pool::new(3);
        let _ = hit_counts(&pool, 10);
        drop(pool); // must not hang; joining parked workers exercises shutdown
    }

    #[test]
    fn nested_run_completes() {
        // A job item submitting a sub-job must not deadlock: the inner
        // submitter participates in its own job.
        let pool = Arc::new(Pool::new(2));
        let inner_hits = AtomicUsize::new(0);
        let p2 = Arc::clone(&pool);
        pool.run(4, |_| {
            p2.run(8, |_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn chunk_size_always_positive_and_splits_work() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(1, 4), 1);
        assert_eq!(chunk_size(16, 8), 1); // few heavy items claim one by one
        let c = chunk_size(65_536, 8);
        assert!(c >= 1 && c * 8 <= 65_536, "chunk {c} too coarse");
    }
}
