//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `into_par_iter().map(..).collect()` and `par_iter_mut().enumerate()
//! .for_each(..)` — on top of a **persistent worker pool** ([`pool`]):
//! `RAYON_NUM_THREADS - 1` long-lived parked workers plus the submitting
//! thread claim small index chunks off a shared atomic cursor, so one call
//! costs a queue push and a few wakeups instead of per-call thread spawns,
//! and imbalanced items rebalance dynamically. Results are written by index
//! into pre-sized slots, so output is bit-identical to the sequential run
//! regardless of scheduling. Single-threaded configurations and empty
//! inputs skip the pool entirely.

pub mod pool;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of executors to fan out across: `RAYON_NUM_THREADS` if set
/// (upstream rayon honors the same variable), else the available cores.
/// Read and parsed once per process — per-call env lookups were measurable
/// per-round overhead — matching upstream rayon's fixed global pool size.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The process-global pool, built on first parallel call: the submitting
/// thread is one executor, so only `current_num_threads() - 1` workers are
/// spawned. `None` when configured single-threaded.
fn global_pool() -> Option<&'static pool::Pool> {
    static POOL: OnceLock<Option<pool::Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = current_num_threads();
        (threads > 1).then(|| pool::Pool::new(threads - 1))
    })
    .as_ref()
}

/// How many worker threads the global pool has ever started: `0` before the
/// first parallel call (or when configured single-threaded), at most
/// `current_num_threads() - 1` forever after. Exposed so tests and benches
/// can assert that steady-state parallel calls spawn zero threads.
pub fn global_pool_threads_started() -> usize {
    global_pool().map_or(0, pool::Pool::threads_started)
}

/// Runs `f` on `idx` for every index in `0..len` across the global pool.
/// `f` must be callable concurrently from several threads.
///
/// Every call with two or more items parallelizes: item cost is unknowable
/// here, and the expensive callers (Monte Carlo trials, where each item is a
/// whole multi-second simulation but there are only a handful of them) are
/// exactly the ones a per-thread minimum-batch heuristic would serialize.
/// After pool warm-up the price is a queue push plus condvar wakeups (~a few
/// µs) and zero thread spawns — cheap enough that `Parallelism::Auto`
/// engages the engine's parallel path from a few thousand nodes.
///
/// Public (alongside [`fan_out_with`]) so the pool and the legacy
/// spawn-per-call strategy can be benchmarked against each other on an
/// identical kernel.
pub fn fan_out<F: Fn(usize) + Sync>(len: usize, f: F) {
    match global_pool() {
        Some(pool) if len >= 2 => pool.run(len, f),
        _ => {
            for i in 0..len {
                f(i);
            }
        }
    }
}

/// Legacy spawn-per-call fan-out: one contiguous chunk per worker under
/// `std::thread::scope`, no dynamic distribution. Kept `pub` as the
/// unit-test hook for exercising explicit worker counts on single-core
/// machines and as the baseline the pool is benchmarked against
/// (`gossip-bench/benches/parallel.rs`).
pub fn fan_out_with<F: Fn(usize) + Sync>(workers: usize, len: usize, f: F) {
    let workers = workers.min(len);
    if workers <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let lo = w * chunk;
            if lo >= len {
                // workers > len (or rounding) would otherwise spawn threads
                // with an empty range — pure wasted spawns.
                break;
            }
            let hi = ((w + 1) * chunk).min(len);
            scope.spawn(move || {
                for i in lo..hi {
                    f(i);
                }
            });
        }
    });
}

/// Conversion into a "parallel" iterator. Blanket-implemented for every
/// `IntoIterator` whose items are `Send`, mirroring how rayon is used at
/// the call sites (`(0..n).into_par_iter()`, `vec.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialized parallel iterator: items are buffered, adapters run the
/// heavy closure across threads while preserving order.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let len = self.items.len();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let mut inputs: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        // Each index is touched by exactly one thread, so per-slot mutation
        // through a shared pointer is race-free.
        let inputs_ptr = SharedSlots(inputs.as_mut_ptr());
        let slots_ptr = SharedSlots(slots.as_mut_ptr());
        let f = &f;
        fan_out(len, move |i| {
            let item = unsafe { (*inputs_ptr.slot(i)).take().expect("item taken twice") };
            unsafe { *slots_ptr.slot(i) = Some(f(item)) };
        });
        drop(inputs);
        ParIter {
            items: slots
                .into_iter()
                .map(|s| s.expect("slot unfilled"))
                .collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f);
    }

    /// Collects the (order-preserved) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Shared mutable slot array handed to worker threads. Safety contract:
/// distinct threads only ever touch distinct indices. Access goes through
/// [`SharedSlots::slot`] so closures capture the `Sync` wrapper, not the
/// raw pointer field (edition-2021 capture is per-field).
struct SharedSlots<T>(*mut T);

impl<T> SharedSlots<T> {
    /// Pointer to slot `i`. Caller guarantees `i` is in bounds and not
    /// accessed concurrently from another thread.
    fn slot(self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl<T> Clone for SharedSlots<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SharedSlots<T> {}

unsafe impl<T: Send> Send for SharedSlots<T> {}
unsafe impl<T: Send> Sync for SharedSlots<T> {}

/// `par_iter_mut` on slices (and everything that derefs to them).
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        ParEnumerateMut { slice: self.slice }.for_each(move |(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `&mut T`.
pub struct ParEnumerateMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    /// Runs `f` on every `(index, &mut element)` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let base = SharedSlots(self.slice.as_mut_ptr());
        let f = &f;
        fan_out(self.slice.len(), move |i| {
            f((i, unsafe { &mut *base.slot(i) }));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..10_000).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn small_inputs_work() {
        let out: Vec<u32> = vec![5u32].into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, vec![6]);
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|i| i + 1).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn par_iter_mut_enumerate_touches_every_slot() {
        let mut v = vec![0usize; 5_000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        for (i, &got) in v.iter().enumerate() {
            assert_eq!(got, i * i);
        }
    }

    #[test]
    fn threaded_fan_out_covers_every_index_exactly_once() {
        // Force multi-worker paths even on single-core machines, including
        // worker counts that don't divide the length.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for (workers, len) in [(2, 2), (3, 10), (4, 4), (8, 5), (7, 1000)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            crate::fan_out_with(workers, len, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers={workers} len={len} missed or repeated an index"
            );
        }
    }

    #[test]
    fn fan_out_with_more_workers_than_items() {
        // Regression: workers > len used to spawn threads with lo >= len
        // (empty ranges). Every index must still run exactly once and no
        // worker may see an out-of-bounds range.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for (workers, len) in [(4, 0), (4, 1), (8, 3), (64, 5), (7, 6)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            crate::fan_out_with(workers, len, |i| {
                assert!(i < len, "index {i} out of range (len {len})");
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers={workers} len={len} missed or repeated an index"
            );
        }
    }

    #[test]
    fn adapters_reuse_the_global_pool() {
        // Repeated parallel-iterator calls run on the same persistent pool:
        // the pool's started-thread count stays bounded by its size no
        // matter how many jobs are submitted (single-threaded configs
        // trivially satisfy this with a count of zero).
        for _ in 0..20 {
            let out: Vec<usize> = (0..1_000).into_par_iter().map(|i| i * 3).collect();
            assert_eq!(out[999], 2_997);
        }
        let cap = crate::current_num_threads().saturating_sub(1);
        assert!(
            crate::global_pool_threads_started() <= cap,
            "global pool started {} threads, configured cap {cap}",
            crate::global_pool_threads_started()
        );
    }

    #[test]
    fn map_actually_runs_every_closure_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = (0..1_000)
            .into_par_iter()
            .map(|i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i
            })
            .collect();
        assert_eq!(calls.load(Ordering::Relaxed), 1_000);
        assert_eq!(out.len(), 1_000);
    }
}
