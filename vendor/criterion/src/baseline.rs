//! Baseline persistence and comparison.
//!
//! Criterion upstream stores per-benchmark estimates under `--save-baseline`
//! and compares against them with `--baseline`. Cargo's libtest harness owns
//! argv in this shim, so the same workflow runs off environment variables
//! instead:
//!
//! * `CRITERION_SAVE_BASELINE=<name>` — after measuring, write each
//!   benchmark's record as JSON under
//!   `<dir>/<name>/<sanitized-bench-id>.json`.
//! * `CRITERION_BASELINE=<name>` — load the stored record for each
//!   benchmark and print a change verdict next to the measurement.
//! * `CRITERION_BASELINE_DIR` — storage root (default
//!   `target/criterion-baselines`).
//! * `CRITERION_NOISE_THRESHOLD` — relative mean change treated as noise
//!   (default `0.05`).
//!
//! Records round-trip through the vendored serde shim: `derive(Serialize)`
//! renders the struct to JSON, `derive(Deserialize)` parses it back.

use crate::stats::SampleStats;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One benchmark's persisted estimate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// Fully qualified benchmark id (`group/function/param`).
    pub id: String,
    /// Number of timed samples behind the estimate.
    pub samples: u64,
    /// Sample mean in nanoseconds.
    pub mean_ns: f64,
    /// Tukey-trimmed mean in nanoseconds — the stall-robust estimate
    /// [`compare`] gates on (shared-runner preemption only ever inflates
    /// the plain mean, and only in one direction).
    pub trimmed_mean_ns: f64,
    /// Sample standard deviation in nanoseconds.
    pub stddev_ns: f64,
    /// Lower bound of the bootstrap 95% CI for the mean.
    pub ci_lo_ns: f64,
    /// Upper bound of the bootstrap 95% CI for the mean.
    pub ci_hi_ns: f64,
}

impl BaselineRecord {
    /// Builds the persistable record for one benchmark run.
    pub fn new(id: &str, stats: &SampleStats) -> BaselineRecord {
        BaselineRecord {
            id: id.to_owned(),
            samples: stats.n as u64,
            mean_ns: stats.mean_ns,
            trimmed_mean_ns: stats.trimmed_mean_ns,
            stddev_ns: stats.stddev_ns,
            ci_lo_ns: stats.ci.lo,
            ci_hi_ns: stats.ci.hi,
        }
    }
}

/// Change-vs-baseline verdict for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// The mean moved less than the noise threshold, or the confidence
    /// intervals overlap: statistically indistinguishable.
    NoChange,
    /// Mean time dropped by the contained relative amount (e.g. `0.12` =
    /// 12% faster).
    Improved(f64),
    /// Mean time rose by the contained relative amount.
    Regressed(f64),
}

/// Compares a fresh measurement against a stored baseline.
///
/// The verdict is `NoChange` unless the relative **trimmed-mean** change
/// exceeds `noise_threshold` AND the two confidence intervals are
/// disjoint — both gates must trip before a difference is believed. The
/// trimmed mean (mild-Tukey-fence inliers) is the location estimate
/// because shared-runner preemption contaminates samples one-sidedly: a
/// single 10× stall drags the plain mean tens of percent but leaves the
/// trimmed mean untouched, and a perf ratchet must not flake on it.
/// Pure and deterministic: identical inputs always produce
/// [`Verdict::NoChange`].
pub fn compare(
    current: &BaselineRecord,
    baseline: &BaselineRecord,
    noise_threshold: f64,
) -> Verdict {
    let rel = (current.trimmed_mean_ns - baseline.trimmed_mean_ns) / baseline.trimmed_mean_ns;
    let cis_overlap =
        current.ci_lo_ns <= baseline.ci_hi_ns && baseline.ci_lo_ns <= current.ci_hi_ns;
    if rel.abs() <= noise_threshold || cis_overlap {
        Verdict::NoChange
    } else if rel < 0.0 {
        Verdict::Improved(-rel)
    } else {
        Verdict::Regressed(rel)
    }
}

/// Maps a benchmark id to a filesystem-safe file name.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Storage root: `CRITERION_BASELINE_DIR` or `target/criterion-baselines`.
pub fn baseline_dir() -> PathBuf {
    std::env::var_os("CRITERION_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/criterion-baselines"))
}

fn record_path(dir: &Path, name: &str, id: &str) -> PathBuf {
    dir.join(sanitize(name))
        .join(format!("{}.json", sanitize(id)))
}

/// Persists `record` under baseline `name`.
pub fn save(dir: &Path, name: &str, record: &BaselineRecord) -> std::io::Result<()> {
    let path = record_path(dir, name, &record.id);
    std::fs::create_dir_all(path.parent().expect("record path has a parent"))?;
    let json = serde_json::to_string_pretty(record).expect("record serialization");
    std::fs::write(path, json)
}

/// A record written before `trimmed_mean_ns` existed. Kept so baselines
/// saved by an older build still load (the documented cross-commit
/// ratchet workflow saves on the base commit and compares after the
/// change — which may itself be the change that added the field).
#[derive(Deserialize)]
struct LegacyBaselineRecord {
    id: String,
    samples: u64,
    mean_ns: f64,
    stddev_ns: f64,
    ci_lo_ns: f64,
    ci_hi_ns: f64,
}

/// Loads the record for `id` from baseline `name`, or `None` if absent or
/// unreadable (a missing baseline is reported, not fatal). Pre-trimmed-mean
/// records load with `trimmed_mean_ns` defaulted to the plain mean.
pub fn load(dir: &Path, name: &str, id: &str) -> Option<BaselineRecord> {
    let text = std::fs::read_to_string(record_path(dir, name, id)).ok()?;
    if let Ok(rec) = serde_json::from_str(&text) {
        return Some(rec);
    }
    let legacy: LegacyBaselineRecord = serde_json::from_str(&text).ok()?;
    Some(BaselineRecord {
        id: legacy.id,
        samples: legacy.samples,
        mean_ns: legacy.mean_ns,
        trimmed_mean_ns: legacy.mean_ns,
        stddev_ns: legacy.stddev_ns,
        ci_lo_ns: legacy.ci_lo_ns,
        ci_hi_ns: legacy.ci_hi_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mean: f64, half_width: f64) -> BaselineRecord {
        BaselineRecord {
            id: "g/bench/64".into(),
            samples: 20,
            mean_ns: mean,
            trimmed_mean_ns: mean,
            stddev_ns: half_width,
            ci_lo_ns: mean - half_width,
            ci_hi_ns: mean + half_width,
        }
    }

    #[test]
    fn roundtrip_through_serde_shim() {
        let rec = BaselineRecord {
            id: "group/func/1024".into(),
            samples: 48,
            mean_ns: 10234.5678,
            trimmed_mean_ns: 10180.25,
            stddev_ns: 123.25,
            ci_lo_ns: 10100.0,
            ci_hi_ns: 10400.0,
        };
        let json = serde_json::to_string_pretty(&rec).unwrap();
        let back: BaselineRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn legacy_record_without_trimmed_mean_loads() {
        // A record saved before trimmed_mean_ns existed must still load,
        // defaulting the trimmed mean to the plain mean — otherwise every
        // cross-commit comparison spanning that change reports "no
        // baseline record" and fails the verdict gates spuriously.
        let dir = std::env::temp_dir().join(format!("criterion-legacy-{}", std::process::id()));
        let path = dir.join("old").join("g_bench_64.json");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(
            &path,
            r#"{"id":"g/bench/64","samples":20,"mean_ns":5000.0,
               "stddev_ns":100.0,"ci_lo_ns":4900.0,"ci_hi_ns":5100.0}"#,
        )
        .unwrap();
        let rec = load(&dir, "old", "g/bench/64").expect("legacy record should load");
        assert_eq!(rec.mean_ns, 5000.0);
        assert_eq!(rec.trimmed_mean_ns, 5000.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        let rec = record(5000.0, 100.0);
        save(&dir, "main", &rec).unwrap();
        let back = load(&dir, "main", &rec.id).unwrap();
        assert_eq!(back, rec);
        assert!(load(&dir, "main", "unknown/bench").is_none());
        assert!(load(&dir, "other", &rec.id).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_bench_reports_no_change_deterministically() {
        let rec = record(8000.0, 50.0);
        for _ in 0..10 {
            assert_eq!(compare(&rec, &rec, 0.05), Verdict::NoChange);
        }
    }

    #[test]
    fn overlapping_cis_suppress_small_shifts() {
        // 3% shift with overlapping intervals: noise.
        let base = record(10000.0, 600.0);
        let cur = record(10300.0, 600.0);
        assert_eq!(compare(&cur, &base, 0.01), Verdict::NoChange);
    }

    #[test]
    fn stalls_do_not_move_the_verdict() {
        // A contaminated current run: the plain mean jumped 40% (one big
        // stall) but the trimmed mean — what honest iterations cost — is
        // unchanged. CIs even end up disjoint; the verdict must still be
        // NoChange because the robust estimate did not move.
        let base = record(10000.0, 100.0);
        let mut cur = record(10000.0, 100.0);
        cur.mean_ns = 14000.0;
        cur.ci_lo_ns = 11000.0;
        cur.ci_hi_ns = 17000.0;
        assert_eq!(compare(&cur, &base, 0.05), Verdict::NoChange);
    }

    #[test]
    fn clear_shifts_are_classified() {
        let base = record(10000.0, 100.0);
        let slow = record(15000.0, 100.0);
        let fast = record(5000.0, 100.0);
        match compare(&slow, &base, 0.05) {
            Verdict::Regressed(r) => assert!((r - 0.5).abs() < 1e-9),
            v => panic!("expected regression, got {v:?}"),
        }
        match compare(&fast, &base, 0.05) {
            Verdict::Improved(r) => assert!((r - 0.5).abs() < 1e-9),
            v => panic!("expected improvement, got {v:?}"),
        }
    }

    #[test]
    fn sanitize_keeps_ids_readable() {
        assert_eq!(sanitize("group/bench idx=3"), "group_bench_idx_3");
    }
}
