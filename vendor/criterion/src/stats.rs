//! Sample statistics for timed benchmark runs.
//!
//! All estimators are reused from `gossip-analysis` (the workspace's
//! statistics crate) rather than duplicated: Welford summaries, the seeded
//! percentile bootstrap, and Tukey-fence outlier classification.

use gossip_analysis::{
    bootstrap_mean_ci, classify_outliers, trimmed_mean, ConfidenceInterval, OutlierCounts, Summary,
};
use std::time::Duration;

/// Bootstrap resamples per benchmark. Enough for a stable 95% interval on
/// the ≤ 100-sample runs the harness produces, cheap next to the timing.
const BOOTSTRAP_RESAMPLES: usize = 2_000;

/// Confidence level reported for the mean.
pub const CONFIDENCE_LEVEL: f64 = 0.95;

/// Full statistical description of one benchmark's timed samples, in
/// nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleStats {
    /// Number of timed samples.
    pub n: usize,
    /// Sample mean.
    pub mean_ns: f64,
    /// Mean of the samples inside the mild Tukey fences — the stall-robust
    /// estimate baseline comparisons gate on (a preempted iteration only
    /// ever inflates the plain mean).
    pub trimmed_mean_ns: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub stddev_ns: f64,
    /// Interpolated median.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Bootstrap 95% confidence interval for the mean.
    pub ci: ConfidenceInterval,
    /// Tukey-fence outlier classification of the samples.
    pub outliers: OutlierCounts,
}

impl SampleStats {
    /// Analyzes a non-empty set of timed samples. Deterministic in `seed`
    /// (which drives only the bootstrap resampling).
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn from_durations(samples: &[Duration], seed: u64) -> SampleStats {
        let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        let summary = Summary::of(&ns);
        SampleStats {
            n: ns.len(),
            mean_ns: summary.mean,
            trimmed_mean_ns: trimmed_mean(&ns),
            stddev_ns: summary.stddev,
            median_ns: summary.median,
            min_ns: summary.min,
            max_ns: summary.max,
            ci: bootstrap_mean_ci(&ns, BOOTSTRAP_RESAMPLES, CONFIDENCE_LEVEL, seed),
            outliers: classify_outliers(&ns),
        }
    }
}

/// Formats a nanosecond quantity with an auto-selected unit, 4 significant
/// digits — `1234.0` → `"1.234 µs"`.
pub fn fmt_ns(ns: f64) -> String {
    let (value, unit) = if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    };
    if value < 10.0 {
        format!("{value:.3} {unit}")
    } else if value < 100.0 {
        format!("{value:.2} {unit}")
    } else {
        format!("{value:.1} {unit}")
    }
}

/// Renders the outlier counts compactly, e.g. `"2 outliers (1 mild, 1 severe)"`,
/// or `"no outliers"`.
pub fn fmt_outliers(o: &OutlierCounts) -> String {
    let total = o.total();
    if total == 0 {
        return "no outliers".to_owned();
    }
    let mild = o.low_mild + o.high_mild;
    let severe = o.low_severe + o.high_severe;
    let mut parts = Vec::new();
    if mild > 0 {
        parts.push(format!("{mild} mild"));
    }
    if severe > 0 {
        parts.push(format!("{severe} severe"));
    }
    format!("{total} outliers ({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durs(ns: &[u64]) -> Vec<Duration> {
        ns.iter().map(|&n| Duration::from_nanos(n)).collect()
    }

    #[test]
    fn stats_are_deterministic_in_seed() {
        let samples = durs(&[100, 110, 105, 95, 102, 99, 104, 101]);
        let a = SampleStats::from_durations(&samples, 7);
        let b = SampleStats::from_durations(&samples, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_match_hand_computation() {
        let samples = durs(&[100, 200, 300, 400]);
        let s = SampleStats::from_durations(&samples, 1);
        assert_eq!(s.n, 4);
        assert!((s.mean_ns - 250.0).abs() < 1e-9);
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.max_ns, 400.0);
        assert!((s.median_ns - 250.0).abs() < 1e-9);
        assert!(s.ci.lo <= s.mean_ns && s.mean_ns <= s.ci.hi);
    }

    #[test]
    fn outlier_sample_is_flagged() {
        let mut raw = vec![100u64; 20];
        raw.push(100_000);
        let s = SampleStats::from_durations(&durs(&raw), 3);
        assert!(s.outliers.total() >= 1, "outliers: {:?}", s.outliers);
        assert_eq!(s.outliers.high_severe, 1);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_ns(512.0), "512.0 ns");
        assert_eq!(fmt_ns(1234.0), "1.234 µs");
        assert_eq!(fmt_ns(45_600_000.0), "45.60 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
