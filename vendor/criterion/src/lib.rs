//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], throughput annotation, and
//! the [`criterion_group!`]/[`criterion_main!`] entry points. Each benchmark
//! runs `sample_size` timed samples after a short warm-up and prints
//! `name: median time [min .. max]`. No statistics beyond that — upstream's
//! outlier analysis, plots, and baselines are out of scope; the point is
//! that `cargo bench` compiles and produces honest numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup per measured batch. The shim times
/// every routine invocation individually, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark manager. One per `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.into_id(), |b| f(b));
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples to record.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = self.qualified(id.into_id());
        let mut bencher = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut bencher);
        bencher.report(&full, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn qualified(&self, id: String) -> String {
        if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Bencher {
            warm_up,
            measurement,
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the budget elapses (at least once).
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement: `sample_size` timed runs, capped by the time budget
        // (but always at least one sample).
        let deadline = Instant::now() + self.measurement;
        for done in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline && done > 0 {
                break;
            }
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let (min, max) = (self.samples[0], self.samples[self.samples.len() - 1]);
        let rate = throughput.map_or(String::new(), |t| {
            let per_sec = |count: u64| count as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", per_sec(n)),
            }
        });
        println!("{name}: {median:?} [{min:?} .. {max:?}]{rate}");
    }
}

/// Declares a group-runner function that benches each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shape_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
