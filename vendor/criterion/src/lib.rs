//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! A statistics-bearing harness with criterion's API shape: groups,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], throughput annotation, and
//! the [`criterion_group!`]/[`criterion_main!`] entry points. Each benchmark
//! runs `sample_size` timed samples after a short warm-up and reports
//!
//! * sample **mean ± bootstrap 95% CI**, standard deviation, median, range;
//! * **Tukey-fence outlier counts** (mild / severe);
//! * a **throughput rate** when the group carries a [`Throughput`];
//! * a **change-vs-baseline verdict** when a baseline is loaded.
//!
//! Estimators are reused from `gossip-analysis` (Welford summary, seeded
//! percentile bootstrap, IQR fences) — see [`stats`]. Baselines persist as
//! JSON through the vendored serde shim and are driven by environment
//! variables (`CRITERION_SAVE_BASELINE` / `CRITERION_BASELINE`) because
//! cargo's libtest harness owns argv — see [`baseline`] for the full
//! workflow. Upstream's plots and HTML reports remain out of scope.
//!
//! The bootstrap is seeded (`CRITERION_SEED`, default fixed), so the
//! statistical pipeline is fully deterministic given the timed samples:
//! identical samples produce byte-identical reports and a guaranteed
//! "no change" self-comparison.

pub mod baseline;
pub mod stats;

use baseline::{compare, BaselineRecord, Verdict};
use stats::{fmt_ns, fmt_outliers, SampleStats};
use std::fmt::Display;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmarks whose comparison verdict was `Regressed` this process.
static REGRESSIONS: AtomicUsize = AtomicUsize::new(0);
/// Benchmarks whose comparison verdict was `Improved` this process.
static IMPROVEMENTS: AtomicUsize = AtomicUsize::new(0);
/// Benchmarks for which `CRITERION_BASELINE` was set but no record existed.
static MISSING_BASELINES: AtomicUsize = AtomicUsize::new(0);

/// Whether env var `name` is set to a truthy value (anything but `0`/empty).
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Whether `CRITERION_FILTER` (comma-separated substrings) admits this
/// fully qualified benchmark id. No filter, or an empty one, admits all.
fn filter_allows(id: &str) -> bool {
    match std::env::var("CRITERION_FILTER") {
        Ok(f) if !f.is_empty() => f.split(',').any(|pat| !pat.is_empty() && id.contains(pat)),
        _ => true,
    }
}

/// CI gate decision: with the given env flags and verdict counts, should
/// the bench process exit nonzero? Pure, so the policy is unit-testable.
///
/// * `CRITERION_FAIL_ON_REGRESSION` — fail when any benchmark regressed.
/// * `CRITERION_FAIL_ON_CHANGE` — fail when any benchmark changed in
///   either direction (the ratchet's *calibration* mode: identical code
///   compared against its own baseline must verdict "no change", or the
///   runner is too noisy for the ratchet to mean anything).
///
/// Under either flag a **missing baseline record** also fails: a renamed
/// or added benchmark would otherwise skip comparison silently and turn
/// the ratchet into a no-op.
fn should_fail(
    fail_on_regression: bool,
    fail_on_change: bool,
    regressions: usize,
    improvements: usize,
    missing: usize,
) -> Option<String> {
    if (fail_on_regression || fail_on_change) && missing > 0 {
        return Some(format!("{missing} benchmark(s) had no baseline record"));
    }
    if fail_on_regression && regressions > 0 {
        return Some(format!("{regressions} benchmark(s) REGRESSED vs baseline"));
    }
    if fail_on_change && regressions + improvements > 0 {
        return Some(format!(
            "{} benchmark(s) changed vs baseline (calibration expects 'no change')",
            regressions + improvements
        ));
    }
    None
}

/// Exits with status 1 if a configured verdict gate tripped. Called by the
/// `main` that [`criterion_main!`] generates, after every group has run,
/// so a single run reports *all* verdicts before failing.
pub fn exit_if_verdict_gate_tripped() {
    if let Some(reason) = should_fail(
        env_flag("CRITERION_FAIL_ON_REGRESSION"),
        env_flag("CRITERION_FAIL_ON_CHANGE"),
        REGRESSIONS.load(Ordering::Relaxed),
        IMPROVEMENTS.load(Ordering::Relaxed),
        MISSING_BASELINES.load(Ordering::Relaxed),
    ) {
        eprintln!("criterion verdict gate: {reason}");
        std::process::exit(1);
    }
}

/// How `iter_batched` amortizes setup per measured batch. The shim runs
/// setup once per sample, **outside the timed region**, and times every
/// routine invocation individually; the variants only document upstream's
/// amortization intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark manager. One per `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id.into_id(), |b| f(b));
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many timed samples to record.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group — unless `CRITERION_FILTER`
    /// excludes it. The filter is a comma-separated list of substrings;
    /// a benchmark runs when its fully qualified id contains any of them
    /// (no filter = run everything). The perf ratchet uses this to keep
    /// each save/compare pass short: on shared runners, multi-minute
    /// passes drift 15–25% between save and compare from background load
    /// alone, while sub-minute passes repeat within a few percent.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = self.qualified(id.into_id());
        if !filter_allows(&full) {
            return self;
        }
        let mut bencher = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut bencher);
        bencher.report(&full, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn qualified(&self, id: String) -> String {
        if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Bencher {
            warm_up,
            measurement,
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on fresh inputs from `setup`. Setup runs outside the
    /// timed region: only the `routine` call between `Instant::now()` and
    /// `elapsed()` lands in the sample, however slow input construction is
    /// (pinned by a regression test below).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the budget elapses (at least once).
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement: `sample_size` timed runs, capped by the time budget
        // (but always at least one sample). The routine's output is dropped
        // only after `elapsed()` is taken, so a large returned value's
        // destructor does not inflate the sample (upstream criterion makes
        // the same guarantee).
        let deadline = Instant::now() + self.measurement;
        for done in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            self.samples.push(start.elapsed());
            drop(output);
            if Instant::now() >= deadline && done > 0 {
                break;
            }
        }
    }

    /// Analyzes the recorded samples with the per-benchmark bootstrap seed.
    fn analyze(&self, name: &str) -> Option<SampleStats> {
        if self.samples.is_empty() {
            return None;
        }
        Some(SampleStats::from_durations(&self.samples, bench_seed(name)))
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        let Some(stats) = self.analyze(name) else {
            println!("{name}: no samples recorded");
            return;
        };
        let rate = throughput.map_or(String::new(), |t| {
            let per_sec = |count: u64| count as f64 * 1e9 / stats.mean_ns;
            match t {
                Throughput::Elements(n) => format!(", {:.3e} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!(", {:.3e} B/s", per_sec(n)),
            }
        });
        println!(
            "{name}: mean {} ± {} [95% CI {} .. {}], sd {}, median {}, \
             range [{} .. {}], {} samples, {}{rate}",
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.ci.half_width()),
            fmt_ns(stats.ci.lo),
            fmt_ns(stats.ci.hi),
            fmt_ns(stats.stddev_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.n,
            fmt_outliers(&stats.outliers),
        );

        let record = BaselineRecord::new(name, &stats);
        let dir = baseline::baseline_dir();
        if let Ok(compare_to) = std::env::var("CRITERION_BASELINE") {
            match baseline::load(&dir, &compare_to, name) {
                Some(base) => {
                    // Displayed % matches what the verdict gates on: the
                    // stall-robust trimmed mean, not the plain mean.
                    let rel =
                        (record.trimmed_mean_ns - base.trimmed_mean_ns) / base.trimmed_mean_ns;
                    let verdict = match compare(&record, &base, noise_threshold()) {
                        Verdict::NoChange => "no change (within noise)".to_owned(),
                        Verdict::Improved(r) => {
                            IMPROVEMENTS.fetch_add(1, Ordering::Relaxed);
                            format!("improved ({:.1}% faster)", r * 100.0)
                        }
                        Verdict::Regressed(r) => {
                            REGRESSIONS.fetch_add(1, Ordering::Relaxed);
                            format!("REGRESSED ({:.1}% slower)", r * 100.0)
                        }
                    };
                    println!(
                        "{name}: change vs baseline '{compare_to}' (trimmed mean {}): {:+.1}% — {verdict}",
                        fmt_ns(base.trimmed_mean_ns),
                        rel * 100.0,
                    );
                }
                None => {
                    MISSING_BASELINES.fetch_add(1, Ordering::Relaxed);
                    println!("{name}: baseline '{compare_to}' has no record for this id");
                }
            }
        }
        if let Ok(save_as) = std::env::var("CRITERION_SAVE_BASELINE") {
            // Keep-best mode: only overwrite an existing record if this
            // process measured *faster* (lower trimmed mean). Repeating
            // the save pass then keeps each benchmark's least-contaminated
            // process instance — per-process allocator/ASLR layout and
            // background load only ever slow a run down, so the fastest
            // instance is the honest baseline for a ratchet.
            let superseded = env_flag("CRITERION_SAVE_KEEP_BEST")
                && baseline::load(&dir, &save_as, name)
                    .is_some_and(|old| old.trimmed_mean_ns <= record.trimmed_mean_ns);
            if superseded {
                println!("{name}: baseline '{save_as}' kept (existing record is faster)");
            } else if let Err(e) = baseline::save(&dir, &save_as, &record) {
                eprintln!("{name}: could not save baseline '{save_as}': {e}");
            }
        }
    }
}

/// Bootstrap seed for one benchmark: `CRITERION_SEED` (default `0xC51`)
/// mixed with an FNV-1a hash of the benchmark id, so every benchmark gets a
/// distinct but reproducible resampling stream.
fn bench_seed(name: &str) -> u64 {
    let env_seed = std::env::var("CRITERION_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC51);
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    env_seed ^ hash
}

/// Relative mean change treated as measurement noise
/// (`CRITERION_NOISE_THRESHOLD`, default 5%).
fn noise_threshold() -> f64 {
    std::env::var("CRITERION_NOISE_THRESHOLD")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05)
}

/// Declares a group-runner function that benches each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, then enforcing the verdict
/// gates (`CRITERION_FAIL_ON_REGRESSION` / `CRITERION_FAIL_ON_CHANGE`) so
/// a CI perf ratchet can fail the process on a regression verdict.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::exit_if_verdict_gate_tripped();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_gate_policy() {
        // No flags: never fails, whatever happened.
        assert!(should_fail(false, false, 5, 5, 5).is_none());
        // Regression gate: trips on regressions only.
        assert!(should_fail(true, false, 0, 0, 0).is_none());
        assert!(should_fail(true, false, 0, 3, 0).is_none());
        assert!(should_fail(true, false, 1, 0, 0).is_some());
        // Change gate (calibration): trips on either direction.
        assert!(should_fail(false, true, 0, 0, 0).is_none());
        assert!(should_fail(false, true, 0, 1, 0).is_some());
        assert!(should_fail(false, true, 1, 0, 0).is_some());
        // A missing baseline record fails under either gate — a silently
        // skipped comparison must not read as a pass.
        assert!(should_fail(true, false, 0, 0, 1).is_some());
        assert!(should_fail(false, true, 0, 0, 1).is_some());
        assert!(should_fail(false, false, 0, 0, 1).is_none());
    }

    #[test]
    fn verdict_gate_messages_name_the_cause() {
        assert!(should_fail(true, false, 2, 0, 0)
            .unwrap()
            .contains("REGRESSED"));
        assert!(should_fail(false, true, 1, 1, 0)
            .unwrap()
            .contains("calibration"));
        assert!(should_fail(true, true, 0, 0, 3)
            .unwrap()
            .contains("no baseline record"));
    }

    #[test]
    fn bench_api_shape_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u32; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_excludes_setup_time() {
        // A deliberately slow setup (3 ms spin) around a near-free routine:
        // if setup leaked into the timed region, every sample would exceed
        // 3 ms; with correct exclusion the mean stays far below 1 ms.
        let mut b = Bencher::new(Duration::ZERO, Duration::from_secs(5), 5);
        b.iter_batched(
            || {
                let t = Instant::now();
                while t.elapsed() < Duration::from_millis(3) {
                    std::hint::spin_loop();
                }
                42u64
            },
            |x| x.wrapping_mul(3),
            BatchSize::PerIteration,
        );
        let stats = b.analyze("setup-exclusion").expect("samples recorded");
        assert_eq!(stats.n, 5);
        assert!(
            stats.max_ns < 1_000_000.0,
            "setup leaked into samples: max {} ns",
            stats.max_ns
        );
    }

    #[test]
    fn self_comparison_is_no_change_for_any_samples() {
        let samples: Vec<Duration> = (0..20)
            .map(|i| Duration::from_nanos(1_000 + (i * 37) % 211))
            .collect();
        let stats = SampleStats::from_durations(&samples, bench_seed("x/y"));
        let rec = BaselineRecord::new("x/y", &stats);
        assert_eq!(compare(&rec, &rec, noise_threshold()), Verdict::NoChange);
    }

    #[test]
    fn bench_seed_varies_by_name_not_by_call() {
        assert_eq!(bench_seed("a/b"), bench_seed("a/b"));
        assert_ne!(bench_seed("a/b"), bench_seed("a/c"));
    }
}
