//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the vendored serde shim's [`Value`] tree as
//! JSON text, and parses JSON text back into the same tree (and from there
//! into any [`serde::de::Deserialize`] type) via [`from_str`].

mod parse;

use serde::ser::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization or parse error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text and deserializes `T` from the resulting value tree.
///
/// `T` can be [`Value`] itself to get the raw tree, mirroring upstream's
/// `from_str::<serde_json::Value>`.
pub fn from_str<T: serde::de::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from ints, as
                // serde_json does.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, val), ind, d| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, ind, d);
                },
            );
        }
    }
}

/// Shared layout for arrays and objects: delimiters, commas, indentation.
fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        newline_indent(out, indent, depth + 1);
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        newline_indent(out, indent, depth);
    }
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("T0".into())),
            ("n".into(), Value::Int(3)),
            (
                "xs".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn serialize_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Wrap(v.clone())).unwrap();
        assert_eq!(compact, r#"{"id":"T0","n":3,"xs":[true,null]}"#);
        let pretty = to_string_pretty(&Wrap(v)).unwrap();
        assert!(
            pretty.contains("\n  \"id\": \"T0\","),
            "pretty was: {pretty}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string("a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        struct Empty;
        impl Serialize for Empty {
            fn serialize_value(&self) -> Value {
                Value::Object(vec![("xs".into(), Value::Array(vec![]))])
            }
        }
        assert_eq!(to_string_pretty(&Empty).unwrap(), "{\n  \"xs\": []\n}");
    }
}
