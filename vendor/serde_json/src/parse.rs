//! Recursive-descent JSON parser producing the serde shim's `Value` tree.
//!
//! Accepts exactly the JSON this crate's own writer emits plus standard
//! interchange JSON: all escape forms (including `\uXXXX` surrogate pairs),
//! arbitrary nesting, and the full number grammar. Numbers without a
//! fraction or exponent become `Int`/`UInt`; everything else is `Float`.

use crate::Error;
use serde::ser::Value;

pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos after the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_and_nesting() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(
            parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap(),
            Value::Object(vec![
                (
                    "a".into(),
                    Value::Array(vec![
                        Value::Int(1),
                        Value::Object(vec![("b".into(), Value::Null)]),
                    ]),
                ),
                ("c".into(), Value::Str("d".into())),
            ])
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\tA""#).unwrap(),
            Value::Str("a\"b\\c\nd\tA".into())
        );
        // BMP escape, surrogate-pair escape, and raw UTF-8 passthrough.
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("\u{1F600}".into()));
        // Non-ASCII passthrough.
        assert_eq!(parse("\"δ0 ± ci\"").unwrap(), Value::Str("δ0 ± ci".into()));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse(r#""\ud83d""#).is_err());
    }
}
