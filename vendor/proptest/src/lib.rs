//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro, `prop_assert*`/[`prop_assume!`], range/tuple/`any`
//! strategies, [`strategy::Strategy::prop_map`], and `collection::{vec, btree_set}`.
//! Failing cases are reported with their case number and the deterministic
//! per-test seed (derived from the test name, overridable via the
//! `PROPTEST_SEED` environment variable) so they replay exactly.
//!
//! **Minimal shrinking**: after a failure the runner greedily descends
//! through [`strategy::Strategy::shrink`] candidates — binary halving
//! toward the range start for integer/size strategies, prefix truncation
//! (respecting the minimum length) for `collection::vec`, per-component
//! shrinking for tuples — and reports the minimal still-failing case
//! alongside the replay seed. Shrinking consumes no randomness, so a
//! `PROPTEST_SEED` replay reproduces both the original failure and the
//! identical descent. Strategies that cannot be inverted (`prop_map`,
//! `Just`, sets) report the raw sampled case, as before.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, seed in any::<u64>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategies = ($($strat,)+);
            // run_cases samples, reruns the body on shrink candidates, and
            // panics with the minimal counterexample + replay seed.
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                strategies,
                |__case| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($pat,)+) = __case;
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discards the current case (retried with fresh input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
