//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro, `prop_assert*`/[`prop_assume!`], range/tuple/`any`
//! strategies, [`strategy::Strategy::prop_map`], and `collection::{vec, btree_set}`.
//! Failing cases are reported with their case number and the deterministic
//! per-test seed (derived from the test name, overridable via the
//! `PROPTEST_SEED` environment variable) so they replay exactly. **No
//! shrinking**: a failure reports the raw sampled case.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, seed in any::<u64>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::Runner::new(stringify!($name), &config);
            let strategies = ($($strat,)+);
            while runner.more_cases() {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&strategies, runner.rng());
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                runner.record(outcome);
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Discards the current case (retried with fresh input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
