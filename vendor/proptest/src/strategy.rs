//! Value-generation strategies.
//!
//! A [`Strategy`] here is just a sampler: `sample(&self, rng)` draws one
//! value. Upstream proptest's lazy value trees and shrinking are not
//! reproduced.

use rand::rngs::SmallRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (panics) after 1000
    /// consecutive rejections, like upstream's local-reject limit.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic stand-in for upstream's
    /// full-domain floats, which the workspace does not rely on.
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random()
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = (0usize..10, 5u8..=6, any::<bool>()).prop_map(|(a, b, c)| (a + 1, b, c));
        for _ in 0..1000 {
            let (a, b, _c) = strat.sample(&mut rng);
            assert!((1..=10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn filter_and_just_behave() {
        let mut rng = SmallRng::seed_from_u64(2);
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
