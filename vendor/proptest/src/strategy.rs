//! Value-generation strategies.
//!
//! A [`Strategy`] here is a sampler — `sample(&self, rng)` draws one value —
//! plus a **minimal shrinker**: `shrink(&self, value)` proposes smaller
//! candidate values, ordered biggest-jump-first. Upstream proptest's lazy
//! value trees are not reproduced; instead the runner greedily re-tests
//! shrink candidates after a failure (binary halving for integer/size
//! strategies, prefix truncation for vector strategies, per-component
//! shrinking for tuples). Strategies whose values cannot be shrunk without
//! inverting user code ([`Map`], [`Just`], sets) report no candidates and
//! the failure is reported as sampled.

use rand::rngs::SmallRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, ordered so the
    /// biggest simplification comes first (the runner takes the first
    /// candidate that still fails and repeats). The default — no
    /// candidates — means "cannot shrink".
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (panics) after 1000
    /// consecutive rejections, like upstream's local-reject limit.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }

    /// Inner candidates that still satisfy the predicate.
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        let mut cands = self.inner.shrink(value);
        cands.retain(|v| (self.pred)(v));
        cands
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;

    /// Shrink candidates for a failing full-domain value (see
    /// [`Strategy::shrink`]). Defaults to none.
    fn shrink_arbitrary(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

/// Binary-halving candidates for an integer failing value `v`, shrinking
/// toward `lo` (the range start, or zero for full-domain draws): the jump
/// all the way to `lo`, the midpoint, then the immediate predecessor —
/// biggest simplification first. Used by every integer/size strategy.
macro_rules! int_shrink_toward {
    ($v:expr, $lo:expr) => {{
        let (v, lo) = ($v, $lo);
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            // Overflow-free floor average — `lo + (v - lo) / 2` would
            // overflow for signed ranges wider than the type's MAX
            // (e.g. `-1.5e9i32..1.5e9`).
            let mid = (lo & v) + ((lo ^ v) >> 1);
            if mid != lo && mid != v {
                out.push(mid);
            }
            let prev = v - 1;
            if prev != lo && prev != mid {
                out.push(prev);
            }
        }
        out
    }};
}

macro_rules! arbitrary_uints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
            fn shrink_arbitrary(v: &Self) -> Vec<Self> {
                int_shrink_toward!(*v, 0)
            }
        }
    )*};
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
            /// Signed full-domain values halve toward zero from either side.
            fn shrink_arbitrary(v: &Self) -> Vec<Self> {
                let v = *v;
                if v > 0 {
                    int_shrink_toward!(v, 0)
                } else if v < 0 {
                    let mut out = vec![0];
                    let mid = v / 2; // rounds toward zero
                    if mid != 0 && mid != v {
                        out.push(mid);
                    }
                    let next = v + 1;
                    if next != 0 && next != mid {
                        out.push(next);
                    }
                    out
                } else {
                    Vec::new()
                }
            }
        }
    )*};
}

arbitrary_uints!(u8, u16, u32, u64, usize);
arbitrary_ints!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random()
    }
    fn shrink_arbitrary(v: &Self) -> Vec<Self> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic stand-in for upstream's
    /// full-domain floats, which the workspace does not rely on.
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random()
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_arbitrary(value)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }

            /// Binary halving toward the range start.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(*value, self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }

            /// Binary halving toward the range start.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(*value, *self.start())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident => $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            /// Shrinks one component at a time (the others cloned), in
            /// component order — so the runner's greedy descent minimizes
            /// earlier arguments first.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategies! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = (0usize..10, 5u8..=6, any::<bool>()).prop_map(|(a, b, c)| (a + 1, b, c));
        for _ in 0..1000 {
            let (a, b, _c) = strat.sample(&mut rng);
            assert!((1..=10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn int_range_shrinks_toward_start_biggest_jump_first() {
        let strat = 5u32..100;
        assert_eq!(strat.shrink(&80), vec![5, 42, 79]);
        assert_eq!(strat.shrink(&6), vec![5]);
        assert_eq!(strat.shrink(&5), Vec::<u32>::new());
        let incl = 0usize..=10;
        assert_eq!(incl.shrink(&10), vec![0, 5, 9]);
    }

    #[test]
    fn wide_signed_ranges_shrink_without_overflow() {
        // Regression: `lo + (v - lo) / 2` overflowed when the range spans
        // more than the type's MAX.
        let strat = -1_500_000_000i32..1_500_000_000;
        let cands = strat.shrink(&1_400_000_000);
        assert_eq!(cands[0], -1_500_000_000);
        assert!(cands
            .iter()
            .all(|&c| (-1_500_000_000..1_500_000_000).contains(&c)));
        // Midpoint really is the floor average.
        assert!(cands.contains(&-50_000_000), "{cands:?}");
        let full = i64::MIN..=i64::MAX;
        let c = full.shrink(&i64::MAX);
        assert!(c.contains(&i64::MIN) && c.contains(&-1));
    }

    #[test]
    fn any_shrinks_toward_zero_from_both_sides() {
        assert_eq!(any::<u64>().shrink(&9), vec![0, 4, 8]);
        assert_eq!(any::<i32>().shrink(&-9), vec![0, -4, -8]);
        assert_eq!(any::<i32>().shrink(&0), Vec::<i32>::new());
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert_eq!(any::<bool>().shrink(&false), Vec::<bool>::new());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        let cands = strat.shrink(&(4, 2));
        // Component 0 candidates first (others cloned), then component 1.
        assert_eq!(cands, vec![(0, 2), (2, 2), (3, 2), (4, 0), (4, 1)]);
    }

    #[test]
    fn filter_shrink_respects_predicate() {
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let cands = even.shrink(&80);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|v| v % 2 == 0), "{cands:?}");
    }

    #[test]
    fn map_and_just_do_not_shrink() {
        let mapped = (0u32..10).prop_map(|v| v + 1);
        assert!(mapped.shrink(&5).is_empty());
        assert!(Just(41).shrink(&41).is_empty());
    }

    #[test]
    fn filter_and_just_behave() {
        let mut rng = SmallRng::seed_from_u64(2);
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
