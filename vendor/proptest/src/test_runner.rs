//! Case execution: configuration, outcomes, the per-test runner, and the
//! greedy shrink loop that minimizes failing cases before reporting them.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng as _;

/// Runner configuration. Construct with [`Config::with_cases`] or
/// `Config::default()` (256 cases, like upstream).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of [`prop_assume!`](crate::prop_assume) rejections
    /// tolerated across the whole test before it errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's input violated an assumption; it is retried with fresh
    /// input and does not count toward the case budget.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection outcome.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Drives one property test: counts cases, tracks rejections, panics with a
/// replayable report on failure.
pub struct Runner {
    name: &'static str,
    seed: u64,
    rng: SmallRng,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    max_global_rejects: u32,
}

impl Runner {
    /// Creates a runner for the named test. The RNG seed is derived from
    /// the test name (stable across runs) unless `PROPTEST_SEED` is set.
    pub fn new(name: &'static str, config: &Config) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        Runner {
            name,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            cases_target: config.cases,
            cases_done: 0,
            rejects: 0,
            max_global_rejects: config.max_global_rejects,
        }
    }

    /// Whether another case should run.
    pub fn more_cases(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Records one case outcome, panicking on failure or reject exhaustion.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject(reason)) => {
                self.rejects += 1;
                if self.rejects > self.max_global_rejects {
                    panic!(
                        "proptest {}: too many global rejects ({}), last: {reason}",
                        self.name, self.rejects
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest {} failed at case {} (seed {}; rerun with PROPTEST_SEED={}): {reason}",
                    self.name, self.cases_done, self.seed, self.seed
                );
            }
        }
    }
}

/// Upper bound on accepted shrink steps — a backstop against pathological
/// shrink cycles; real descents terminate far earlier (halving converges in
/// O(log range) accepted steps plus a short linear tail).
const MAX_SHRINK_STEPS: usize = 512;

/// Greedy shrink descent: starting from a failing `case`, repeatedly take
/// the **first** shrink candidate that still fails (candidates are ordered
/// biggest-jump-first by the strategies) until no candidate fails or the
/// step budget runs out. Rejected candidates (via `prop_assume!`) don't
/// count as failures. Deterministic: no randomness is consumed, so a
/// `PROPTEST_SEED` replay reproduces the identical descent.
///
/// Returns `(minimal_case, reason_at_minimal, accepted_steps)`.
pub fn shrink_failure<S, F>(
    strategy: &S,
    mut case: S::Value,
    mut reason: String,
    test: &F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0;
    'descent: while steps < MAX_SHRINK_STEPS {
        for cand in strategy.shrink(&case) {
            if let Err(TestCaseError::Fail(r)) = test(cand.clone()) {
                case = cand;
                reason = r;
                steps += 1;
                continue 'descent;
            }
        }
        break;
    }
    (case, reason, steps)
}

/// Drives a whole property test: sample, run, and — on failure — shrink,
/// then panic with both the minimal counterexample and the replay seed.
/// This is what the [`proptest!`](crate::proptest) macro expands to.
pub fn run_cases<S, F>(name: &'static str, config: &Config, strategies: S, test: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut runner = Runner::new(name, config);
    while runner.more_cases() {
        let case = strategies.sample(runner.rng());
        match test(case.clone()) {
            Err(TestCaseError::Fail(reason)) => {
                let (minimal, min_reason, steps) = shrink_failure(&strategies, case, reason, &test);
                panic!(
                    "proptest {} failed at case {} (seed {}; rerun with PROPTEST_SEED={}): \
                     {min_reason}\nminimal counterexample (after {steps} shrink steps): \
                     {minimal:?}",
                    runner.name, runner.cases_done, runner.seed, runner.seed
                );
            }
            outcome => runner.record(outcome),
        }
    }
}

/// FNV-1a, used to give each test a stable, distinct default seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_only_successes() {
        let mut r = Runner::new("t", &Config::with_cases(2));
        assert!(r.more_cases());
        r.record(Err(TestCaseError::reject("assume")));
        r.record(Ok(()));
        assert!(r.more_cases());
        r.record(Ok(()));
        assert!(!r.more_cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_reason() {
        let mut r = Runner::new("t2", &Config::default());
        r.record(Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn shrink_failure_minimizes_int_threshold() {
        // Property "v < 37" over 0..10_000: any failing sample must shrink
        // to exactly 37 (binary halving + the linear -1 tail).
        let strat = 0u32..10_000;
        let test = |v: u32| -> Result<(), TestCaseError> {
            if v >= 37 {
                Err(TestCaseError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        };
        let (minimal, reason, steps) = shrink_failure(&strat, 9_999, "seed".into(), &test);
        assert_eq!(minimal, 37);
        assert!(reason.contains("37"));
        assert!(steps > 0 && steps < 64, "steps {steps}");
    }

    #[test]
    fn shrink_failure_truncates_vec_to_minimal_prefix() {
        let strat = crate::collection::vec(0u8..255, 0..64);
        let test = |v: Vec<u8>| -> Result<(), TestCaseError> {
            if v.len() >= 3 {
                Err(TestCaseError::fail("len >= 3"))
            } else {
                Ok(())
            }
        };
        let start: Vec<u8> = (0..50).collect();
        let (minimal, _, _) = shrink_failure(&strat, start.clone(), "x".into(), &test);
        assert_eq!(minimal, start[..3].to_vec(), "minimal failing prefix");
    }

    #[test]
    fn shrink_failure_minimizes_tuples_componentwise() {
        let strat = (0u32..1000, 0u32..1000);
        let test = |(a, b): (u32, u32)| -> Result<(), TestCaseError> {
            if a + b >= 100 {
                Err(TestCaseError::fail("sum"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = shrink_failure(&strat, (900, 800), "x".into(), &test);
        assert_eq!(
            minimal.0 + minimal.1,
            100,
            "{minimal:?} not on the boundary"
        );
    }

    #[test]
    fn run_cases_reports_minimal_counterexample_and_seed() {
        let result = std::panic::catch_unwind(|| {
            run_cases(
                "shrink_report_test",
                &Config::with_cases(64),
                (0u32..100_000,),
                |(v,)| {
                    crate::prop_assert!(v < 5, "v = {} escaped", v);
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(
            msg.contains("(5,)"),
            "did not shrink to the boundary: {msg}"
        );
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
    }

    #[test]
    fn proptest_seed_replay_still_reaches_the_same_failure() {
        // Same seed -> same sampled stream -> same (pre-shrink) failure,
        // byte for byte. Exercised through the runner's sampling path.
        let sample_stream = |seed: u64| -> Vec<u32> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32)
                .map(|_| crate::strategy::Strategy::sample(&(0u32..1000), &mut rng))
                .collect()
        };
        assert_eq!(sample_stream(42), sample_stream(42));
    }

    #[test]
    fn macro_pipeline_end_to_end() {
        crate::proptest! {
            #![proptest_config(crate::test_runner::Config::with_cases(8))]
            fn sums_commute(a in 0u32..1000, b in 0u32..1000) {
                crate::prop_assert_eq!(a + b, b + a);
            }
        }
        sums_commute();
    }
}
