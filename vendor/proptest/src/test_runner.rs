//! Case execution: configuration, outcomes, and the per-test runner.

use rand::rngs::SmallRng;
use rand::SeedableRng as _;

/// Runner configuration. Construct with [`Config::with_cases`] or
/// `Config::default()` (256 cases, like upstream).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of [`prop_assume!`](crate::prop_assume) rejections
    /// tolerated across the whole test before it errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's input violated an assumption; it is retried with fresh
    /// input and does not count toward the case budget.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection outcome.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Drives one property test: counts cases, tracks rejections, panics with a
/// replayable report on failure.
pub struct Runner {
    name: &'static str,
    seed: u64,
    rng: SmallRng,
    cases_target: u32,
    cases_done: u32,
    rejects: u32,
    max_global_rejects: u32,
}

impl Runner {
    /// Creates a runner for the named test. The RNG seed is derived from
    /// the test name (stable across runs) unless `PROPTEST_SEED` is set.
    pub fn new(name: &'static str, config: &Config) -> Self {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}")),
            Err(_) => fnv1a(name.as_bytes()),
        };
        Runner {
            name,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            cases_target: config.cases,
            cases_done: 0,
            rejects: 0,
            max_global_rejects: config.max_global_rejects,
        }
    }

    /// Whether another case should run.
    pub fn more_cases(&self) -> bool {
        self.cases_done < self.cases_target
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Records one case outcome, panicking on failure or reject exhaustion.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.cases_done += 1,
            Err(TestCaseError::Reject(reason)) => {
                self.rejects += 1;
                if self.rejects > self.max_global_rejects {
                    panic!(
                        "proptest {}: too many global rejects ({}), last: {reason}",
                        self.name, self.rejects
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest {} failed at case {} (seed {}; rerun with PROPTEST_SEED={}): {reason}",
                    self.name, self.cases_done, self.seed, self.seed
                );
            }
        }
    }
}

/// FNV-1a, used to give each test a stable, distinct default seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_only_successes() {
        let mut r = Runner::new("t", &Config::with_cases(2));
        assert!(r.more_cases());
        r.record(Err(TestCaseError::reject("assume")));
        r.record(Ok(()));
        assert!(r.more_cases());
        r.record(Ok(()));
        assert!(!r.more_cases());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_reason() {
        let mut r = Runner::new("t2", &Config::default());
        r.record(Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn macro_pipeline_end_to_end() {
        crate::proptest! {
            #![proptest_config(crate::test_runner::Config::with_cases(8))]
            fn sums_commute(a in 0u32..1000, b in 0u32..1000) {
                crate::prop_assert_eq!(a + b, b + a);
            }
        }
        sums_commute();
    }
}
