//! Strategies for collections.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng as _;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }

    /// Prefix truncation, biggest cut first, never below the strategy's
    /// minimum length: the shortest admissible prefix, the half-length
    /// prefix, then drop-last.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let len = value.len();
        let mut cuts = Vec::new();
        if len > min {
            cuts.push(min);
            let half = min + (len - min) / 2;
            if half != min && half != len {
                cuts.push(half);
            }
            let prev = len - 1;
            if prev != min && prev != half {
                cuts.push(prev);
            }
        }
        cuts.into_iter().map(|k| value[..k].to_vec()).collect()
    }
}

/// Strategy for a `BTreeSet` built from `len`-range draws of `element`
/// (duplicates collapse, so sets can come out smaller than the draw count).
pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, len }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_collapses_duplicates() {
        let mut rng = SmallRng::seed_from_u64(4);
        let strat = btree_set(0usize..3, 0..50);
        for _ in 0..100 {
            assert!(strat.sample(&mut rng).len() <= 3);
        }
    }
}
