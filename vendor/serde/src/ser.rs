//! Serialization into a JSON-shaped value tree.

use std::collections::BTreeMap;

/// A JSON-shaped tree: the single data model this shim serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value pairs, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, isize);

impl Serialize for u64 {
    fn serialize_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        (*self as u64).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.serialize_value(), Value::Int(7));
        assert_eq!(u64::MAX.serialize_value(), Value::UInt(u64::MAX));
        assert_eq!("hi".serialize_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.serialize_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].serialize_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
