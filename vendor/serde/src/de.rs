//! Deserialization from the shim's value tree.
//!
//! The mirror image of [`crate::ser`]: a [`Deserialize`] trait that
//! reconstructs a type from a [`Value`]. Like serialization, everything goes
//! through the one concrete JSON-shaped data model instead of upstream's
//! visitor machinery — `serde_json`'s parser produces a `Value`, and
//! `#[derive(Deserialize)]` (vendored `serde_derive`) walks it.

use crate::ser::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// The standard "wrong shape" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        Error(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from the value tree, or explains why it can't.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in a struct's object entries and deserializes the field.
/// Used by the generated `#[derive(Deserialize)]` impls.
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("a bool", other)),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("a string", other)),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("a number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    other => return Err(Error::expected("an integer", other)),
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        "integer {v:?} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            other => Err(Error::expected("an object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_values() {
        use crate::ser::Serialize;
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()), Ok(7));
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()),
            Ok(u64::MAX)
        );
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()),
            Ok("hi".to_owned())
        );
        assert_eq!(
            Option::<u8>::deserialize_value(&None::<u8>.serialize_value()),
            Ok(None)
        );
        assert_eq!(
            Vec::<u8>::deserialize_value(&vec![1u8, 2].serialize_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(f64::deserialize_value(&Value::Int(3)), Ok(3.0));
    }

    #[test]
    fn range_and_shape_errors() {
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
        assert!(u32::deserialize_value(&Value::Int(-1)).is_err());
        assert!(bool::deserialize_value(&Value::Int(1)).is_err());
        assert!(String::deserialize_value(&Value::Null).is_err());
        let err = field::<u32>(&[], "missing").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
