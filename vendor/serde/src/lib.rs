//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Instead of upstream's visitor-based `Serializer`/`Deserializer`
//! machinery, this shim moves data through one concrete model: [`ser::Value`],
//! a JSON-shaped tree. `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! (from the vendored `serde_derive`) work for named-field, tuple/newtype,
//! and unit structs, which covers everything the workspace derives on;
//! `serde_json` renders the tree to text and parses text back into it.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
