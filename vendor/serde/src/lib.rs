//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Instead of upstream's visitor-based `Serializer` machinery, this shim
//! serializes through one concrete data model: [`ser::Value`], a JSON-shaped
//! tree. `#[derive(Serialize)]` (from the vendored `serde_derive`) works for
//! named-field, tuple/newtype, and unit structs, which covers everything the
//! workspace derives on; `serde_json` renders the tree. The `Deserialize` trait exists so `#[cfg_attr(feature =
//! "serde", derive(..))]` attributes still compile, but no parser is
//! provided.

pub mod ser;

pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};

/// Marker for deserializable types. The shim provides no parser; the derive
/// emits an empty impl so derive attributes compile.
pub trait Deserialize: Sized {}
