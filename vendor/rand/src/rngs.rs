//! Concrete RNGs.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG: xoshiro256++ (Blackman & Vigna),
/// the same algorithm family upstream `rand` uses for its 64-bit `SmallRng`.
/// Passes BigCrush; period `2^256 − 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0; 32]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference value from the xoshiro256++ C source with state
        // {1, 2, 3, 4}: first output is rotl(1 + 4, 23) + 1.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        assert_eq!(rng.next_u64(), 5u64.rotate_left(23) + 1);
    }
}
