//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace actually uses, with the
//! rand 0.9 naming scheme: [`Rng::random_range`], [`Rng::random_bool`],
//! [`Rng::random`], [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`]. The implementations are real (xoshiro256++,
//! unbiased Lemire range reduction, Fisher–Yates), not stubs — simulations
//! need statistically sound randomness — but the crate makes no attempt to
//! be bit-compatible with upstream `rand` streams.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// A source of random bits. The two `next_*` methods are the only things an
/// RNG must implement; everything else is derived in [`Rng`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanded through SplitMix64 — the same
    /// construction upstream `rand` uses, so short seeds still fill the
    /// whole state space.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for u16 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is
    /// empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased `[0, span)` via Lemire's widening-multiply rejection method.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // One-shot threshold: reject the low `2^64 mod span` outcomes.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating-point rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (over `T`'s full domain; `[0,1)`
    /// for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range`. Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..17);
            assert!((10..17).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
