//! Sequence-related random operations.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_respects_emptiness() {
        let mut rng = SmallRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
