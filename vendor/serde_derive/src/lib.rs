//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) for the
//! shapes the workspace derives on: structs — named-field, tuple (incl.
//! newtypes like `NodeId(pub u32)`), and unit — with bound-free generics
//! (lifetimes like `<'a>`). `Serialize` follows serde's data model per
//! shape (object / inner value / array / null); `Deserialize` generates the
//! mirror-image reconstruction from the same value tree (object fields
//! looked up by name, arrays by position).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The pieces of a struct definition the derives need.
struct StructShape {
    name: String,
    /// Generic parameter list including the angle brackets (e.g. `<'a>`),
    /// or an empty string.
    generics: String,
    fields: Fields,
}

/// Which struct flavor the derive is looking at.
enum Fields {
    /// `struct S { a: T, b: U }` — field names in order.
    Named(Vec<String>),
    /// `struct S(T, U);` — field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
}

/// Parses `struct Name<...> { a: T, b: U }` from a derive input stream.
/// Returns `Err(message)` for shapes the shim does not support.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();

    // Skip attributes (`#[...]`), doc comments, and visibility up to the
    // `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(_)) => {} // pub, crate, etc.
            Some(TokenTree::Group(_)) => {} // pub(crate)
            Some(other) => return Err(format!("unexpected token {other}")),
            None => return Err("no `struct` keyword found (enums unsupported)".into()),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, got {other:?}")),
    };

    // Optional generics: copy `<...>` verbatim. Bounds are not supported,
    // so the same text serves both `impl<...>` and `Name<...>`.
    let mut generics = String::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ':' => return Err("generic bounds are not supported by the shim".into()),
                    _ => {}
                }
            }
            generics.push_str(&tt.to_string());
            if depth == 0 {
                break;
            }
        }
    }

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Ok(StructShape {
                name,
                generics,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            });
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Ok(StructShape {
                name,
                generics,
                fields: Fields::Unit,
            });
        }
        _ => return Err("only struct derives are supported (enums/unions are not)".into()),
    };

    // Fields: `vis? name : Type ,` — the field name is the last ident
    // before each top-level `:`; the type runs to the next top-level `,`.
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while tokens.peek().is_some() {
        let mut last_ident = None;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {}
                TokenTree::Punct(p) if p.as_char() == ':' => break,
                TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                _ => {}
            }
        }
        match last_ident {
            Some(name) => fields.push(name),
            None => break, // trailing tokens after the last field
        }
        // Skip the type up to the next top-level comma. Generic arguments
        // hide their commas behind `<...>`; delimited groups are atomic.
        let mut angle = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }

    Ok(StructShape {
        name,
        generics,
        fields: Fields::Named(fields),
    })
}

/// Field count of a tuple-struct body: top-level commas + 1, ignoring a
/// trailing comma. Generic arguments hide their commas behind `<...>`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    fields += 1;
                    saw_tokens = false;
                }
                _ => {}
            }
        }
    }
    fields + usize::from(saw_tokens)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Derives `serde::ser::Serialize` (the shim's value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    // Body follows serde's data model: named fields → object, newtype →
    // the inner value, tuple → array, unit → null.
    let body = match &shape.fields {
        Fields::Named(names) => {
            let mut entries = String::new();
            for f in names {
                entries.push_str(&format!(
                    "(::std::string::String::from({f:?}), \
                     ::serde::ser::Serialize::serialize_value(&self.{f})),"
                ));
            }
            format!("::serde::ser::Value::Object(::std::vec![{entries}])")
        }
        Fields::Tuple(1) => "::serde::ser::Serialize::serialize_value(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let mut entries = String::new();
            for i in 0..*n {
                entries.push_str(&format!(
                    "::serde::ser::Serialize::serialize_value(&self.{i}),"
                ));
            }
            format!("::serde::ser::Value::Array(::std::vec![{entries}])")
        }
        Fields::Unit => "::serde::ser::Value::Null".to_owned(),
    };
    let StructShape { name, generics, .. } = &shape;
    format!(
        "impl{generics} ::serde::ser::Serialize for {name}{generics} {{\n\
             fn serialize_value(&self) -> ::serde::ser::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::de::Deserialize`: reconstruction from the value tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    // Mirror of the Serialize data model: named fields are looked up by
    // name in the object, newtypes unwrap the inner value, tuples index the
    // array, units accept null.
    let body = match &shape.fields {
        Fields::Named(names) => {
            let mut inits = String::new();
            for f in names {
                inits.push_str(&format!("{f}: ::serde::de::field(entries, {f:?})?,"));
            }
            format!(
                "match value {{\n\
                     ::serde::ser::Value::Object(entries) => \
                         ::std::result::Result::Ok(Self {{ {inits} }}),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::expected(\"an object\", other)),\n\
                 }}"
            )
        }
        Fields::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::de::Deserialize::deserialize_value(value)?))"
                .to_owned()
        }
        Fields::Tuple(n) => {
            let mut inits = String::new();
            for i in 0..*n {
                inits.push_str(&format!(
                    "::serde::de::Deserialize::deserialize_value(&items[{i}])?,"
                ));
            }
            format!(
                "match value {{\n\
                     ::serde::ser::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self({inits})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::expected(\"an array of {n}\", other)),\n\
                 }}"
            )
        }
        Fields::Unit => "match value {\n\
                 ::serde::ser::Value::Null => ::std::result::Result::Ok(Self),\n\
                 other => ::std::result::Result::Err(\
                     ::serde::de::Error::expected(\"null\", other)),\n\
             }"
        .to_owned(),
    };
    let StructShape { name, generics, .. } = &shape;
    format!(
        "impl{generics} ::serde::de::Deserialize for {name}{generics} {{\n\
             fn deserialize_value(value: &::serde::ser::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
