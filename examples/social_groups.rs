//! Social-network subgroup discovery (the paper's §1 LinkedIn scenario):
//! members of a club, embedded in a larger small-world network, discover
//! each other by running the gossip process **restricted to the club's
//! induced subgraph**. The paper's corollary: a connected k-member subgroup
//! completes in O(k log² k) rounds, independent of the host network's size.
//!
//! ```text
//! cargo run --release --example social_groups [host_n] [seed]
//! ```

use discovery_gossip::prelude::*;
use gossip_graph::components::is_connected;
use gossip_graph::traversal::bfs_distances;

fn main() {
    let mut args = std::env::args().skip(1);
    let host_n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let mut rng = gossip_core::rng::stream_rng(seed, 0, 1);
    // The host society: a small-world contact network.
    let host = generators::watts_strogatz(host_n, 4, 0.05, &mut rng);
    println!(
        "host network: Watts–Strogatz n = {}, m = {}, mean degree = {:.1}",
        host.n(),
        host.m(),
        host.mean_degree()
    );

    println!(
        "\n{:>6} {:>10} {:>12} {:>10}",
        "k", "rounds", "k log² k", "ratio"
    );
    for k in [25usize, 50, 100, 200, 400] {
        // The club: a BFS ball around a random member, so it induces a
        // connected subgraph of the host network.
        let center = NodeId::new(k % host.n());
        let dist = bfs_distances(&host, center);
        let mut members: Vec<NodeId> = (0..host.n())
            .map(NodeId::new)
            .filter(|u| dist[u.index()] != u32::MAX)
            .collect();
        members.sort_by_key(|u| dist[u.index()]);
        members.truncate(k);

        // Restrict the process to the club's induced subgraph: members
        // introduce only fellow members (what "running the process on the
        // subgraph" means operationally).
        let (club, _) = host.induced_subgraph(&members);
        assert!(is_connected(&club), "BFS ball must induce a connected club");

        let cfg = TrialConfig {
            trials: 8,
            base_seed: seed,
            max_rounds: 100_000_000,
            parallel: true,
        };
        let rounds = convergence_rounds(&club, Push, ComponentwiseComplete::for_graph, &cfg);
        let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
        let kf = k as f64;
        let bound = kf * kf.ln() * kf.ln();
        println!(
            "{:>6} {:>10.0} {:>12.0} {:>10.3}",
            k,
            mean,
            bound,
            mean / bound
        );
    }
    println!(
        "\nratio staying flat-ish => rounds scale with the CLUB size, not the host's {host_n}"
    );
}
