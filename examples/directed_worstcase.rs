//! Directionality hurts: the two-hop walk on directed graphs (Section 5).
//!
//! Runs the directed pull process on (a) directed cycles — a benign strongly
//! connected family, (b) the paper's Theorem 15 strongly connected
//! construction (expected Ω(n²) rounds), and (c) the Theorem 14 weakly
//! connected construction (Ω(n² log n) rounds), printing how round counts
//! scale against n² — versus the O(n log² n) undirected world.
//!
//! ```text
//! cargo run --release --example directed_worstcase [seed]
//! ```

use discovery_gossip::prelude::*;

fn mean_rounds(g: &DirectedGraph, trials: usize, seed: u64) -> f64 {
    let cfg = TrialConfig {
        trials,
        base_seed: seed,
        max_rounds: 1_000_000_000,
        parallel: true,
    };
    let rounds = convergence_rounds(g, DirectedPull, ClosureReached::for_graph, &cfg);
    rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    println!("directed two-hop walk: rounds to reach the transitive closure\n");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>10}",
        "graph", "n", "rounds", "n²", "rounds/n²"
    );
    for n in [16usize, 32, 64] {
        let g = generators::directed_cycle(n);
        let r = mean_rounds(&g, 8, seed);
        let n2 = (n * n) as f64;
        println!(
            "{:<28} {:>6} {:>12.0} {:>12} {:>10.3}",
            "directed cycle",
            n,
            r,
            n * n,
            r / n2
        );
    }
    for n in [16usize, 32, 64] {
        let g = generators::theorem15_graph(n);
        let r = mean_rounds(&g, 8, seed);
        let n2 = (n * n) as f64;
        println!(
            "{:<28} {:>6} {:>12.0} {:>12} {:>10.3}",
            "Thm 15 (strongly conn.)",
            n,
            r,
            n * n,
            r / n2
        );
    }
    for n in [16usize, 32, 64] {
        let g = generators::theorem14_graph(n);
        let r = mean_rounds(&g, 8, seed);
        let n2ln = (n * n) as f64 * (n as f64).ln();
        println!(
            "{:<28} {:>6} {:>12.0} {:>12.0} {:>10.3}",
            "Thm 14 (weakly conn.)",
            n,
            r,
            n2ln,
            r / n2ln
        );
    }

    // Contrast: the undirected pull process on a cycle of the same size.
    println!();
    for n in [16usize, 32, 64] {
        let g = generators::cycle(n);
        let cfg = TrialConfig {
            trials: 8,
            base_seed: seed,
            max_rounds: 100_000_000,
            parallel: true,
        };
        let rounds = convergence_rounds(&g, Pull, ComponentwiseComplete::for_graph, &cfg);
        let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
        let nf = n as f64;
        println!(
            "{:<28} {:>6} {:>12.0} {:>12.0} {:>10.3}",
            "UNdirected cycle (pull)",
            n,
            mean,
            nf * nf.ln() * nf.ln(),
            mean / (nf * nf.ln() * nf.ln())
        );
    }
    println!("\nratios against the respective bounds stay flat: directionality costs a factor ~n/polylog.");
}
