//! Figure 1(c): adding edges can *slow down* discovery.
//!
//! Computes exact expected convergence times (absorbing Markov chain) for
//! the paper's 4-edge/3-edge pair, cross-checks with Monte Carlo, and then
//! exhaustively searches all 4-node graphs for same-vertex-set
//! counterexamples.
//!
//! ```text
//! cargo run --release --example nonmonotonicity
//! ```

use discovery_gossip::prelude::*;

fn monte_carlo_mean(g: &UndirectedGraph, trials: usize) -> (f64, f64) {
    let cfg = TrialConfig {
        trials,
        base_seed: 123,
        max_rounds: 10_000_000,
        parallel: true,
    };
    let rounds = convergence_rounds(g, Push, ComponentwiseComplete::for_graph, &cfg);
    let s = Summary::of_rounds(&rounds);
    (s.mean, s.ci95)
}

fn main() {
    let (g, h) = generators::nonmonotone_pair();
    println!("Figure 1(c): G = K_1,4 (4 edges), H = K_1,3 (3 edges), H ⊂ G\n");

    for kind in [ProcessKind::Push, ProcessKind::Pull] {
        let eg = exact_expected_rounds(&g, kind);
        let eh = exact_expected_rounds(&h, kind);
        println!(
            "{:?}: exact E[T(G)] = {:.4}, exact E[T(H)] = {:.4}  =>  G is {:.2}x slower",
            kind,
            eg,
            eh,
            eg / eh
        );
    }

    println!("\nMonte Carlo cross-check (push, 20k trials):");
    let (mg, cg) = monte_carlo_mean(&g, 20_000);
    let (mh, ch) = monte_carlo_mean(&h, 20_000);
    println!("  G: measured {mg:.3} ± {cg:.3}   (exact 11.158)");
    println!("  H: measured {mh:.3} ± {ch:.3}   (exact  6.281)");

    println!("\nExhaustive search, all connected 4-node graphs, same vertex set (push):");
    let pairs = find_nonmonotone_pairs_cli();
    for p in pairs.iter().take(6) {
        println!(
            "  E[T] {:.3} for G = {:?}  >  {:.3} for its subgraph H = {:?}",
            p.g_expected, p.g_edges, p.h_expected, p.h_edges
        );
    }
    println!(
        "\n{} same-vertex-set counterexample pairs exist on just 4 nodes — \
         the diamond (K4 - e) vs the 4-cycle is the canonical one.",
        pairs.len()
    );
}

fn find_nonmonotone_pairs_cli() -> Vec<gossip_analysis::NonMonotonePair> {
    gossip_analysis::find_nonmonotone_pairs(4, ProcessKind::Push, 0.05)
}
