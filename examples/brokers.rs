//! Who brokers the introductions? The LinkedIn story of §1, quantified with
//! edge-provenance traces: run push discovery on a hub-heavy preferential-
//! attachment network and report how introduction credit distributes across
//! nodes as a function of their initial degree.
//!
//! ```text
//! cargo run --release --example brokers [n] [seed]
//! ```

use discovery_gossip::prelude::*;
use gossip_core::DiscoveryTrace;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);

    let mut rng = gossip_core::rng::stream_rng(seed, 0, 3);
    let g0 = generators::barabasi_albert(n, 2, &mut rng);
    let initial_degrees = g0.degrees();
    println!(
        "Barabási–Albert network: n = {n}, m = {}, max initial degree = {}",
        g0.m(),
        g0.max_degree()
    );

    let mut check = ComponentwiseComplete::for_graph(&g0);
    let mut engine = Engine::new(g0, Push, seed);
    let mut trace = DiscoveryTrace::default();
    let out = engine.run_traced(&mut check, 100_000_000, &mut trace);
    assert!(out.converged);
    println!(
        "complete after {} rounds; {} introductions recorded\n",
        out.rounds,
        trace.len()
    );

    // Bucket introduction credit by initial degree.
    let per_node = trace.introductions_per_node(n);
    let buckets: [(usize, usize); 4] = [(2, 3), (4, 7), (8, 15), (16, usize::MAX)];
    println!(
        "{:<22} {:>8} {:>16} {:>18}",
        "initial degree", "nodes", "introductions", "per node"
    );
    for (lo, hi) in buckets {
        let members: Vec<usize> = (0..n)
            .filter(|&u| initial_degrees[u] >= lo && initial_degrees[u] <= hi)
            .collect();
        if members.is_empty() {
            continue;
        }
        let total: u64 = members.iter().map(|&u| per_node[u]).sum();
        let label = if hi == usize::MAX {
            format!("{lo}+")
        } else {
            format!("{lo}-{hi}")
        };
        println!(
            "{:<22} {:>8} {:>16} {:>18.1}",
            label,
            members.len(),
            total,
            total as f64 / members.len() as f64
        );
    }

    // The first 20 introductions: early brokerage belongs to the hubs.
    let first_brokers: Vec<u32> = trace
        .events()
        .iter()
        .take(20)
        .map(|e| e.introducer.0)
        .collect();
    let hub_like = first_brokers
        .iter()
        .filter(|&&b| initial_degrees[b as usize] >= 8)
        .count();
    println!(
        "\nfirst 20 introductions: {hub_like} brokered by initially-high-degree nodes ({first_brokers:?})"
    );
    println!(
        "hubs dominate early brokerage, but per-node credit converges as degrees equalize — \
         the same homogenization the min-degree lemmas describe."
    );
}
