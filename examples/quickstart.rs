//! Quickstart: run both discovery processes on a random tree and watch the
//! minimum degree climb until the graph is complete.
//!
//! ```text
//! cargo run --release --example quickstart [n] [seed]
//! ```

use discovery_gossip::prelude::*;
use gossip_core::{run_engine_listened, Chain, ProposalRule, SeriesRecorder, StopWhen};

fn run<R: ProposalRule<UndirectedGraph>>(g0: &UndirectedGraph, rule: R, seed: u64) {
    let n = g0.n() as f64;
    let mut check = ComponentwiseComplete::for_graph(g0);
    let mut recorder = SeriesRecorder::every((g0.n() as u64 * 2).max(1));
    let mut engine = Engine::new(g0.clone(), rule, seed);
    let out = run_engine_listened(
        &mut engine,
        &mut Chain(&mut recorder, StopWhen(&mut check)),
        100_000_000,
    );
    assert!(out.converged && engine.graph().is_complete());

    println!("\n== {} discovery ==", engine.rule_name());
    println!(
        "{:>10} {:>10} {:>8} {:>8}",
        "round", "edges", "min-deg", "added"
    );
    for row in recorder.rows().iter().take(12) {
        println!(
            "{:>10} {:>10} {:>8} {:>8}",
            row.round, row.m, row.min_degree, row.added
        );
    }
    if recorder.rows().len() > 12 {
        println!("{:>10}", "...");
    }
    println!(
        "converged in {} rounds (n log² n = {:.0}, ratio = {:.3})",
        out.rounds,
        n * n.ln() * n.ln(),
        out.rounds as f64 / (n * n.ln() * n.ln())
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let mut rng = gossip_core::rng::stream_rng(seed, 0, 0);
    let g0 = generators::random_tree(n, &mut rng);
    println!(
        "start: random tree, n = {n}, m = {}, min degree = {}",
        g0.m(),
        g0.min_degree()
    );

    run(&g0, Push, seed);
    run(&g0, Pull, seed);
}
