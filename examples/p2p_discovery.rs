//! P2P resource discovery over an unreliable network with churn — the
//! paper's motivating application, run end-to-end on the byte-accurate
//! simulator: push discovery keeps every message at 5 bytes while Name
//! Dropper ships entire directories.
//!
//! ```text
//! cargo run --release --example p2p_discovery [n] [seed]
//! ```

use discovery_gossip::prelude::*;
use gossip_net::NameDropperProtocol;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    let mut rng = gossip_core::rng::stream_rng(seed, 0, 2);
    let g0 = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);

    // Part 1: clean network, head-to-head bandwidth.
    println!("== clean network (no loss, no churn), n = {n} ==");
    println!(
        "{:<22} {:>8} {:>14} {:>16}",
        "protocol", "rounds", "total MB", "max msg bytes"
    );
    {
        let mut net = Network::from_graph(
            &g0,
            n,
            NetConfig {
                drop_prob: 0.0,
                seed,
            },
        );
        let (rounds, done, t) = net.run_until_coverage(&mut NetPush, 1.0, 10_000_000);
        assert!(done);
        println!(
            "{:<22} {:>8} {:>14.2} {:>16}",
            "push (gossip)",
            rounds,
            t.bytes as f64 / 1e6,
            t.max_message_bytes
        );
    }
    {
        let mut net = Network::from_graph(
            &g0,
            n,
            NetConfig {
                drop_prob: 0.0,
                seed,
            },
        );
        let (rounds, done, t) = net.run_until_coverage(&mut NameDropperProtocol, 1.0, 10_000_000);
        assert!(done);
        println!(
            "{:<22} {:>8} {:>14.2} {:>16}",
            "name dropper",
            rounds,
            t.bytes as f64 / 1e6,
            t.max_message_bytes
        );
    }

    // Part 2: 20% message loss + continuous churn.
    println!("\n== hostile network: 20% loss, churn (join 10%/round, leave 10%/round) ==");
    let mut net = Network::from_graph(
        &g0,
        4 * n,
        NetConfig {
            drop_prob: 0.2,
            seed,
        },
    );
    let churn = ChurnModel {
        join_prob: 0.10,
        leave_prob: 0.10,
        bootstrap_contacts: 3,
        seed: seed ^ 0xC4,
    };
    let mut proto = NetPush;
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12}",
        "round", "alive", "coverage", "staleness", "kB/round"
    );
    let horizon = 30 * n as u64;
    let mut bytes_window = 0u64;
    for round in 0..horizon {
        churn.apply(&mut net, round);
        let t = net.step(&mut proto);
        bytes_window += t.bytes;
        let stride = horizon / 10;
        if round % stride == stride - 1 {
            println!(
                "{:>8} {:>8} {:>10.4} {:>10.4} {:>12.1}",
                round + 1,
                net.alive_count(),
                net.coverage(),
                net.staleness(),
                bytes_window as f64 / stride as f64 / 1e3
            );
            bytes_window = 0;
        }
    }
    println!(
        "\npush discovery holds coverage near 1.0 under churn with 5-byte messages;\n\
         stale entries ({:.1}%) are the price of leave-without-notice.",
        net.staleness() * 100.0
    );
}
