//! # discovery-gossip
//!
//! A production-grade Rust reproduction of **“Discovery through Gossip”**
//! (Haeupler, Pandurangan, Peleg, Rajaraman, Sun — SPAA 2012,
//! arXiv:1202.2092): randomized gossip-based discovery processes on
//! self-rewiring networks, with everything needed to re-derive the paper's
//! results on a laptop.
//!
//! This crate is the facade: it re-exports the eight member library crates
//! and a [`prelude`]. See the individual crates for the real APIs:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`graph`] (`gossip-graph`) | dynamic graphs with O(1) neighbor sampling, generators incl. the paper's lower-bound constructions, traversal/SCC/closure |
//! | [`core`] (`gossip-core`) | the push/pull/directed processes, deterministic parallel engine, engine builder, unified round-listener seam, membership lifecycle seam (join/leave between rounds), Monte Carlo trials, robustness variants |
//! | [`shard`] (`gossip-shard`) | deterministic multi-shard round engine: shard-parallel propose/apply over owner-partitioned arena segments, plus the cross-process transport (framed mailboxes over Unix domain sockets, deterministic and lossy modes) |
//! | [`cluster`] (`gossip-cluster`) | datagram shard transport for cross-host runs: static peer tables, per-peer ack/timeout/backoff windows with fragmentation, streamed bootstrap snapshots, shard-0 round coordinator |
//! | [`serve`] (`gossip-serve`) | resident service: a live engine behind cheap epoch snapshots, a concurrent query surface, and pluggable listeners |
//! | [`baselines`] (`gossip-baselines`) | Name Dropper, Random Pointer Jump, throttled ND, flooding — with message-bit accounting |
//! | [`net`] (`gossip-net`) | byte-accurate message-passing simulator: loss, churn, coverage/staleness metrics |
//! | [`analysis`] (`gossip-analysis`) | exact Markov-chain solver (Figure 1(c)), statistics, asymptotic model fitting |
//!
//! ## Ten-line tour
//!
//! ```
//! use discovery_gossip::prelude::*;
//!
//! // The push process completes a 32-node star...
//! let g0 = generators::star(32);
//! let mut check = ComponentwiseComplete::for_graph(&g0);
//! let mut engine = Engine::new(g0, Push, 7);
//! let out = engine.run_until(&mut check, 1_000_000);
//! assert!(out.converged);
//! // ...into the complete graph, using O(log n)-bit interactions only.
//! assert!(engine.graph().is_complete());
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use gossip_analysis as analysis;
pub use gossip_baselines as baselines;
pub use gossip_cluster as cluster;
pub use gossip_core as core;
pub use gossip_graph as graph;
pub use gossip_net as net;
pub use gossip_serve as serve;
pub use gossip_shard as shard;

/// Most-used items in one import.
pub mod prelude {
    pub use gossip_analysis::{
        align_series, exact_expected_rounds, find_nonmonotone_pairs, fit_model, loglog_exponent,
        rank_models, GrowthModel, ProcessKind, Summary, Table,
    };
    pub use gossip_baselines::{
        DiscoveryAlgorithm, Flooding, Knowledge, NameDropper, PointerJump, ThrottledNameDropper,
    };
    pub use gossip_cluster::{ClusterBuilder, ClusterEngine, ClusterStats, DatagramLoss};
    pub use gossip_core::{
        convergence_rounds, run_engine_listened, run_engine_until, run_trials, stream_trials,
        ChurnBursts, ClosureReached, ComponentwiseComplete, ConvergenceCheck, DirectedPull,
        DiscoveryTrace, Engine, EngineBuilder, Faulty, HybridPushPull, ListenerSet,
        MembershipEvent, MembershipPlan, MembershipStats, MinDegreeAtLeast, Never, OnlySubset,
        Parallelism, Partial, Pull, Push, RoundEngine, RoundListener, RuleId, SubsetComplete,
        TrialConfig,
    };
    pub use gossip_graph::{
        generators, ArenaGraph, Csr, DirectedGraph, NodeId, ShardedArenaGraph, UndirectedGraph,
    };
    pub use gossip_net::{
        ChurnModel, HeartbeatPushProtocol, NetConfig, Network, PullProtocol as NetPull,
        PushProtocol as NetPush,
    };
    pub use gossip_serve::{
        GossipService, GraphQuery, MetricsCounters, ReplayLog, ServeConfig, Snapshot,
        TrajectoryRecorder,
    };
    pub use gossip_shard::{
        BuildSharded, LossyConfig, ShardedEngine, TransportBuilder, TransportEngine, TransportMode,
    };
}
