//! The `gossip` command-line tool: run, trace, generate, and analyze the
//! discovery processes without writing Rust.
//!
//! Implemented as a library module so every subcommand is unit-testable;
//! `src/bin/gossip.rs` is a three-line shim. See `Command::parse` for the
//! grammar.

use gossip_analysis::{exact_expected_rounds, ProcessKind, Summary};
use gossip_cluster::ClusterBuilder;
use gossip_core::{
    convergence_rounds, with_rule, ChurnBursts, ClosureReached, ComponentwiseComplete,
    DirectedPull, DiscoveryTrace, Engine, EngineBuilder, ListenerSet, MembershipPlan, RoundEngine,
    RuleId, TrialConfig,
};
use gossip_graph::{
    generators, io as gio, ArenaGraph, DirectedGraph, ShardedArenaGraph, UndirectedGraph,
};
use gossip_serve::{GossipService, GraphQuery, MetricsCounters, ServeConfig};
use gossip_shard::transport::{LossyConfig, TransportBuilder, TransportMode};
use gossip_shard::BuildSharded;
use std::fmt::Write as _;

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `gossip generate --family F [--n N] [--seed S] [--param P]`
    Generate {
        /// Family name (see [`make_graph`]).
        family: String,
        /// Size parameter.
        n: usize,
        /// RNG seed for random families.
        seed: u64,
        /// Family-specific extra parameter (e.g. BA attachment count).
        param: Option<u64>,
    },
    /// `gossip run --process P (--family F --n N | --graph FILE) [--seed S] [--trace]`
    Run {
        /// `push`, `pull`, or `hybrid`.
        process: String,
        /// Inline family, if no file given.
        family: Option<String>,
        /// Family size.
        n: usize,
        /// Edge-list file to load instead of a family.
        graph_file: Option<String>,
        /// Seed.
        seed: u64,
        /// Emit the full introduction trace as CSV after the summary.
        trace: bool,
        /// Family parameter.
        param: Option<u64>,
        /// Churn bursts to schedule (0 = static membership).
        churn: usize,
    },
    /// `gossip trials --process P --family F --n N [--trials T] [--seed S]`
    Trials {
        /// `push`, `pull`, or `hybrid`.
        process: String,
        /// Family name.
        family: String,
        /// Family size.
        n: usize,
        /// Number of Monte Carlo trials.
        trials: usize,
        /// Seed.
        seed: u64,
        /// Family parameter.
        param: Option<u64>,
    },
    /// `gossip exact --process P --edges "0-1,1-2" --n N`
    Exact {
        /// `push` or `pull`.
        process: String,
        /// Comma-separated `a-b` edges.
        edges: String,
        /// Node count.
        n: usize,
    },
    /// `gossip directed --family F --n N [--seed S]`
    Directed {
        /// `cycle`, `thm14`, `thm15`, or `gnp`.
        family: String,
        /// Size.
        n: usize,
        /// Seed.
        seed: u64,
    },
    /// `gossip serve --process P --family F --n N [--rounds R] [--shards K]
    /// [--snapshot-every E] [--seed S]`
    Serve {
        /// `push`, `pull`, or `hybrid`.
        process: String,
        /// Family name.
        family: String,
        /// Family size.
        n: usize,
        /// Round budget for the resident engine.
        rounds: u64,
        /// Shard count; 1 selects the sequential arena engine, >1 the
        /// multi-shard engine.
        shards: usize,
        /// Snapshot publication cadence, in rounds.
        snapshot_every: u64,
        /// Seed.
        seed: u64,
        /// Family parameter.
        param: Option<u64>,
        /// Churn bursts to schedule (0 = static membership).
        churn: usize,
        /// Shard transport: `inproc` (shared memory), `uds` (one OS
        /// process per shard over Unix domain sockets), `lossy`
        /// (uds plus seeded drop/duplicate/reorder fault injection), or
        /// `udp` (datagram cluster with a static peer table).
        transport: Transport,
        /// `--transport udp` only: address the coordinator binds
        /// (default `127.0.0.1:0`).
        bind: Option<String>,
        /// `--transport udp` only: comma-separated worker addresses
        /// (shards 1..K; default auto-assigned loopback ports).
        peers: Option<String>,
    },
    /// `gossip help`
    Help,
}

/// How `serve` hosts its shards. All four replay the same trajectory;
/// see [`TransportBuilder`] for the wire protocol behind `uds`/`lossy`
/// and [`ClusterBuilder`] for `udp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Shared-memory sharding in this process (the default).
    Inproc,
    /// One worker process per shard, mailboxes serialized over UDS.
    Uds,
    /// `uds` with seeded loss/duplication/reordering plus retransmit.
    Lossy,
    /// One worker process per shard, frames exchanged peer-to-peer over
    /// UDP sockets from a static peer table (`--bind`/`--peers`).
    Udp,
}

impl Transport {
    /// Every accepted `--transport` spelling, in usage order. The parse
    /// error enumerates exactly this list, so a stale error message is a
    /// test failure rather than stale documentation.
    pub const NAMES: [(&'static str, Transport); 4] = [
        ("inproc", Transport::Inproc),
        ("uds", Transport::Uds),
        ("lossy", Transport::Lossy),
        ("udp", Transport::Udp),
    ];

    fn parse(s: &str) -> Result<Transport, String> {
        Transport::NAMES
            .iter()
            .find(|(name, _)| *name == s)
            .map(|&(_, t)| t)
            .ok_or_else(|| {
                let valid: Vec<&str> = Transport::NAMES.iter().map(|&(name, _)| name).collect();
                format!(
                    "unknown transport {s}; expected one of: {}",
                    valid.join(", ")
                )
            })
    }
}

/// Usage text.
pub const USAGE: &str = "\
gossip — Discovery through Gossip (SPAA 2012) toolkit

USAGE:
  gossip generate --family F --n N [--seed S] [--param P]   emit an edge list
  gossip run --protocol push|pull|hybrid (--family F --n N | --graph FILE)
             [--seed S] [--trace] [--param P] [--churn B]   run to completion
  gossip trials --protocol P --family F --n N [--trials T] [--seed S]
                                                            Monte Carlo stats
  gossip exact --protocol push|pull --n N --edges \"0-1,1-2\" exact E[rounds] (n<=5)
  gossip directed --family cycle|thm14|thm15|gnp --n N [--seed S]
                                                            directed two-hop walk
  gossip serve --protocol P --family F --n N [--rounds R] [--shards K]
               [--snapshot-every E] [--seed S] [--churn B]
               [--transport inproc|uds|lossy|udp]           resident engine behind
               [--bind ADDR] [--peers A1,A2,...]            epoch snapshots
  gossip help

CHURN: --churn B schedules B bursts of n/16 departures (rejoining two rounds
       later with 3 bootstrap contacts) through the membership seam; the
       run reports the applied join/leave totals.

TRANSPORT: --transport uds runs each shard as its own OS process and
       exchanges mailboxes as length-prefixed frames over Unix domain
       sockets; --transport lossy adds seeded drop/duplicate/reorder fault
       injection with nak-driven retransmit. --transport udp runs the
       datagram cluster: shard processes exchange frames peer-to-peer over
       UDP sockets from a static peer table (--bind sets the coordinator
       address, --peers the K-1 worker addresses; both default to
       auto-assigned loopback ports). All replay the in-process trajectory
       bit-for-bit and need --shards K > 1.

PROTOCOLS: resolved through the gossip-core registry (push, pull, hybrid);
           --process is accepted as an alias of --protocol.

FAMILIES: path cycle star double-star complete binary-tree random-tree
          sparse (tree + extra edges) ws (watts-strogatz) ba (barabasi-albert)
          hypercube (n = 2^param) barbell lollipop grid
";

impl Command {
    /// Parses an argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter();
        let sub = it.next().map(String::as_str).unwrap_or("help");
        let mut family: Option<String> = None;
        let mut process: Option<String> = None;
        let mut graph_file: Option<String> = None;
        let mut edges: Option<String> = None;
        let mut n: Option<usize> = None;
        let mut seed = 42u64;
        let mut trials = 16usize;
        let mut trace = false;
        let mut param: Option<u64> = None;
        let mut rounds = 128u64;
        let mut shards = 1usize;
        let mut snapshot_every = 1u64;
        let mut churn = 0usize;
        let mut transport = Transport::Inproc;
        let mut bind: Option<String> = None;
        let mut peers: Option<String> = None;

        while let Some(flag) = it.next() {
            let mut take = || -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--family" => family = Some(take()?.clone()),
                // --protocol is the registry-facing name; --process is the
                // historical alias. Both resolve through RuleId::parse.
                "--process" | "--protocol" => process = Some(take()?.clone()),
                "--graph" => graph_file = Some(take()?.clone()),
                "--edges" => edges = Some(take()?.clone()),
                "--n" => n = Some(take()?.parse().map_err(|_| "--n needs an integer")?),
                "--seed" => seed = take()?.parse().map_err(|_| "--seed needs an integer")?,
                "--trials" => trials = take()?.parse().map_err(|_| "--trials needs an integer")?,
                "--param" => param = Some(take()?.parse().map_err(|_| "--param needs an integer")?),
                "--rounds" => {
                    rounds = take()?.parse().map_err(|_| "--rounds needs an integer")?;
                }
                "--shards" => {
                    shards = take()?.parse().map_err(|_| "--shards needs an integer")?;
                }
                "--snapshot-every" => {
                    snapshot_every = take()?
                        .parse()
                        .map_err(|_| "--snapshot-every needs an integer")?;
                }
                "--churn" => {
                    churn = take()?.parse().map_err(|_| "--churn needs an integer")?;
                }
                "--transport" => transport = Transport::parse(take()?)?,
                "--bind" => bind = Some(take()?.clone()),
                "--peers" => peers = Some(take()?.clone()),
                "--trace" => trace = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }

        if transport != Transport::Inproc && sub != "serve" {
            return Err("--transport only applies to serve".into());
        }
        if (bind.is_some() || peers.is_some()) && transport != Transport::Udp {
            return Err("--bind/--peers only apply to serve --transport udp".into());
        }

        match sub {
            "generate" => Ok(Command::Generate {
                family: family.ok_or("generate needs --family")?,
                n: n.ok_or("generate needs --n")?,
                seed,
                param,
            }),
            "run" => {
                if family.is_none() && graph_file.is_none() {
                    return Err("run needs --family or --graph".into());
                }
                Ok(Command::Run {
                    process: process.ok_or("run needs --protocol")?,
                    family,
                    n: n.unwrap_or(0),
                    graph_file,
                    seed,
                    trace,
                    param,
                    churn,
                })
            }
            "trials" => Ok(Command::Trials {
                process: process.ok_or("trials needs --protocol")?,
                family: family.ok_or("trials needs --family")?,
                n: n.ok_or("trials needs --n")?,
                trials,
                seed,
                param,
            }),
            "exact" => Ok(Command::Exact {
                process: process.ok_or("exact needs --protocol")?,
                edges: edges.ok_or("exact needs --edges")?,
                n: n.ok_or("exact needs --n")?,
            }),
            "directed" => Ok(Command::Directed {
                family: family.ok_or("directed needs --family")?,
                n: n.ok_or("directed needs --n")?,
                seed,
            }),
            "serve" => {
                if transport != Transport::Inproc && shards < 2 {
                    return Err("--transport uds|lossy|udp needs --shards K > 1".into());
                }
                Ok(Command::Serve {
                    process: process.ok_or("serve needs --protocol")?,
                    family: family.ok_or("serve needs --family")?,
                    n: n.ok_or("serve needs --n")?,
                    rounds,
                    shards,
                    snapshot_every,
                    seed,
                    param,
                    churn,
                    transport,
                    bind,
                    peers,
                })
            }
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown subcommand {other}")),
        }
    }
}

/// Builds an undirected graph from a family name.
pub fn make_graph(
    family: &str,
    n: usize,
    seed: u64,
    param: Option<u64>,
) -> Result<UndirectedGraph, String> {
    let mut rng = gossip_core::rng::stream_rng(seed, 0xC11, 0);
    Ok(match family {
        "path" => generators::path(n),
        "cycle" => generators::cycle(n),
        "star" => generators::star(n),
        "double-star" => generators::double_star(n),
        "complete" => generators::complete(n),
        "binary-tree" => generators::binary_tree(n),
        "random-tree" => generators::random_tree(n, &mut rng),
        "sparse" => {
            let m = param.unwrap_or(2 * n as u64);
            generators::tree_plus_random_edges(n, m, &mut rng)
        }
        "ws" => generators::watts_strogatz(n, param.unwrap_or(3) as usize, 0.1, &mut rng),
        "ba" => generators::barabasi_albert(n, param.unwrap_or(2) as usize, &mut rng),
        "hypercube" => generators::hypercube(param.unwrap_or_else(|| n.ilog2() as u64) as u32),
        "barbell" => generators::barbell(n / 2),
        "lollipop" => generators::lollipop(n / 2, n - n / 2),
        "grid" => {
            let side = (n as f64).sqrt().round().max(1.0) as usize;
            generators::grid(side, side)
        }
        other => return Err(format!("unknown family {other}")),
    })
}

fn make_directed(family: &str, n: usize, seed: u64) -> Result<DirectedGraph, String> {
    let mut rng = gossip_core::rng::stream_rng(seed, 0xD1C, 0);
    Ok(match family {
        "cycle" => generators::directed_cycle(n),
        "thm14" => generators::theorem14_graph(n.next_multiple_of(4)),
        "thm15" => generators::theorem15_graph(if n.is_multiple_of(2) { n } else { n + 1 }),
        "gnp" => generators::directed_gnp_strong(n, (8.0 / n as f64).min(0.9), &mut rng),
        other => return Err(format!("unknown directed family {other}")),
    })
}

/// The CLI's standard burst schedule for `--churn B`: `B` bursts of
/// `n/16` nodes, departing every 4 rounds from round 1, each rejoining
/// two rounds later with 3 bootstrap contacts. Deterministic in `seed`
/// (the plan replays; engines never draw membership randomness).
fn churn_plan(n: usize, bursts: usize, seed: u64) -> MembershipPlan {
    MembershipPlan::bursts(&ChurnBursts {
        n,
        nodes_per_burst: (n / 16).max(1),
        bursts,
        first_round: 1,
        period: 4,
        rejoin_after: 2,
        bootstrap_contacts: 3,
        seed: seed ^ 0xC402,
    })
}

fn parse_edges(spec: &str, n: usize) -> Result<UndirectedGraph, String> {
    let mut g = UndirectedGraph::new(n);
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (a, b) = part
            .trim()
            .split_once('-')
            .ok_or_else(|| format!("bad edge {part:?}; expected a-b"))?;
        let a: u32 = a
            .trim()
            .parse()
            .map_err(|_| format!("bad endpoint in {part:?}"))?;
        let b: u32 = b
            .trim()
            .parse()
            .map_err(|_| format!("bad endpoint in {part:?}"))?;
        if a as usize >= n || b as usize >= n {
            return Err(format!("edge {part:?} out of range 0..{n}"));
        }
        g.add_edge(gossip_graph::NodeId(a), gossip_graph::NodeId(b));
    }
    Ok(g)
}

/// Runs an engine behind a [`GossipService`] for the configured budget and
/// summarizes what the final snapshot serves. One metrics plugin rides the
/// loop to demonstrate the listener surface end to end.
fn serve_report<E>(engine: E, cfg: ServeConfig) -> String
where
    E: RoundEngine + Send + 'static,
    E::Graph: GraphQuery + 'static,
{
    let (metrics_listener, metrics) = MetricsCounters::new();
    let svc = GossipService::spawn_with(engine, cfg, ListenerSet::new().with(metrics_listener));
    let handle = svc.handle();
    let (_, outcome) = svc.join();
    let snap = handle.snapshot();
    let stats = snap.stats();
    format!(
        "rounds = {}, epochs = {}, edges = {}, coverage = {:.4}, \
         degree min/mean/max = {}/{:.1}/{}, added = {}",
        outcome.rounds,
        outcome.epochs,
        stats.edges,
        stats.coverage,
        stats.min_degree,
        stats.mean_degree,
        stats.max_degree,
        metrics.added.load(std::sync::atomic::Ordering::Acquire),
    )
}

/// Executes a command, returning its stdout payload.
pub fn execute(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),

        Command::Generate {
            family,
            n,
            seed,
            param,
        } => {
            let g = make_graph(family, *n, *seed, *param)?;
            out.push_str(&gio::write_undirected(&g));
        }

        Command::Run {
            process,
            family,
            n,
            graph_file,
            seed,
            trace,
            param,
            churn,
        } => {
            let g = match graph_file {
                Some(path) => {
                    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                    gio::parse_undirected(&text).map_err(|e| e.to_string())?
                }
                None => make_graph(family.as_ref().unwrap(), *n, *seed, *param)?,
            };
            let mut check = ComponentwiseComplete::for_graph(&g);
            let nf = g.n() as f64;
            let n_nodes = g.n();
            let mut t = DiscoveryTrace::default();
            let id = RuleId::parse(process)?;
            // Under churn a loaded disconnected graph can end up with a
            // rejoined node bootstrapped outside its original component,
            // making the componentwise target unreachable — cap the run
            // instead of spinning forever. Static runs keep the unbounded
            // budget they always had.
            let budget = if *churn > 0 { 100_000 } else { u64::MAX };
            let (outcome, mem) = with_rule!(id, |rule| {
                let mut engine = Engine::new(g, rule, *seed);
                if *churn > 0 {
                    engine = engine.with_membership(churn_plan(n_nodes, *churn, *seed));
                }
                let outcome = engine.run_traced(&mut check, budget, &mut t);
                (outcome, engine.membership_stats())
            });
            let _ = writeln!(
                out,
                "process = {process}, rounds = {}, final edges = {}, rounds / n log² n = {:.4}",
                outcome.rounds,
                outcome.final_edges,
                outcome.rounds as f64 / (nf * nf.ln() * nf.ln()).max(1.0),
            );
            if *churn > 0 {
                let _ = writeln!(
                    out,
                    "churn: bursts = {churn}, leaves = {}, joins = {}, edges removed = {}, \
                     bootstrap edges = {}",
                    mem.leaves, mem.joins, mem.edges_removed, mem.edges_added,
                );
            }
            if *trace {
                out.push_str(&t.to_csv());
            }
        }

        Command::Trials {
            process,
            family,
            n,
            trials,
            seed,
            param,
        } => {
            let g = make_graph(family, *n, *seed, *param)?;
            let cfg = TrialConfig {
                trials: *trials,
                base_seed: *seed,
                max_rounds: u64::MAX,
                parallel: true,
            };
            let id = RuleId::parse(process)?;
            let rounds = with_rule!(id, |rule| convergence_rounds(
                &g,
                rule,
                ComponentwiseComplete::for_graph,
                &cfg
            ));
            let s = Summary::of_rounds(&rounds);
            let _ = writeln!(
                out,
                "{process} on {family}(n={n}): trials = {}, mean = {:.1} ± {:.1}, \
                 median = {:.1}, min = {}, max = {}",
                s.count, s.mean, s.ci95, s.median, s.min, s.max
            );
        }

        Command::Exact { process, edges, n } => {
            let g = parse_edges(edges, *n)?;
            let kind = match RuleId::parse(process)? {
                RuleId::Push => ProcessKind::Push,
                RuleId::Pull => ProcessKind::Pull,
                other => return Err(format!("exact supports push|pull, got {other}")),
            };
            if *n > gossip_analysis::markov::MAX_EXACT_N {
                return Err(format!(
                    "exact analysis supports n <= {}",
                    gossip_analysis::markov::MAX_EXACT_N
                ));
            }
            let e = exact_expected_rounds(&g, kind);
            let _ = writeln!(out, "exact E[rounds to fixed point] = {e:.6}");
        }

        Command::Serve {
            process,
            family,
            n,
            rounds,
            shards,
            snapshot_every,
            seed,
            param,
            churn,
            transport,
            bind,
            peers,
        } => {
            let g = make_graph(family, *n, *seed, *param)?;
            let cfg = ServeConfig {
                snapshot_every: *snapshot_every,
                budget: *rounds,
            };
            let id = RuleId::parse(process)?;
            let plan = (*churn > 0).then(|| churn_plan(g.n(), *churn, *seed));
            let line = if *transport == Transport::Udp {
                // Datagram cluster: coordinator in this process, one
                // re-execed worker process per remaining peer-table slot
                // (`maybe_run_cluster_shard` diverts the copies).
                let g = ShardedArenaGraph::from_undirected(&g, *shards);
                let mut b = ClusterBuilder::new(g, id, *seed).with_mode(TransportMode::Process);
                if let Some(plan) = plan.clone() {
                    b = b.with_membership(plan);
                }
                if let Some(addr) = bind {
                    b = b.with_bind(addr.parse().map_err(|e| format!("--bind {addr}: {e}"))?);
                }
                if let Some(list) = peers {
                    let table = list
                        .split(',')
                        .map(|a| a.parse().map_err(|e| format!("--peers {a}: {e}")))
                        .collect::<Result<Vec<_>, _>>()?;
                    b = b.with_peers(table);
                }
                let engine = b.spawn().map_err(|e| format!("cluster spawn: {e}"))?;
                serve_report(engine, cfg)
            } else if *transport != Transport::Inproc {
                // Serialized seam: one OS process per shard, framed
                // mailboxes over UDS. Worker copies of this binary never
                // reach the CLI — `maybe_run_worker` diverts them at the
                // top of `main`.
                let g = ShardedArenaGraph::from_undirected(&g, *shards);
                let mut b = TransportBuilder::new(g, id, *seed).with_mode(TransportMode::Process);
                if let Some(plan) = plan.clone() {
                    b = b.with_membership(plan);
                }
                if *transport == Transport::Lossy {
                    b = b.with_lossy(LossyConfig {
                        seed: seed ^ 0x1055,
                        drop_per_mille: 50,
                        dup_per_mille: 30,
                        reorder: true,
                    });
                }
                let engine = b.spawn().map_err(|e| format!("transport spawn: {e}"))?;
                serve_report(engine, cfg)
            } else if *shards > 1 {
                let g = ShardedArenaGraph::from_undirected(&g, *shards);
                with_rule!(id, |rule| {
                    let mut b = EngineBuilder::new(g, rule, *seed);
                    if let Some(plan) = plan.clone() {
                        b = b.membership(plan);
                    }
                    serve_report(b.build_sharded(), cfg)
                })
            } else {
                let g = ArenaGraph::from_undirected(&g);
                with_rule!(id, |rule| {
                    let mut b = EngineBuilder::new(g, rule, *seed);
                    if let Some(plan) = plan.clone() {
                        b = b.membership(plan);
                    }
                    serve_report(b.build(), cfg)
                })
            };
            let churn_note = if *churn > 0 {
                format!(", churn={churn}")
            } else {
                String::new()
            };
            let transport_note = match transport {
                Transport::Inproc => String::new(),
                Transport::Uds => ", transport=uds".into(),
                Transport::Lossy => ", transport=lossy".into(),
                Transport::Udp => ", transport=udp".into(),
            };
            let _ = writeln!(
                out,
                "serve {process} on {family}(n={n}, shards={shards}{churn_note}{transport_note}): {line}"
            );
        }

        Command::Directed { family, n, seed } => {
            let g = make_directed(family, *n, *seed)?;
            let mut check = ClosureReached::for_graph(&g);
            let target = check.target_arcs();
            let n_actual = g.n() as f64;
            let mut engine = Engine::new(g, DirectedPull, *seed);
            let outcome = engine.run_until(&mut check, u64::MAX);
            let _ = writeln!(
                out,
                "directed pull on {family}(n={}): rounds = {}, closure arcs = {target}, \
                 rounds / n² = {:.4}",
                n_actual as usize,
                outcome.rounds,
                outcome.rounds as f64 / (n_actual * n_actual),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = Command::parse(&argv("generate --family star --n 8 --seed 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                family: "star".into(),
                n: 8,
                seed: 3,
                param: None
            }
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(Command::parse(&argv("fly --to moon")).is_err());
        assert!(Command::parse(&argv("run --process push")).is_err()); // no graph
        assert!(Command::parse(&argv("generate --n 8")).is_err()); // no family
        assert!(Command::parse(&argv("generate --family star --n eight")).is_err());
    }

    #[test]
    fn parse_defaults() {
        let cmd = Command::parse(&argv("trials --process pull --family cycle --n 10")).unwrap();
        match cmd {
            Command::Trials { trials, seed, .. } => {
                assert_eq!(trials, 16);
                assert_eq!(seed, 42);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn help_is_default() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
        assert!(execute(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn generate_emits_parseable_edge_list() {
        let out = execute(&Command::Generate {
            family: "cycle".into(),
            n: 6,
            seed: 1,
            param: None,
        })
        .unwrap();
        let g = gio::parse_undirected(&out).unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn run_completes_and_traces() {
        let out = execute(&Command::Run {
            process: "push".into(),
            family: Some("star".into()),
            n: 8,
            graph_file: None,
            seed: 5,
            trace: true,
            param: None,
            churn: 0,
        })
        .unwrap();
        assert!(out.contains("process = push"));
        assert!(out.contains("round,introducer,a,b"));
        // Star on 8 gains C(7,2) = 21 edges: header + 21 trace lines + summary.
        assert_eq!(out.lines().count(), 1 + 1 + 21);
    }

    #[test]
    fn trials_reports_stats() {
        let out = execute(&Command::Trials {
            process: "pull".into(),
            family: "cycle".into(),
            n: 12,
            trials: 4,
            seed: 9,
            param: None,
        })
        .unwrap();
        assert!(out.contains("mean ="));
        assert!(out.contains("trials = 4"));
    }

    #[test]
    fn exact_matches_solver() {
        let out = execute(&Command::Exact {
            process: "push".into(),
            edges: "0-1,1-2".into(),
            n: 3,
        })
        .unwrap();
        assert!(
            out.contains("2.000000"),
            "path-3 push is exactly 2 rounds: {out}"
        );
        // n too large is a clean error, not a panic.
        let err = execute(&Command::Exact {
            process: "push".into(),
            edges: "0-1".into(),
            n: 9,
        })
        .unwrap_err();
        assert!(err.contains("n <="));
    }

    #[test]
    fn exact_rejects_bad_edges() {
        assert!(parse_edges("0:1", 3).is_err());
        assert!(parse_edges("0-9", 3).is_err());
        assert!(parse_edges("x-1", 3).is_err());
        assert!(parse_edges("0-1,1-2", 3).is_ok());
    }

    #[test]
    fn directed_runs() {
        let out = execute(&Command::Directed {
            family: "cycle".into(),
            n: 8,
            seed: 2,
        })
        .unwrap();
        assert!(out.contains("closure arcs = 56"));
    }

    #[test]
    fn serve_reports_final_snapshot_for_both_engines() {
        // Sequential (shards = 1) and sharded (shards = 4) behind the same
        // subcommand; 4 rounds of push on a 64-star is deterministic.
        let mut lines = Vec::new();
        for shards in [1usize, 4] {
            let out = execute(&Command::Serve {
                process: "push".into(),
                family: "star".into(),
                n: 64,
                rounds: 4,
                shards,
                snapshot_every: 2,
                seed: 11,
                param: None,
                churn: 0,
                transport: Transport::Inproc,
                bind: None,
                peers: None,
            })
            .unwrap();
            assert!(out.contains("rounds = 4"), "{out}");
            assert!(out.contains("coverage ="), "{out}");
            // budget 4, cadence 2 → epochs 0 (initial), 2, 4, final = 4
            assert!(out.contains("epochs = 4"), "{out}");
            lines.push(out.split_once("): ").unwrap().1.to_string());
        }
        // Same trajectory regardless of the engine serving it.
        assert_eq!(lines[0], lines[1]);
    }

    #[test]
    fn parse_serve_flags() {
        let cmd = Command::parse(&argv(
            "serve --process pull --family sparse --n 100 --rounds 9 --shards 2 --snapshot-every 3",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                rounds,
                shards,
                snapshot_every,
                ..
            } => {
                assert_eq!((rounds, shards, snapshot_every), (9, 2, 3));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(Command::parse(&argv("serve --family star --n 8")).is_err());
    }

    #[test]
    fn parse_transport_flag() {
        for (word, want) in Transport::NAMES {
            let cmd = Command::parse(&argv(&format!(
                "serve --protocol push --family star --n 32 --shards 2 --transport {word}"
            )))
            .unwrap();
            match cmd {
                Command::Serve { transport, .. } => assert_eq!(transport, want),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        // Unknown mode, serialized transport without real shards, and
        // --transport on a non-serve subcommand are all clean errors.
        // The unknown-mode error must enumerate every valid spelling —
        // it used to trail behind the enum as transports were added.
        let err = Command::parse(&argv(
            "serve --protocol push --family star --n 32 --shards 2 --transport tcp",
        ))
        .unwrap_err();
        assert!(err.contains("unknown transport"), "{err}");
        for (word, _) in Transport::NAMES {
            assert!(err.contains(word), "error does not list {word}: {err}");
        }
        assert!(Command::parse(&argv(
            "serve --protocol push --family star --n 32 --transport uds"
        ))
        .unwrap_err()
        .contains("--shards"));
        assert!(Command::parse(&argv(
            "run --protocol push --family star --n 32 --transport uds"
        ))
        .unwrap_err()
        .contains("only applies to serve"));
    }

    #[test]
    fn parse_peer_table_flags() {
        let cmd = Command::parse(&argv(
            "serve --protocol push --family star --n 32 --shards 2 --transport udp \
             --bind 127.0.0.1:7000 --peers 127.0.0.1:7001",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                transport,
                bind,
                peers,
                ..
            } => {
                assert_eq!(transport, Transport::Udp);
                assert_eq!(bind.as_deref(), Some("127.0.0.1:7000"));
                assert_eq!(peers.as_deref(), Some("127.0.0.1:7001"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The peer-table flags are meaningless off the datagram path.
        assert!(Command::parse(&argv(
            "serve --protocol push --family star --n 32 --shards 2 --transport uds \
             --bind 127.0.0.1:7000"
        ))
        .unwrap_err()
        .contains("--transport udp"));
        assert!(Command::parse(&argv(
            "run --protocol push --family star --n 32 --peers 127.0.0.1:7001"
        ))
        .unwrap_err()
        .contains("--transport udp"));
    }

    #[test]
    fn parse_churn_flag() {
        let cmd = Command::parse(&argv(
            "run --protocol push --family sparse --n 64 --churn 2",
        ))
        .unwrap();
        match cmd {
            Command::Run { churn, .. } => assert_eq!(churn, 2),
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = Command::parse(&argv(
            "serve --protocol pull --family star --n 32 --churn 1",
        ))
        .unwrap();
        match cmd {
            Command::Serve { churn, .. } => assert_eq!(churn, 1),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(
            Command::parse(&argv("run --protocol push --family star --n 8 --churn x")).is_err()
        );
    }

    #[test]
    fn run_under_churn_reports_membership_and_completes() {
        let out = execute(&Command::Run {
            process: "push".into(),
            family: Some("sparse".into()),
            n: 96,
            graph_file: None,
            seed: 7,
            trace: false,
            param: None,
            churn: 2,
        })
        .unwrap();
        assert!(out.contains("process = push"), "{out}");
        // 2 bursts of 96/16 = 6 nodes, each leaving once and rejoining once.
        assert!(
            out.contains("churn: bursts = 2, leaves = 12, joins = 12"),
            "{out}"
        );
    }

    #[test]
    fn serve_under_churn_is_engine_invariant() {
        // The same churned trajectory from the sequential and the sharded
        // resident engine — the membership seam rides the builder into both.
        let mut lines = Vec::new();
        for shards in [1usize, 4] {
            let out = execute(&Command::Serve {
                process: "pull".into(),
                family: "sparse".into(),
                n: 128,
                rounds: 8,
                shards,
                snapshot_every: 2,
                seed: 13,
                param: None,
                churn: 1,
                transport: Transport::Inproc,
                bind: None,
                peers: None,
            })
            .unwrap();
            assert!(out.contains("churn=1"), "{out}");
            lines.push(out.split_once("): ").unwrap().1.to_string());
        }
        assert_eq!(lines[0], lines[1]);
    }

    #[test]
    fn all_families_generate() {
        for fam in [
            "path",
            "cycle",
            "star",
            "double-star",
            "complete",
            "binary-tree",
            "random-tree",
            "sparse",
            "ws",
            "ba",
            "barbell",
            "lollipop",
            "grid",
        ] {
            let g = make_graph(fam, 16, 7, None).unwrap();
            assert!(g.n() >= 4, "{fam} produced a degenerate graph");
        }
        let g = make_graph("hypercube", 16, 7, Some(4)).unwrap();
        assert_eq!(g.n(), 16);
        assert!(make_graph("klein-bottle", 16, 7, None).is_err());
    }
}
