//! The `gossip` CLI shim; all logic lives in `discovery_gossip::cli`.

fn main() {
    // `serve --transport uds|lossy` re-execs this binary once per shard;
    // a worker copy connects to its socket here and never reaches the CLI.
    discovery_gossip::shard::maybe_run_worker();
    // Likewise `serve --transport udp` re-execs one datagram shard
    // worker per peer-table slot.
    discovery_gossip::cluster::maybe_run_cluster_shard();

    let args: Vec<String> = std::env::args().skip(1).collect();
    match discovery_gossip::cli::Command::parse(&args)
        .and_then(|c| discovery_gossip::cli::execute(&c))
    {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", discovery_gossip::cli::USAGE);
            std::process::exit(2);
        }
    }
}
