//! The `gossip` CLI shim; all logic lives in `discovery_gossip::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match discovery_gossip::cli::Command::parse(&args)
        .and_then(|c| discovery_gossip::cli::execute(&c))
    {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", discovery_gossip::cli::USAGE);
            std::process::exit(2);
        }
    }
}
