//! Exact expected convergence times via absorbing Markov chains.
//!
//! For small `n` the process state is just the edge set, encoded as a bitmask
//! over the `C(n,2)` vertex pairs. One round transitions by the union of all
//! nodes' independently proposed edges; because edges are only ever *added*,
//! the state graph is a DAG ordered by popcount (plus self-loops), so
//! expected hitting times solve by memoized recursion — no linear system.
//!
//! The per-round transition distribution is built by **convolving per-node
//! proposal distributions over added-edge masks** instead of enumerating the
//! joint choice space: the joint space is `Π_u d(u)²` (hopeless even at
//! `n = 5`), the convolution is `O(states_in_support × outcomes_per_node)`
//! per node. This is what makes `n ≤ 5` exact analysis instantaneous — and
//! it is exactly what's needed to verify the paper's Figure 1(c)
//! non-monotonicity example.

use gossip_graph::components::componentwise_complete_edges;
use gossip_graph::{NodeId, UndirectedGraph};
// BTreeMap, not HashMap: the hitting-time recursion and the convolution both
// *iterate* these maps while accumulating f64 sums, and HashMap's per-process
// RandomState would reorder the additions — shifting results by ulps between
// runs and breaking the workspace's bit-identical-reruns guarantee (the
// pooled report's stddev of "identical" exact values must be exactly 0).
use std::collections::BTreeMap;

/// Which process to analyze.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessKind {
    /// Push / triangulation (Section 3).
    Push,
    /// Pull / two-hop walk (Section 4).
    Pull,
}

/// Largest `n` for which exact analysis is supported (the state space is
/// `2^C(n,2)`; at `n = 6` the convolution blows past 10⁹ operations).
pub const MAX_EXACT_N: usize = 5;

/// Edge-slot index of pair `(a, b)`, `a < b`, among `C(n,2)` slots.
#[inline]
fn edge_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < n);
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

/// Encodes a graph as an edge bitmask.
fn graph_mask(g: &UndirectedGraph) -> u32 {
    let n = g.n();
    let mut mask = 0u32;
    for e in g.edges() {
        mask |= 1 << edge_index(n, e.a.index(), e.b.index());
    }
    mask
}

/// Adjacency lists recovered from a mask.
fn adjacency(n: usize, mask: u32) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for a in 0..n {
        for b in (a + 1)..n {
            if mask & (1 << edge_index(n, a, b)) != 0 {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
    }
    adj
}

/// Per-node distribution over proposed edge slots: `(Some(slot), p)` or
/// `(None, p)` for a wasted round. Probabilities sum to 1.
fn node_proposal_dist(
    n: usize,
    adj: &[Vec<usize>],
    u: usize,
    kind: ProcessKind,
) -> Vec<(Option<usize>, f64)> {
    let mut out: Vec<(Option<usize>, f64)> = Vec::new();
    let mut none_p = 0.0;
    match kind {
        ProcessKind::Push => {
            let d = adj[u].len();
            if d == 0 {
                return vec![(None, 1.0)];
            }
            let p_pair = 1.0 / (d * d) as f64;
            for (i, &v) in adj[u].iter().enumerate() {
                for (j, &w) in adj[u].iter().enumerate() {
                    if i == j {
                        none_p += p_pair;
                    } else {
                        let slot = edge_index(n, v.min(w), v.max(w));
                        push_prob(&mut out, Some(slot), p_pair);
                    }
                }
            }
        }
        ProcessKind::Pull => {
            let d = adj[u].len();
            if d == 0 {
                return vec![(None, 1.0)];
            }
            for &v in &adj[u] {
                let dv = adj[v].len();
                debug_assert!(dv >= 1, "v adjacent to u must have degree >= 1");
                let p_step = 1.0 / (d * dv) as f64;
                for &w in &adj[v] {
                    if w == u {
                        none_p += p_step;
                    } else {
                        let slot = edge_index(n, u.min(w), u.max(w));
                        push_prob(&mut out, Some(slot), p_step);
                    }
                }
            }
        }
    }
    if none_p > 0.0 {
        out.push((None, none_p));
    }
    out
}

fn push_prob(dist: &mut Vec<(Option<usize>, f64)>, key: Option<usize>, p: f64) {
    if let Some(entry) = dist.iter_mut().find(|(k, _)| *k == key) {
        entry.1 += p;
    } else {
        dist.push((key, p));
    }
}

/// Distribution over the mask of *newly added* edges in one round from state
/// `mask`: the convolution of per-node proposal distributions, with
/// proposals of already-present edges folded into "no change".
fn round_transition(n: usize, mask: u32, kind: ProcessKind) -> BTreeMap<u32, f64> {
    let adj = adjacency(n, mask);
    let mut dist: BTreeMap<u32, f64> = BTreeMap::from([(0u32, 1.0)]);
    for u in 0..n {
        let node_dist = node_proposal_dist(n, &adj, u, kind);
        let mut next: BTreeMap<u32, f64> = BTreeMap::new();
        for (&added, &p) in &dist {
            for &(slot, q) in &node_dist {
                let new_added = match slot {
                    // Proposing an edge that exists in G_t adds nothing.
                    Some(s) if mask & (1 << s) == 0 => added | (1 << s),
                    _ => added,
                };
                *next.entry(new_added).or_insert(0.0) += p * q;
            }
        }
        dist = next;
    }
    dist
}

/// Exact expected number of rounds for `kind` to take `g` to its fixed point
/// (componentwise-complete graph; the complete graph when `g` is connected).
///
/// # Panics
/// Panics if `g.n() > MAX_EXACT_N` or `g.n() < 2`.
pub fn exact_expected_rounds(g: &UndirectedGraph, kind: ProcessKind) -> f64 {
    let n = g.n();
    assert!(
        (2..=MAX_EXACT_N).contains(&n),
        "exact analysis supports 2 <= n <= {MAX_EXACT_N}, got {n}"
    );
    // Fixed point: complete within each component of the *initial* graph
    // (components never merge, so the target is invariant along every path).
    let target = {
        let mut t = g.clone();
        let (labels, _) = gossip_graph::components::connected_components(g);
        for a in 0..n {
            for b in (a + 1)..n {
                if labels[a] == labels[b] {
                    t.add_edge(NodeId::new(a), NodeId::new(b));
                }
            }
        }
        debug_assert_eq!(t.m(), componentwise_complete_edges(g));
        graph_mask(&t)
    };
    let mut memo: BTreeMap<u32, f64> = BTreeMap::new();
    expected_from(n, graph_mask(g), target, kind, &mut memo)
}

fn expected_from(
    n: usize,
    mask: u32,
    target: u32,
    kind: ProcessKind,
    memo: &mut BTreeMap<u32, f64>,
) -> f64 {
    if mask == target {
        return 0.0;
    }
    if let Some(&e) = memo.get(&mask) {
        return e;
    }
    let trans = round_transition(n, mask, kind);
    let stay = trans.get(&0).copied().unwrap_or(0.0);
    assert!(
        stay < 1.0 - 1e-12,
        "state {mask:b} is absorbing but below target {target:b}"
    );
    let mut acc = 1.0; // the round we are about to spend
    for (&added, &p) in &trans {
        if added != 0 {
            acc += p * expected_from(n, mask | added, target, kind, memo);
        }
    }
    let e = acc / (1.0 - stay);
    memo.insert(mask, e);
    e
}

/// A non-monotonicity witness: a supergraph that converges slower than its
/// own subgraph in expectation.
#[derive(Clone, Debug)]
pub struct NonMonotonePair {
    /// Edge list of the supergraph `G`.
    pub g_edges: Vec<(u32, u32)>,
    /// Edge list of the subgraph `H ⊂ G` (same node set).
    pub h_edges: Vec<(u32, u32)>,
    /// Exact expected rounds from `G`.
    pub g_expected: f64,
    /// Exact expected rounds from `H`.
    pub h_expected: f64,
}

impl NonMonotonePair {
    /// How much slower the supergraph is (`g_expected - h_expected`).
    pub fn gap(&self) -> f64 {
        self.g_expected - self.h_expected
    }
}

/// Exhaustively searches all connected graphs on `n` nodes (n ≤ 5; intended
/// for `n = 4`, Figure 1(c)'s setting) for pairs `H ⊂ G` with
/// `E[T(G)] > E[T(H)] + tolerance`, both connected and spanning the same
/// node set. Results sorted by decreasing gap.
pub fn find_nonmonotone_pairs(n: usize, kind: ProcessKind, tolerance: f64) -> Vec<NonMonotonePair> {
    assert!((2..=MAX_EXACT_N).contains(&n));
    let slots = n * (n - 1) / 2;
    let all_masks = 1u32 << slots;
    // Expected time per connected mask.
    let mut expected: BTreeMap<u32, f64> = BTreeMap::new();
    let mut connected_masks: Vec<u32> = Vec::new();
    for mask in 1..all_masks {
        let g = mask_to_graph(n, mask);
        if gossip_graph::components::is_connected(&g) {
            connected_masks.push(mask);
            expected.insert(mask, exact_expected_rounds(&g, kind));
        }
    }
    let mut out = Vec::new();
    for &gm in &connected_masks {
        for &hm in &connected_masks {
            // H strict subgraph of G on the same (spanning) node set.
            if hm != gm && hm & gm == hm {
                let (eg, eh) = (expected[&gm], expected[&hm]);
                if eg > eh + tolerance {
                    out.push(NonMonotonePair {
                        g_edges: mask_edges(n, gm),
                        h_edges: mask_edges(n, hm),
                        g_expected: eg,
                        h_expected: eh,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| b.gap().partial_cmp(&a.gap()).unwrap());
    out
}

fn mask_to_graph(n: usize, mask: u32) -> UndirectedGraph {
    UndirectedGraph::from_edges(n, mask_edges(n, mask))
}

fn mask_edges(n: usize, mask: u32) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if mask & (1 << edge_index(n, a, b)) != 0 {
                edges.push((a as u32, b as u32));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn edge_index_is_bijective() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(seen.insert(edge_index(n, a, b)));
            }
        }
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&i| i < 10));
    }

    #[test]
    fn complete_graph_needs_zero_rounds() {
        for n in 2..=5 {
            let g = generators::complete(n);
            assert_eq!(exact_expected_rounds(&g, ProcessKind::Push), 0.0);
            assert_eq!(exact_expected_rounds(&g, ProcessKind::Pull), 0.0);
        }
    }

    #[test]
    fn triangle_missing_one_edge_push() {
        // Path 0-1-2. Push: only node 1 can act; picks ordered pair from
        // {0,2}: P(propose (0,2)) = 2/4 = 1/2. Nodes 0, 2 have degree 1:
        // never propose. Geometric(1/2) => E[T] = 2 exactly.
        let g = generators::path(3);
        let e = exact_expected_rounds(&g, ProcessKind::Push);
        assert!((e - 2.0).abs() < 1e-9, "expected 2.0, got {e}");
    }

    #[test]
    fn triangle_missing_one_edge_pull() {
        // Path 0-1-2, pull. Node 0: walk 0->1->{0,2}: P(add (0,2)) = 1/2.
        // Node 2 symmetric: 1/2. Node 1: walks to a leaf then back to 1 —
        // always wasted. Per round P(no add) = 1/4 => E[T] = 1/(3/4) = 4/3.
        let g = generators::path(3);
        let e = exact_expected_rounds(&g, ProcessKind::Pull);
        assert!((e - 4.0 / 3.0).abs() < 1e-9, "expected 4/3, got {e}");
    }

    #[test]
    fn star4_push_matches_hand_computation() {
        // K_{1,3} = center c, leaves 1,2,3. Phase A (3 edges missing): only
        // the center acts (leaves have degree 1); P(add something) = 6/9,
        // E = 3/2. Phase B (2 missing, say after (1,2)): leaves 1,2 now have
        // neighbor sets {c, partner} and can only re-propose (c, partner);
        // still center-only, P = 4/9, E = 9/4. Phase C (1 missing, say
        // (2,3)): the center hits it w.p. 2/9, AND leaf 1 — now degree 3 —
        // introduces 2 to 3 w.p. 2/9: P = 1 - (7/9)², E = 81/32.
        // Total: 3/2 + 9/4 + 81/32 = 201/32 = 6.28125.
        let g = generators::star(4);
        let e = exact_expected_rounds(&g, ProcessKind::Push);
        assert!((e - 201.0 / 32.0).abs() < 1e-9, "expected 6.28125, got {e}");
    }

    #[test]
    fn disconnected_target_is_componentwise() {
        // Two disjoint edges on 4 nodes: already componentwise complete.
        let g = UndirectedGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(exact_expected_rounds(&g, ProcessKind::Push), 0.0);
        // A path plus an isolated node: converges to K3 + isolated.
        let g2 = UndirectedGraph::from_edges(4, [(0, 1), (1, 2)]);
        let e = exact_expected_rounds(&g2, ProcessKind::Push);
        assert!(
            (e - 2.0).abs() < 1e-9,
            "isolated node must not affect E[T]: {e}"
        );
    }

    #[test]
    fn figure_1c_nonmonotonicity_push_and_pull() {
        // The paper's caption: the 4-edge graph (K_{1,4}) is slower than its
        // 3-edge subgraph (K_{1,3}).
        let (g, h) = generators::nonmonotone_pair();
        for kind in [ProcessKind::Push, ProcessKind::Pull] {
            let eg = exact_expected_rounds(&g, kind);
            let eh = exact_expected_rounds(&h, kind);
            assert!(
                eg > eh + 0.5,
                "Figure 1(c) violated for {kind:?}: E[T(G)] = {eg}, E[T(H)] = {eh}"
            );
        }
        // Pinned exact values (regression guard for the solver).
        let eg = exact_expected_rounds(&g, ProcessKind::Push);
        let eh = exact_expected_rounds(&h, ProcessKind::Push);
        assert!((eg - 11.1577).abs() < 1e-3, "E[T(K_1,4)] = {eg}");
        assert!((eh - 201.0 / 32.0).abs() < 1e-9, "E[T(K_1,3)] = {eh}");
    }

    #[test]
    fn search_finds_spanning_nonmonotone_pair() {
        // Same-vertex-set counterexamples exist too: the exhaustive 4-node
        // search must surface the diamond (K4 - e) vs the 4-cycle.
        let pairs = find_nonmonotone_pairs(4, ProcessKind::Push, 0.25);
        assert!(!pairs.is_empty(), "no non-monotone pair found on 4 nodes");
        let (g, h) = generators::nonmonotone_pair_spanning();
        let g_edges: std::collections::BTreeSet<(u32, u32)> =
            g.edges().map(|e| (e.a.0, e.b.0)).collect();
        let h_edges: std::collections::BTreeSet<(u32, u32)> =
            h.edges().map(|e| (e.a.0, e.b.0)).collect();
        let found = pairs.iter().any(|p| {
            p.g_edges
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                == g_edges
                && p.h_edges
                    .iter()
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>()
                    == h_edges
        });
        assert!(found, "diamond/C4 pair not found by exhaustive search");
        // Every reported pair must be a genuine subgraph pair.
        for p in &pairs {
            let gm: std::collections::BTreeSet<_> = p.g_edges.iter().collect();
            assert!(p.h_edges.iter().all(|e| gm.contains(e)));
            assert!(p.gap() > 0.25);
        }
    }

    #[test]
    fn pinned_exact_values_regression_suite() {
        // Values independently verified by Monte Carlo (tests/exact_vs_montecarlo.rs);
        // pinned here so solver refactors can't silently shift them.
        #[allow(clippy::type_complexity)] // literal fixture table
        let cases: [(&[(u32, u32)], usize, ProcessKind, f64); 6] = [
            // 4-cycle, push.
            (
                &[(0, 1), (1, 2), (2, 3), (3, 0)],
                4,
                ProcessKind::Push,
                2.0792,
            ),
            // 4-cycle, pull.
            (
                &[(0, 1), (1, 2), (2, 3), (3, 0)],
                4,
                ProcessKind::Pull,
                1.7867,
            ),
            // Diamond (K4 - e), push — the spanning counterexample's slow side.
            (
                &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)],
                4,
                ProcessKind::Push,
                2.5312,
            ),
            // Path on 4, push and pull.
            (&[(0, 1), (1, 2), (2, 3)], 4, ProcessKind::Push, 5.3646),
            (&[(0, 1), (1, 2), (2, 3)], 4, ProcessKind::Pull, 3.5196),
            // K_{1,4}, pull (Figure 1(c) G side).
            (
                &[(0, 1), (0, 2), (0, 3), (0, 4)],
                5,
                ProcessKind::Pull,
                5.3975,
            ),
        ];
        for (edges, n, kind, expect) in cases {
            let g = UndirectedGraph::from_edges(n, edges.iter().copied());
            let e = exact_expected_rounds(&g, kind);
            assert!(
                (e - expect).abs() < 5e-4,
                "{kind:?} on {edges:?}: expected {expect}, got {e:.6}"
            );
        }
    }

    #[test]
    fn pull_faster_than_push_on_small_graphs() {
        // The two-hop walk reaches two-hop targets directly, so on every
        // connected graph up to n=4 its expected completion is no slower
        // than push's. (Not a theorem of the paper — an exact observation
        // at this scale.)
        for g in [
            generators::path(3),
            generators::path(4),
            generators::star(4),
            generators::cycle(4),
        ] {
            let push = exact_expected_rounds(&g, ProcessKind::Push);
            let pull = exact_expected_rounds(&g, ProcessKind::Pull);
            assert!(
                pull <= push + 1e-9,
                "pull ({pull}) slower than push ({push}) on {:?}",
                gossip_graph::io::edge_tuples(&g)
            );
        }
    }

    #[test]
    fn transition_probabilities_sum_to_one() {
        let g = generators::path(4);
        let mask = graph_mask(&g);
        for kind in [ProcessKind::Push, ProcessKind::Pull] {
            let dist = round_transition(4, mask, kind);
            let total: f64 = dist.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind:?} sums to {total}");
            assert!(dist.values().all(|&p| p >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "exact analysis supports")]
    fn rejects_large_n() {
        let g = generators::path(6);
        let _ = exact_expected_rounds(&g, ProcessKind::Push);
    }
}
