//! # gossip-analysis
//!
//! Analysis toolkit for the *Discovery through Gossip* reproduction:
//!
//! * [`markov`] — **exact** expected convergence times for the push/pull
//!   processes on small graphs via absorbing-chain analysis with per-node
//!   proposal-distribution convolution. This is what verifies the paper's
//!   Figure 1(c) non-monotonicity example *exactly* rather than
//!   statistically, and powers the exhaustive 4-node counterexample search.
//! * [`stats`] — Welford accumulators, confidence intervals, percentiles,
//!   Tukey-fence outlier classification.
//! * [`bootstrap`] — seeded percentile-bootstrap confidence intervals
//!   (deterministic, so reports rebuild byte-for-byte).
//! * [`fit`] — asymptotic model fitting against the paper's candidate growth
//!   laws (`n`, `n log n`, `n log² n`, `n²`, `n² log n`) plus log-log
//!   regression for model-free exponents.
//! * [`table`] — markdown/CSV result tables shared by the experiment
//!   binaries.
//!
//! ```
//! use gossip_analysis::markov::{exact_expected_rounds, ProcessKind};
//! use gossip_graph::generators;
//!
//! let (g, h) = generators::nonmonotone_pair();
//! let slow = exact_expected_rounds(&g, ProcessKind::Push);
//! let fast = exact_expected_rounds(&h, ProcessKind::Push);
//! assert!(slow > fast, "Figure 1(c): the supergraph is slower");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod distribution;
pub mod fit;
pub mod markov;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use bootstrap::{bootstrap_ci_of, bootstrap_mean_ci, ConfidenceInterval};
pub use distribution::{ks_statistic, ks_threshold_95, Ecdf};
pub use fit::{fit_model, loglog_exponent, ols, rank_models, GrowthModel, ModelFit, OlsFit};
pub use markov::{exact_expected_rounds, find_nonmonotone_pairs, NonMonotonePair, ProcessKind};
pub use stats::{
    classify_outliers, fnv1a, trimmed_mean, Fnv1a, OnlineStats, OutlierCounts, Summary,
};
pub use table::{fmt_f64, Table};
pub use timeseries::{align_series, AggregatePoint};
