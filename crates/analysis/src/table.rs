//! Result tables: the experiment binaries' common output format
//! (markdown for EXPERIMENTS.md, CSV for downstream plotting).

use std::fmt::Write as _;

/// A rectangular results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity doesn't match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown with padded columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            let _ = write!(out, "|");
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, " {cell:<w$} |");
            }
            let _ = writeln!(out);
        };
        render_row(&mut out, &self.headers);
        let _ = write!(&mut out, "|");
        for w in &widths {
            let _ = write!(&mut out, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(&mut out);
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with sensible experiment precision (3 significant-ish
/// decimals, stripping noise).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(["n", "rounds"]);
        t.push_row(["64", "1234"]);
        t.push_row(["128", "5678"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| n "));
        assert!(lines[1].starts_with("|--") || lines[1].starts_with("|-"));
        assert!(lines[2].contains("64"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.2468), "3.247");
        assert_eq!(fmt_f64(42.318), "42.3");
        assert_eq!(fmt_f64(123456.7), "123457");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.to_markdown().lines().count(), 2);
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
