//! Asymptotic model fitting: turning measured `(n, rounds)` points into the
//! paper's growth claims.
//!
//! Two complementary tools:
//!
//! * **Scale fits** against the paper's candidate forms (`n`, `n log n`,
//!   `n log² n`, `n²`, `n² log n`): fit the single constant `c` in
//!   `T ≈ c · f(n)` and score models by log-space residuals (scale-free, so
//!   a model can't win by overshooting small `n`).
//! * **Log-log regression**: the empirical growth exponent
//!   `slope = d ln T / d ln n`, model-free.

/// Candidate asymptotic forms from the paper's theorems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthModel {
    /// `f(n) = n`
    Linear,
    /// `f(n) = n ln n`
    NLogN,
    /// `f(n) = n ln² n`
    NLog2N,
    /// `f(n) = n²`
    Quadratic,
    /// `f(n) = n² ln n`
    N2LogN,
}

impl GrowthModel {
    /// All candidates, in increasing asymptotic order.
    pub const ALL: [GrowthModel; 5] = [
        GrowthModel::Linear,
        GrowthModel::NLogN,
        GrowthModel::NLog2N,
        GrowthModel::Quadratic,
        GrowthModel::N2LogN,
    ];

    /// Evaluates `f(n)`.
    pub fn eval(self, n: f64) -> f64 {
        let ln = n.ln().max(1e-9);
        match self {
            GrowthModel::Linear => n,
            GrowthModel::NLogN => n * ln,
            GrowthModel::NLog2N => n * ln * ln,
            GrowthModel::Quadratic => n * n,
            GrowthModel::N2LogN => n * n * ln,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            GrowthModel::Linear => "n",
            GrowthModel::NLogN => "n log n",
            GrowthModel::NLog2N => "n log^2 n",
            GrowthModel::Quadratic => "n^2",
            GrowthModel::N2LogN => "n^2 log n",
        }
    }
}

/// A fitted `T ≈ c · f(n)` model with its quality scores.
#[derive(Clone, Copy, Debug)]
pub struct ModelFit {
    /// The form that was fit.
    pub model: GrowthModel,
    /// Fitted scale constant `c`.
    pub c: f64,
    /// Mean squared residual in log space (lower is better).
    pub log_mse: f64,
    /// Maximum absolute ratio deviation `max |T_i / (c f(n_i)) - 1|`.
    pub max_ratio_dev: f64,
}

/// Fits the scale constant of `model` to `(n, t)` points.
///
/// The constant is the log-space least-squares solution
/// `ln c = mean(ln t - ln f(n))`, i.e. the geometric mean of the ratios —
/// robust to the order-of-magnitude spread convergence sweeps produce.
///
/// # Panics
/// Panics if fewer than 2 points or any nonpositive value.
pub fn fit_model(ns: &[f64], ts: &[f64], model: GrowthModel) -> ModelFit {
    assert_eq!(ns.len(), ts.len(), "length mismatch");
    assert!(ns.len() >= 2, "need at least 2 points");
    assert!(
        ns.iter().chain(ts.iter()).all(|&v| v > 0.0),
        "values must be positive"
    );
    let log_ratios: Vec<f64> = ns
        .iter()
        .zip(ts)
        .map(|(&n, &t)| (t / model.eval(n)).ln())
        .collect();
    let ln_c = log_ratios.iter().sum::<f64>() / log_ratios.len() as f64;
    let c = ln_c.exp();
    let log_mse = log_ratios
        .iter()
        .map(|&r| (r - ln_c) * (r - ln_c))
        .sum::<f64>()
        / log_ratios.len() as f64;
    let max_ratio_dev = ns
        .iter()
        .zip(ts)
        .map(|(&n, &t)| (t / (c * model.eval(n)) - 1.0).abs())
        .fold(0.0, f64::max);
    ModelFit {
        model,
        c,
        log_mse,
        max_ratio_dev,
    }
}

/// Fits every candidate and returns them sorted best-first by log-space MSE.
///
/// ```
/// use gossip_analysis::{rank_models, GrowthModel};
/// let ns = [64.0, 128.0, 256.0, 512.0];
/// let ts: Vec<f64> = ns.iter().map(|&n| 0.5 * n * n).collect();
/// assert_eq!(rank_models(&ns, &ts)[0].model, GrowthModel::Quadratic);
/// ```
pub fn rank_models(ns: &[f64], ts: &[f64]) -> Vec<ModelFit> {
    let mut fits: Vec<ModelFit> = GrowthModel::ALL
        .iter()
        .map(|&m| fit_model(ns, ts, m))
        .collect();
    fits.sort_by(|a, b| a.log_mse.partial_cmp(&b.log_mse).unwrap());
    fits
}

/// Ordinary least squares `y = intercept + slope * x` with `r²`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OlsFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares.
///
/// # Panics
/// Panics if fewer than 2 points or zero x-variance.
pub fn ols(xs: &[f64], ys: &[f64]) -> OlsFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least 2 points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "x values are constant");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    OlsFit {
        slope,
        intercept,
        r2,
    }
}

/// Empirical growth exponent: the slope of `ln t` against `ln n`.
/// An `n log² n` law shows an exponent drifting in ~(1.0, 1.35] over
/// practical ranges; `n²` sits at 2.
pub fn loglog_exponent(ns: &[f64], ts: &[f64]) -> OlsFit {
    let lx: Vec<f64> = ns.iter().map(|&v| v.ln()).collect();
    let ly: Vec<f64> = ts.iter().map(|&v| v.ln()).collect();
    ols(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(model: GrowthModel, c: f64, noise: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let ns: Vec<f64> = [32.0, 64.0, 128.0, 256.0, 512.0, 1024.0].to_vec();
        let ts: Vec<f64> = ns
            .iter()
            .zip(noise.iter().cycle())
            .map(|(&n, &eps)| c * model.eval(n) * (1.0 + eps))
            .collect();
        (ns, ts)
    }

    #[test]
    fn recovers_exact_constant() {
        let (ns, ts) = synth(GrowthModel::NLog2N, 0.7, &[0.0]);
        let fit = fit_model(&ns, &ts, GrowthModel::NLog2N);
        assert!((fit.c - 0.7).abs() < 1e-9);
        assert!(fit.log_mse < 1e-18);
        assert!(fit.max_ratio_dev < 1e-9);
    }

    #[test]
    fn ranks_true_model_first() {
        for true_model in GrowthModel::ALL {
            let (ns, ts) = synth(true_model, 2.0, &[0.02, -0.015, 0.01]);
            let ranked = rank_models(&ns, &ts);
            assert_eq!(
                ranked[0].model,
                true_model,
                "true {true_model:?} ranked {:?}",
                ranked.iter().map(|f| f.model).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn ols_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let fit = ols(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_r2_degrades_with_noise() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 * x + ((x * 7.7).sin() * 5.0))
            .collect();
        let fit = ols(&xs, &ys);
        assert!(fit.r2 < 1.0 && fit.r2 > 0.5);
    }

    #[test]
    fn loglog_exponent_of_quadratic() {
        let ns = [16.0, 32.0, 64.0, 128.0];
        let ts: Vec<f64> = ns.iter().map(|&n| 3.0 * n * n).collect();
        let fit = loglog_exponent(&ns, &ts);
        assert!((fit.slope - 2.0).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_exponent_of_nlog2n_is_superlinear_subquadratic() {
        let ns = [64.0, 128.0, 256.0, 512.0, 1024.0];
        let ts: Vec<f64> = ns.iter().map(|&n| GrowthModel::NLog2N.eval(n)).collect();
        let fit = loglog_exponent(&ns, &ts);
        assert!(fit.slope > 1.1 && fit.slope < 1.5, "slope {}", fit.slope);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fit_rejects_nonpositive() {
        let _ = fit_model(&[1.0, 2.0], &[0.0, 1.0], GrowthModel::Linear);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn ols_rejects_constant_x() {
        let _ = ols(&[1.0, 1.0], &[2.0, 3.0]);
    }
}
