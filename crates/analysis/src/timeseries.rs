//! Aggregating per-round series across Monte Carlo trials.
//!
//! Experiments that report a *trajectory* (minimum degree over rounds, edge
//! growth curves) need the mean ± CI of a quantity at each sampled round
//! across trials of different lengths. [`align_series`] does this on a
//! common grid: trial `i` contributes its last-known value at every grid
//! point up to its own final round (step interpolation — the natural choice
//! for monotone counters like edges and degrees).

use crate::stats::OnlineStats;

/// One aggregated grid point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregatePoint {
    /// Grid round.
    pub round: u64,
    /// Mean across trials still running at (or stopped before) this round.
    pub mean: f64,
    /// Half-width of the 95% CI.
    pub ci95: f64,
    /// Trials contributing (all of them, by step-extension).
    pub count: u64,
}

/// Aligns `trials` — each a `(round, value)` series sorted by round — onto a
/// uniform grid with `grid_points` points spanning `[0, max_round]`, using
/// step ("last observation carried forward") interpolation.
///
/// # Panics
/// Panics if any trial is empty, unsorted, or `grid_points == 0`.
pub fn align_series(trials: &[Vec<(u64, f64)>], grid_points: usize) -> Vec<AggregatePoint> {
    assert!(grid_points > 0, "grid must have at least one point");
    assert!(!trials.is_empty(), "no trials to aggregate");
    for t in trials {
        assert!(!t.is_empty(), "empty trial series");
        assert!(
            t.windows(2).all(|w| w[0].0 <= w[1].0),
            "trial series must be sorted by round"
        );
    }
    let max_round = trials.iter().map(|t| t.last().unwrap().0).max().unwrap();
    let grid: Vec<u64> = (0..grid_points)
        .map(|i| {
            if grid_points == 1 {
                max_round
            } else {
                max_round * i as u64 / (grid_points as u64 - 1)
            }
        })
        .collect();

    let mut out = Vec::with_capacity(grid_points);
    // Per-trial cursor into its series.
    let mut cursors = vec![0usize; trials.len()];
    for &g in &grid {
        let mut acc = OnlineStats::new();
        for (t, series) in trials.iter().enumerate() {
            // Advance cursor to the last point with round <= g.
            while cursors[t] + 1 < series.len() && series[cursors[t] + 1].0 <= g {
                cursors[t] += 1;
            }
            // Before a trial's first sample, carry its first value backward.
            let v = if series[cursors[t]].0 > g {
                series[0].1
            } else {
                series[cursors[t]].1
            };
            acc.push(v);
        }
        out.push(AggregatePoint {
            round: g,
            mean: acc.mean(),
            ci95: acc.ci95(),
            count: acc.count(),
        });
    }
    out
}

/// Convenience: converts `gossip-core` recorder rows to `(round, value)`
/// series using an extractor.
pub fn series_from_rows<T>(
    rows: &[T],
    round_of: impl Fn(&T) -> u64,
    value_of: impl Fn(&T) -> f64,
) -> Vec<(u64, f64)> {
    rows.iter().map(|r| (round_of(r), value_of(r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_trial_identity_on_grid() {
        let t = vec![vec![(0u64, 1.0), (10, 2.0), (20, 3.0)]];
        let agg = align_series(&t, 3);
        assert_eq!(agg.len(), 3);
        assert_eq!(agg[0].round, 0);
        assert_eq!(agg[0].mean, 1.0);
        assert_eq!(agg[1].round, 10);
        assert_eq!(agg[1].mean, 2.0);
        assert_eq!(agg[2].round, 20);
        assert_eq!(agg[2].mean, 3.0);
    }

    #[test]
    fn step_interpolation_carries_forward() {
        let t = vec![vec![(0u64, 5.0), (100, 10.0)]];
        let agg = align_series(&t, 5);
        // Points at rounds 0, 25, 50, 75, 100: value stays 5 until 100.
        assert_eq!(agg[1].mean, 5.0);
        assert_eq!(agg[3].mean, 5.0);
        assert_eq!(agg[4].mean, 10.0);
    }

    #[test]
    fn short_trials_extend_with_final_value() {
        // Trial 1 converged early at value 4; trial 2 runs to 100 ending at 8.
        let trials = vec![vec![(0u64, 0.0), (10, 4.0)], vec![(0u64, 0.0), (100, 8.0)]];
        let agg = align_series(&trials, 2);
        assert_eq!(agg[1].round, 100);
        assert_eq!(agg[1].mean, 6.0); // (4 + 8) / 2
        assert_eq!(agg[1].count, 2);
    }

    #[test]
    fn mean_and_ci_across_trials() {
        let trials: Vec<Vec<(u64, f64)>> = (0..10)
            .map(|i| vec![(0u64, i as f64), (10, i as f64 + 1.0)])
            .collect();
        let agg = align_series(&trials, 2);
        assert!((agg[0].mean - 4.5).abs() < 1e-12);
        assert!((agg[1].mean - 5.5).abs() < 1e-12);
        assert!(agg[0].ci95 > 0.0);
    }

    #[test]
    fn series_from_rows_extractor() {
        struct R {
            round: u64,
            m: u64,
        }
        let rows = vec![R { round: 1, m: 10 }, R { round: 5, m: 20 }];
        let s = series_from_rows(&rows, |r| r.round, |r| r.m as f64);
        assert_eq!(s, vec![(1, 10.0), (5, 20.0)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let t = vec![vec![(10u64, 1.0), (0, 2.0)]];
        let _ = align_series(&t, 2);
    }

    #[test]
    #[should_panic(expected = "empty trial")]
    fn rejects_empty_trial() {
        let t: Vec<Vec<(u64, f64)>> = vec![vec![]];
        let _ = align_series(&t, 2);
    }
}
