//! Summary statistics for Monte Carlo round counts.

/// Streaming mean/variance via Welford's algorithm — numerically stable for
/// long accumulations, O(1) memory.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of a ~95% normal confidence interval for the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Smallest observation (NaN-free input assumed).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Reconstructs an accumulator from externally stored summary moments
    /// (count, mean, and sum of squared deviations `m2 = stddev² · (n-1)`),
    /// so summaries persisted without raw samples can still [`merge`]
    /// exactly.
    ///
    /// [`merge`]: OnlineStats::merge
    pub fn from_moments(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> OnlineStats {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary of a sample: mean, spread, and order statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the 95% CI for the mean.
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Median (interpolated).
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// 10th percentile (interpolated).
    pub p10: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        Summary {
            count: values.len(),
            mean: acc.mean(),
            stddev: acc.stddev(),
            ci95: acc.ci95(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            max: *sorted.last().unwrap(),
            p10: percentile_sorted(&sorted, 10.0),
            p90: percentile_sorted(&sorted, 90.0),
        }
    }

    /// Summarizes integer round counts.
    pub fn of_rounds(rounds: &[u64]) -> Summary {
        let vals: Vec<f64> = rounds.iter().map(|&r| r as f64).collect();
        Summary::of(&vals)
    }
}

/// Tukey-fence outlier counts for one sample, in criterion's taxonomy:
/// *mild* outliers sit more than `1.5 × IQR` outside the quartiles, *severe*
/// ones more than `3 × IQR`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutlierCounts {
    /// Below `Q1 - 3 · IQR`.
    pub low_severe: usize,
    /// In `[Q1 - 3 · IQR, Q1 - 1.5 · IQR)`.
    pub low_mild: usize,
    /// In `(Q3 + 1.5 · IQR, Q3 + 3 · IQR]`.
    pub high_mild: usize,
    /// Above `Q3 + 3 · IQR`.
    pub high_severe: usize,
}

impl OutlierCounts {
    /// Total outliers of any class.
    pub fn total(&self) -> usize {
        self.low_severe + self.low_mild + self.high_mild + self.high_severe
    }
}

/// Classifies each observation against the sample's own Tukey fences.
///
/// Quartiles are linearly interpolated ([`percentile_sorted`]). With fewer
/// than 4 observations the quartile estimate is meaningless, so every value
/// is counted as an inlier (all counts zero) — including the empty sample.
pub fn classify_outliers(values: &[f64]) -> OutlierCounts {
    if values.len() < 4 {
        return OutlierCounts::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q1 = percentile_sorted(&sorted, 25.0);
    let q3 = percentile_sorted(&sorted, 75.0);
    let iqr = q3 - q1;
    let (mild_lo, mild_hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let (severe_lo, severe_hi) = (q1 - 3.0 * iqr, q3 + 3.0 * iqr);
    let mut counts = OutlierCounts::default();
    for &v in &sorted {
        if v < severe_lo {
            counts.low_severe += 1;
        } else if v < mild_lo {
            counts.low_mild += 1;
        } else if v > severe_hi {
            counts.high_severe += 1;
        } else if v > mild_hi {
            counts.high_mild += 1;
        }
    }
    counts
}

/// Mean of the observations inside the sample's own mild Tukey fences
/// (`[Q1 - 1.5·IQR, Q3 + 1.5·IQR]`) — a stall-robust location estimate.
///
/// Benchmark samples on shared hardware are contaminated one-sidedly:
/// a preempted iteration runs 5–10× slow, never fast. The plain mean
/// moves with every stall; the trimmed mean ignores them, so
/// baseline comparisons (the CI perf ratchet) gate on this estimator.
/// With fewer than 4 observations the fences are meaningless and the
/// plain mean is returned; a sample whose IQR is 0 keeps only the modal
/// values, which is exactly the robust answer there.
pub fn trimmed_mean(values: &[f64]) -> f64 {
    let full = Summary::of(values).mean;
    if values.len() < 4 {
        return full;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q1 = percentile_sorted(&sorted, 25.0);
    let q3 = percentile_sorted(&sorted, 75.0);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&v| v >= lo && v <= hi)
        .collect();
    if kept.is_empty() {
        full
    } else {
        Summary::of(&kept).mean
    }
}

/// Streaming FNV-1a 64-bit hasher: the workspace's one implementation of
/// the deterministic non-cryptographic hash used for derived seeds
/// (report bootstrap seeds) and structural checksums (sharded-graph row
/// checksums in `gossip-bench`). Not for hash tables — for reproducible
/// fingerprints of small keys and large streams alike.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Feeds bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Feeds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv1a::new().write(bytes).finish()
}

/// Linear-interpolated percentile of an ascending-sorted slice, `p` in 0..=100.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    mod trimmed {
        use crate::stats::trimmed_mean;

        #[test]
        fn ignores_one_sided_stalls() {
            // 19 clean samples near 100 plus one 10x stall: the plain mean
            // is dragged to ~145, the trimmed mean stays at the mode.
            let mut v = vec![100.0; 19];
            v.push(1000.0);
            assert!((trimmed_mean(&v) - 100.0).abs() < 1e-9);
        }

        #[test]
        fn equals_mean_on_clean_samples() {
            let v = [98.0, 99.0, 100.0, 101.0, 102.0];
            assert!((trimmed_mean(&v) - 100.0).abs() < 1e-9);
        }

        #[test]
        fn small_samples_fall_back_to_mean() {
            assert!((trimmed_mean(&[10.0, 20.0, 90.0]) - 40.0).abs() < 1e-9);
        }
    }

    use super::*;

    #[test]
    fn welford_matches_direct_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with Bessel correction: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 3.0);
        assert_eq!(percentile_sorted(&sorted, 25.0), 2.0);
        assert!((percentile_sorted(&sorted, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn summary_of_rounds() {
        let s = Summary::of_rounds(&[10, 20, 30, 40]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 25.0).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 40.0);
        assert!((s.median - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn outliers_too_few_samples_all_inliers() {
        assert_eq!(classify_outliers(&[]), OutlierCounts::default());
        assert_eq!(classify_outliers(&[1e9]), OutlierCounts::default());
        assert_eq!(classify_outliers(&[0.0, 1e9]), OutlierCounts::default());
        assert_eq!(
            classify_outliers(&[0.0, 0.0, 1e9]),
            OutlierCounts::default()
        );
    }

    #[test]
    fn outliers_classified_by_fence() {
        // Sorted sample: [-20, -5, 1..=10, 15, 30] (n = 14). Interpolated
        // quartiles: Q1 = 2.25, Q3 = 8.75, IQR = 6.5 -> mild fences at
        // [-7.5, 18.5], severe at [-17.25, 28.25]. So -20 and 30 are severe,
        // while -5 and 15 sit inside the mild fences.
        let mut xs: Vec<f64> = (1..=10).map(f64::from).collect();
        xs.extend([15.0, 30.0, -5.0, -20.0]);
        let c = classify_outliers(&xs);
        assert_eq!(
            c,
            OutlierCounts {
                low_severe: 1,
                low_mild: 0,
                high_mild: 0,
                high_severe: 1
            }
        );
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn outliers_severe_beyond_triple_iqr() {
        // Tight core with one extreme point: 10 copies of 0..=9 plus 1000.
        let mut xs: Vec<f64> = (0..10).map(f64::from).collect();
        xs.push(1000.0);
        let c = classify_outliers(&xs);
        assert_eq!(c.high_severe, 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn outliers_constant_sample_is_clean() {
        let c = classify_outliers(&[5.0; 16]);
        assert_eq!(c, OutlierCounts::default());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push(i as f64);
        }
        for i in 0..1000 {
            large.push((i % 10) as f64);
        }
        assert!(large.ci95() < small.ci95());
    }
}
