//! Bootstrap confidence intervals.
//!
//! Echo-chamber effects make single-run gossip numbers misleading, and the
//! round-count distributions are skewed enough that normal-theory intervals
//! undercover on small trial counts. The percentile bootstrap makes no
//! distributional assumption: resample the observed sample with replacement,
//! recompute the statistic, and read the interval straight off the empirical
//! distribution of the replicates.
//!
//! All resampling is driven by an explicit seed through the vendored
//! deterministic [`SmallRng`], so the same sample and seed always produce
//! the same interval — a requirement for byte-for-byte reproducible reports.

use crate::stats::percentile_sorted;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A two-sided confidence interval for a statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Full width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Half the width — the `±` radius around the interval's midpoint.
    pub fn half_width(&self) -> f64 {
        self.width() / 2.0
    }

    /// Whether `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` with-replacement resamples of `sample`, applies `stat`
/// to each, and returns the `(1 - level) / 2` and `(1 + level) / 2`
/// percentiles of the replicate distribution. Deterministic in `seed`.
///
/// A single-observation sample yields the degenerate interval `[x, x]`.
///
/// # Panics
/// Panics on an empty sample, `resamples == 0`, or `level` outside `(0, 1)`.
pub fn bootstrap_ci_of(
    sample: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    stat: impl Fn(&[f64]) -> f64,
) -> ConfidenceInterval {
    assert!(!sample.is_empty(), "empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0, 1)"
    );
    if sample.len() == 1 {
        let x = stat(sample);
        return ConfidenceInterval {
            lo: x,
            hi: x,
            level,
        };
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut resample = vec![0.0; sample.len()];
    let mut replicates = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = sample[rng.random_range(0..sample.len())];
        }
        replicates.push(stat(&resample));
    }
    replicates.sort_by(|a, b| a.partial_cmp(b).expect("NaN replicate"));
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        lo: percentile_sorted(&replicates, 100.0 * alpha),
        hi: percentile_sorted(&replicates, 100.0 * (1.0 - alpha)),
        level,
    }
}

/// Percentile-bootstrap confidence interval for the sample mean.
///
/// ```
/// use gossip_analysis::bootstrap_mean_ci;
/// let sample = [4.0, 5.0, 6.0, 5.0, 4.0, 6.0, 5.0, 5.0];
/// let ci = bootstrap_mean_ci(&sample, 500, 0.95, 7);
/// assert!(ci.contains(5.0));
/// assert!(ci.width() < 2.0);
/// ```
pub fn bootstrap_mean_ci(
    sample: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_ci_of(sample, resamples, level, seed, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let sample: Vec<f64> = (0..40).map(|i| ((i * 7) % 13) as f64).collect();
        let a = bootstrap_mean_ci(&sample, 200, 0.95, 42);
        let b = bootstrap_mean_ci(&sample, 200, 0.95, 42);
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&sample, 200, 0.95, 43);
        assert_ne!(a, c, "different seeds should perturb the interval");
    }

    #[test]
    fn contains_sample_mean_and_orders_bounds() {
        let sample: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 3.0 + 10.0).collect();
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        let ci = bootstrap_mean_ci(&sample, 500, 0.95, 1);
        assert!(ci.lo <= ci.hi);
        assert!(ci.contains(mean), "CI {ci:?} should contain mean {mean}");
    }

    #[test]
    fn coverage_on_known_distribution() {
        // 200 independent samples of size 30 from uniform{0..10} (true mean
        // 4.5). Nominal 95% coverage; accept the broad [0.85, 1.0] band so
        // the test is robust to bootstrap small-sample bias.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let true_mean = 4.5;
        let mut covered = 0usize;
        let runs = 200;
        for run in 0..runs {
            let mut rng = SmallRng::seed_from_u64(0xC0FE + run);
            let sample: Vec<f64> = (0..30).map(|_| rng.random_range(0..10u32) as f64).collect();
            let ci = bootstrap_mean_ci(&sample, 400, 0.95, 0xB00 + run);
            if ci.contains(true_mean) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / runs as f64;
        assert!(
            (0.85..=1.0).contains(&coverage),
            "coverage {coverage} out of band"
        );
    }

    #[test]
    fn width_shrinks_with_sample_size() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        let big: Vec<f64> = (0..1000)
            .map(|_| rng.random_range(0..100u32) as f64)
            .collect();
        let small = &big[..20];
        let wide = bootstrap_mean_ci(small, 400, 0.95, 5);
        let narrow = bootstrap_mean_ci(&big, 400, 0.95, 5);
        assert!(narrow.width() < wide.width());
    }

    #[test]
    fn single_observation_is_degenerate() {
        let ci = bootstrap_mean_ci(&[3.5], 100, 0.95, 0);
        assert_eq!((ci.lo, ci.hi), (3.5, 3.5));
        assert_eq!(ci.width(), 0.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn arbitrary_statistic_median() {
        let mut sample: Vec<f64> = (1..=20).map(f64::from).collect();
        sample.push(1000.0);
        let ci = bootstrap_ci_of(&sample, 500, 0.9, 11, |xs| {
            let mut s = xs.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile_sorted(&s, 50.0)
        });
        // The median is robust to the single outlier; its CI should not
        // stretch anywhere near 1000.
        assert!(ci.hi < 100.0, "median CI {ci:?} dragged by outlier");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        let _ = bootstrap_mean_ci(&[], 100, 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "level")]
    fn rejects_bad_level() {
        let _ = bootstrap_mean_ci(&[1.0, 2.0], 100, 1.5, 0);
    }
}
