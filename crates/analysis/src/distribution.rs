//! Empirical distributions: ECDFs and two-sample comparison.
//!
//! Convergence *times* are random variables; several experiments need more
//! than a mean — E14 compares the full synchronous-round and asynchronous-
//! time distributions, and robustness claims are really statements about
//! tails. A small, dependency-free ECDF with the two-sample
//! Kolmogorov–Smirnov statistic covers both.

/// An empirical cumulative distribution function over a finite sample.
///
/// ```
/// use gossip_analysis::Ecdf;
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF; sorts a copy of the sample.
    ///
    /// # Panics
    /// Panics on an empty sample or NaNs.
    pub fn new(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "empty sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ecdf { sorted }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); here for clippy's
    /// `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)` = fraction of the sample `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point: first index with value > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF by order statistic (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `sup_x |F(x) − G(x)|`.
///
/// Evaluated exactly by a linear merge over both samples' jump points.
pub fn ks_statistic(a: &Ecdf, b: &Ecdf) -> f64 {
    let (xa, xb) = (a.values(), b.values());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    // Walk the union of jump points; ties must advance BOTH cursors before
    // the gap is measured, or identical samples would show phantom gaps.
    while i < xa.len() || j < xb.len() {
        let x = match (xa.get(i), xb.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => unreachable!("loop condition"),
        };
        while i < xa.len() && xa[i] == x {
            i += 1;
        }
        while j < xb.len() && xb[j] == x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Rough significance threshold for the two-sample KS test at level ~0.05:
/// `1.358 * sqrt((n + m) / (n m))`. Distributions with `ks_statistic` above
/// this differ significantly; below it they are statistically compatible at
/// the sample sizes used.
pub fn ks_threshold_95(n: usize, m: usize) -> f64 {
    1.358 * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert!(ks_statistic(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_hand_computed_case() {
        // A = {1, 3}, B = {2, 4}: after x=1 gap is 1/2; after 2 it's 0;
        // after 3 it's 1/2; after 4 it's 0 -> D = 1/2.
        let a = Ecdf::new(&[1.0, 3.0]);
        let b = Ecdf::new(&[2.0, 4.0]);
        assert!((ks_statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_symmetry() {
        let a = Ecdf::new(&[1.0, 5.0, 9.0, 12.0]);
        let b = Ecdf::new(&[2.0, 5.5, 8.0]);
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn threshold_shrinks_with_samples() {
        assert!(ks_threshold_95(1000, 1000) < ks_threshold_95(10, 10));
        // At n = m = 100 the threshold is ~0.192.
        assert!((ks_threshold_95(100, 100) - 0.192).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        let _ = Ecdf::new(&[]);
    }
}
