//! Choice-tree enumeration: every outcome a kernel can produce for one
//! node in one round.
//!
//! The kernel seam makes this possible: a [`ProtocolKernel`] draws every
//! random decision through [`Chooser::choose`], so substituting a chooser
//! that *replays a prefix and records the first unconstrained domain*
//! turns one pure function into an enumerable choice tree. Depth-first
//! search over prefixes visits each leaf exactly once; the leaves are the
//! node's **menu** — the set of distinct effect bundles it can emit, each
//! tagged with a witness choice vector for counterexample traces.

use crate::instance::MAX_N;
use gossip_core::{Chooser, Effects, NodeState, NodeView, ProtocolKernel, Share};
use gossip_graph::NodeId;

/// How the model world interprets views and effects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum World {
    /// The batch engines' world: state is an undirected graph, kernels may
    /// read a peer's row (two-hop walks), `connect` adds an edge.
    Graph,
    /// The message-passing world: state is directed knowledge, a node sees
    /// only its own row (peer probes panic, as in the simulator), payload
    /// descriptors move contact lists.
    Knowledge,
}

/// A per-node view over the model state's contact rows.
pub(crate) struct ModelView<'a> {
    pub me: NodeId,
    pub rows: &'a [Vec<NodeId>],
    pub world: World,
}

impl NodeView for ModelView<'_> {
    fn me(&self) -> NodeId {
        self.me
    }
    fn contacts(&self) -> &[NodeId] {
        &self.rows[self.me.index()]
    }
    fn peer_contacts(&self, v: NodeId) -> &[NodeId] {
        match self.world {
            World::Graph => &self.rows[v.index()],
            World::Knowledge => panic!("knowledge world has no remote visibility"),
        }
    }
}

/// Chooser that replays a recorded prefix, then flags the first
/// unconstrained draw's domain instead of choosing.
struct ReplayChooser<'a> {
    prefix: &'a [usize],
    pos: usize,
    /// Domain size of the first draw past the prefix, if any.
    overflow: Option<usize>,
}

impl Chooser for ReplayChooser<'_> {
    fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "kernel drew from an empty domain");
        if self.pos < self.prefix.len() {
            let c = self.prefix[self.pos];
            self.pos += 1;
            c
        } else {
            // Past the prefix: record the first free domain (the DFS
            // branches on it) and return an arbitrary in-range value —
            // the run's effects are discarded.
            if self.overflow.is_none() {
                self.overflow = Some(n);
            }
            0
        }
    }
}

/// One reachable per-node round outcome: the choices that produce it and
/// the (canonicalized) effects it emits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The choice vector (one entry per `choose` call) that witnesses
    /// this outcome.
    pub choices: Vec<usize>,
    /// Proposed edges, normalized `(min, max)`, sorted, deduplicated.
    pub connects: Vec<(u32, u32)>,
    /// Outgoing payload descriptors, sorted by destination.
    pub shares: Vec<(u32, Share)>,
    /// The node's protocol state after the round — identical to the
    /// round-start state for stateless kernels, the advanced cursor
    /// vector for stateful ones. Part of the dedup key: two runs with
    /// the same wire effects but different post-states are distinct
    /// outcomes.
    pub state_after: NodeState,
}

/// Canonical `(connects, shares)` pair extracted from raw effects.
type CanonicalEffects = (Vec<(u32, u32)>, Vec<(u32, Share)>);

fn canonicalize(effects: &Effects) -> CanonicalEffects {
    let mut connects: Vec<(u32, u32)> = effects
        .connects
        .as_slice()
        .iter()
        .map(|&(a, b)| (a.0.min(b.0), a.0.max(b.0)))
        .collect();
    connects.sort_unstable();
    connects.dedup();
    let mut shares: Vec<(u32, Share)> = effects.shares.iter().map(|&(to, s)| (to.0, s)).collect();
    shares.sort_unstable_by_key(|&(to, s)| {
        let (tag, a, b) = match s {
            Share::KnownList => (0u8, 0, 0),
            Share::PullRequest => (1, 0, 0),
            Share::Slice { start, len } => (2, start, len),
        };
        (to, tag, a, b)
    });
    (connects, shares)
}

fn explore<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    view: &ModelView<'_>,
    state: &NodeState,
    prefix: &mut Vec<usize>,
    out: &mut Vec<Outcome>,
) {
    assert!(
        prefix.len() < 16,
        "kernel drew more than 16 choices in one round"
    );
    let mut effects = Effects::default();
    let mut chooser = ReplayChooser {
        prefix,
        pos: 0,
        overflow: None,
    };
    // Each enumeration run mutates a fresh copy of the round-start state;
    // the copy at a leaf is the outcome's post-state.
    let mut st = state.clone();
    kernel.on_round(&mut st, view, &mut chooser, &mut effects);
    let overflow = chooser.overflow;
    match overflow {
        None => {
            let (connects, shares) = canonicalize(&effects);
            // Deduplicate by effects + post-state; keep the first witness
            // choice vector.
            if !out
                .iter()
                .any(|o| o.connects == connects && o.shares == shares && o.state_after == st)
            {
                out.push(Outcome {
                    choices: prefix.clone(),
                    connects,
                    shares,
                    state_after: st,
                });
            }
        }
        Some(domain) => {
            for c in 0..domain {
                prefix.push(c);
                explore(kernel, view, state, prefix, out);
                prefix.pop();
            }
        }
    }
}

/// Every distinct outcome node `u` can produce this round from protocol
/// state `state`, with witness choices. Stateless kernels pass
/// [`NodeState::Stateless`]; stateful ones (the throttled Name Dropper's
/// per-destination cursors) pass the node's round-start state, and each
/// outcome carries the post-state for the checker's joint encoding.
pub fn node_menu<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    rows: &[Vec<NodeId>],
    u: usize,
    state: &NodeState,
) -> Vec<Outcome> {
    let view = ModelView {
        me: NodeId::new(u),
        rows,
        world,
    };
    let mut out = Vec::new();
    explore(kernel, &view, state, &mut Vec::new(), &mut out);
    out
}

/// Expands packed state rows into per-node ascending contact lists — the
/// slices kernels see through [`ModelView`].
pub(crate) fn rows_to_lists(rows: &[u8; MAX_N], n: usize) -> Vec<Vec<NodeId>> {
    (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| rows[i] >> j & 1 == 1)
                .map(NodeId::new)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::{NameDropperKernel, PullKernel, PushKernel};

    fn lists(rows: &[&[u32]]) -> Vec<Vec<NodeId>> {
        rows.iter()
            .map(|r| r.iter().copied().map(NodeId).collect())
            .collect()
    }

    #[test]
    fn push_menu_covers_all_pairs() {
        // Node 0 with contacts {1, 2}: draws (i, j) from 2x2 → outcomes
        // are connect(1,2) (two witnesses, deduped) and the empty outcome
        // (i == j, two witnesses).
        let rows = lists(&[&[1, 2], &[0], &[0]]);
        let menu = node_menu(&PushKernel, World::Graph, &rows, 0, &NodeState::Stateless);
        assert_eq!(menu.len(), 2);
        assert!(menu.iter().any(|o| o.connects == vec![(1, 2)]));
        assert!(menu.iter().any(|o| o.connects.is_empty()));
    }

    #[test]
    fn pull_menu_walks_two_hops() {
        // Path 0-1-2: node 0 walks to 1, then to one of {0, 2}; landing on
        // itself yields no proposal, landing on 2 connects 0-2.
        let rows = lists(&[&[1], &[0, 2], &[1]]);
        let menu = node_menu(&PullKernel, World::Graph, &rows, 0, &NodeState::Stateless);
        assert_eq!(menu.len(), 2);
        assert!(menu.iter().any(|o| o.connects == vec![(0, 2)]));
        assert!(menu.iter().any(|o| o.connects.is_empty()));
    }

    #[test]
    fn isolated_node_has_single_empty_outcome() {
        let rows = lists(&[&[]]);
        let menu = node_menu(&PushKernel, World::Graph, &rows, 0, &NodeState::Stateless);
        assert_eq!(menu.len(), 1);
        assert!(menu[0].choices.is_empty() && menu[0].connects.is_empty());
    }

    #[test]
    fn name_dropper_menu_targets_each_contact() {
        let rows = lists(&[&[1, 2], &[0], &[0]]);
        let menu = node_menu(
            &NameDropperKernel,
            World::Knowledge,
            &rows,
            0,
            &NodeState::Stateless,
        );
        assert_eq!(menu.len(), 2);
        let dests: Vec<u32> = menu.iter().map(|o| o.shares[0].0).collect();
        assert!(dests.contains(&1) && dests.contains(&2));
    }
}
