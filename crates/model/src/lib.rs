//! `gossip-model` — bounded exhaustive model checking for the protocol
//! kernels.
//!
//! The PR-7 kernel refactor made every protocol a pure function of its
//! local view and an explicit choice stream ([`gossip_core::ProtocolKernel`]).
//! This crate exploits that purity: instead of *sampling* runs with an
//! RNG, it *enumerates* them — every connected starting topology on
//! `n <= 5` nodes ([`instance`]), every per-node choice a kernel can make
//! ([`enumerate`]), every interleaving the scheduler (lossless or
//! omission-faulty) can produce ([`checker`]) — and verifies on every
//! reachable joint state:
//!
//! - **safety** — no phantom contacts: every proposed introduction stays
//!   within the proposer's closed two-hop view with at least one endpoint
//!   a direct contact; every payload goes to a current contact and fits
//!   the kernel's declared per-message id budget (the `O(log n)`-bits
//!   claim of the paper, checked exhaustively at small `n`);
//! - **liveness** — no reachable incomplete state is stuck: some
//!   enumerated outcome always makes progress, so every fair schedule
//!   reaches full discovery (monotonicity closes the argument).
//!
//! The joint state encodes the contact rows **and**, for stateful
//! kernels, per-node cursor slots — so the throttled Name Dropper's
//! per-destination cursors are checked exhaustively, not approximated
//! away. A bounded churn layer ([`ChurnEvent`], [`check_churn_family`])
//! lets the adversary interleave join/leave events with rounds, proving
//! no-phantom-contact safety under dynamic membership.
//!
//! Violations come back as [`Counterexample`]s with a minimal-in-steps
//! trace of adversary decisions; [`broken`] ships intentionally buggy
//! kernels proving the checker actually catches both property classes
//! (plus a stale-memory kernel only the churn layer can catch).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod broken;
pub mod checker;
pub mod enumerate;
pub mod instance;

pub use broken::{PhantomPush, StalePeerPush, StallingPush};
pub use checker::{
    check_all, check_churn_family, check_kernel, check_kernel_with, churn_scripts, CheckConfig,
    CheckStats, ChurnEvent, Counterexample, Schedule, TraceStep, Violation,
};
pub use enumerate::{node_menu, Outcome, World};
pub use instance::{all_instances, connected_instances, pair_index, Instance, MAX_N};
