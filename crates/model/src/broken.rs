//! Deliberately broken kernels: mutation tests for the checker itself.
//!
//! A model checker that never fails proves nothing. These kernels plant
//! one violation each — a safety bug (phantom contact) and a liveness bug
//! (permanent stall) — so the test suite can confirm the checker catches
//! both and reports a minimal, replayable counterexample trace.

use gossip_core::{Chooser, Effects, NodeState, NodeView, ProtocolKernel};
use gossip_graph::NodeId;

/// Push with an off-by-a-mile bug: it draws a pair like [`gossip_core::PushKernel`]
/// but introduces the second pick to an id far outside the world — a
/// phantom contact the safety scan must reject in round one.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhantomPush;

impl ProtocolKernel for PhantomPush {
    fn name(&self) -> &'static str {
        "push-phantom"
    }

    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let w = row[choose.choose(row.len())];
        out.connect(v, NodeId(w.0 + 100));
    }
}

/// Push that never proposes anything: every incomplete instance is a
/// stuck state, which the liveness check must flag immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallingPush;

impl ProtocolKernel for StallingPush {
    fn name(&self) -> &'static str {
        "push-stalling"
    }

    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        _view: &V,
        _choose: &mut C,
        _out: &mut Effects,
    ) {
    }
}
