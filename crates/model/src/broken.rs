//! Deliberately broken kernels: mutation tests for the checker itself.
//!
//! A model checker that never fails proves nothing. These kernels plant
//! one violation each — a safety bug (phantom contact) and a liveness bug
//! (permanent stall) — so the test suite can confirm the checker catches
//! both and reports a minimal, replayable counterexample trace.

use gossip_core::{Chooser, Effects, NodeState, NodeView, ProtocolKernel};
use gossip_graph::NodeId;

/// Push with an off-by-a-mile bug: it draws a pair like [`gossip_core::PushKernel`]
/// but introduces the second pick to an id far outside the world — a
/// phantom contact the safety scan must reject in round one.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhantomPush;

impl ProtocolKernel for PhantomPush {
    fn name(&self) -> &'static str {
        "push-phantom"
    }

    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let w = row[choose.choose(row.len())];
        out.connect(v, NodeId(w.0 + 100));
    }
}

/// Push variant with an illegal memory: on its first acting round it
/// remembers one of its contacts (slot 0 of its cursor state holds
/// `id + 1`) and thereafter keeps proposing a connection to the
/// *remembered* id instead of consulting its current row. In a static
/// world this is safe — rows only grow, so the memory stays a real
/// contact — but under churn the remembered peer can depart, and the
/// kernel names a phantom. Only the churn-aware checker (which encodes
/// per-node state in the joint key and interleaves membership events)
/// can catch this staleness bug.
#[derive(Clone, Copy, Debug, Default)]
pub struct StalePeerPush;

impl ProtocolKernel for StalePeerPush {
    fn name(&self) -> &'static str {
        "push-stale-peer"
    }

    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let mem = state.cursors_mut();
        if mem[0] != 0 {
            out.connect(view.me(), NodeId(mem[0] - 1));
            return;
        }
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let w = row[choose.choose(row.len())];
        mem[0] = w.0 + 1;
        out.connect(view.me(), w);
    }

    fn initial_state(&self, n: usize) -> NodeState {
        NodeState::Cursors(vec![0; n])
    }
}

/// Push that never proposes anything: every incomplete instance is a
/// stuck state, which the liveness check must flag immediately.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallingPush;

impl ProtocolKernel for StallingPush {
    fn name(&self) -> &'static str {
        "push-stalling"
    }

    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        _view: &V,
        _choose: &mut C,
        _out: &mut Effects,
    ) {
    }
}
