//! The bounded exhaustive checker: BFS over the joint state space of one
//! instance, scanning every reachable state for safety violations and
//! stuck states, with minimal counterexample traces.
//!
//! A joint state packs the per-node contact rows **and**, for stateful
//! kernels, the per-node cursor slots into one `u128` key: 8 bits of row
//! per node, then 3 bits per `(node, destination)` cursor, then the
//! position in the bounded churn script. For each reachable state the
//! checker derives every node's outcome *menu* (see [`crate::enumerate`]),
//! scans each outcome against the safety properties, checks that some
//! outcome still makes progress (liveness: no reachable incomplete state
//! is stuck), and folds the menus node-by-node — deduplicating
//! intermediate accumulations, which is sound because row effects are
//! monotone bit-unions over the round-start rows and each node writes
//! only its own cursor slots — to produce the successor set. When a churn
//! script is installed, the adversary may additionally fire the next
//! membership event instead of a round at any point, so every
//! interleaving of rounds and join/leave events is explored. BFS parent
//! pointers make every reported counterexample minimal in steps.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::enumerate::{node_menu, rows_to_lists, Outcome, World};
use crate::instance::{all_instances, Instance, MAX_N};
use gossip_core::{NodeState, ProtocolKernel, Share};
use gossip_graph::NodeId;

/// Which round schedules the adversary may play.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Every node's chosen outcome is delivered every round.
    Lossless,
    /// The adversary may additionally drop any node's entire round
    /// (crash-like omission: the node neither sends nor advances its
    /// protocol state); dropping everyone forever is the unfair schedule
    /// the liveness check deliberately ignores.
    Omission,
}

impl Schedule {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Lossless => "lossless",
            Schedule::Omission => "omission",
        }
    }
}

/// One membership event in a bounded churn script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Node departs: its row is scrubbed from the whole world and its own
    /// protocol state is forgotten. Other nodes' cursor slots *toward*
    /// the departed node are deliberately retained — there is no failure
    /// detector, so peers cannot know to reset; stale local memory is
    /// exactly what the churn safety sweep must prove harmless.
    Leave {
        /// The departing node.
        node: u32,
    },
    /// A previously departed node re-joins with a bootstrap contact set
    /// (bitmask over node ids); bootstrap edges are symmetric and the
    /// node's protocol state starts fresh.
    Rejoin {
        /// The re-joining node.
        node: u32,
        /// Bootstrap contact bitmask.
        contacts: u8,
    },
}

/// Knobs for one exhaustive run.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// The round schedule family the adversary plays.
    pub schedule: Schedule,
    /// BFS depth bound (rounds plus churn events).
    pub max_rounds: usize,
    /// Verify the no-stuck-state liveness property. On by default; churn
    /// sweeps turn it off because a leave can disconnect the instance,
    /// making completion unreachable by design — re-discovery *time*
    /// under churn is the bench harness's domain, not a model theorem.
    pub check_liveness: bool,
    /// Bounded membership script. The adversary fires the next event
    /// instead of a round whenever it likes (in script order), so every
    /// interleaving of rounds and events is explored. Empty = static
    /// membership.
    pub script: Vec<ChurnEvent>,
}

impl CheckConfig {
    /// Static-membership config with liveness checking on.
    pub fn new(schedule: Schedule, max_rounds: usize) -> Self {
        CheckConfig {
            schedule,
            max_rounds,
            check_liveness: true,
            script: Vec::new(),
        }
    }
}

/// Aggregate exploration statistics for one or more checked instances.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Distinct joint states visited.
    pub states: u64,
    /// Successor transitions enumerated (after intermediate dedup).
    pub transitions: u64,
    /// Deepest BFS level reached (rounds + churn events from the initial
    /// state).
    pub max_depth: usize,
    /// True if any instance hit the round bound with states unexplored.
    pub truncated: bool,
    /// Largest per-message payload (in node ids) any enumerated message
    /// carried — the empirical side of the `O(log n)`-bits claim.
    pub max_payload_ids: u64,
}

impl CheckStats {
    /// Fold another instance's stats into this aggregate.
    pub fn absorb(&mut self, other: CheckStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.truncated |= other.truncated;
        self.max_payload_ids = self.max_payload_ids.max(other.max_payload_ids);
    }
}

/// What went wrong, for a counterexample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A node proposed a connection involving an id outside its closed
    /// two-hop view (or outside the world entirely) — a phantom contact.
    PhantomConnect {
        /// The proposing node.
        node: u32,
        /// Proposed endpoints (normalized `min, max`).
        a: u32,
        /// Second endpoint.
        b: u32,
    },
    /// A node addressed a payload to someone outside its contact row.
    PhantomShare {
        /// The sending node.
        node: u32,
        /// The phantom destination.
        to: u32,
    },
    /// A message carried more node ids than the kernel's declared
    /// [`ProtocolKernel::max_message_ids`] budget.
    OverBudget {
        /// The sending node.
        node: u32,
        /// Ids the message carried.
        ids: u64,
        /// The declared budget it exceeded.
        budget: u64,
    },
    /// An incomplete state where no outcome of any node makes progress:
    /// by monotonicity no schedule can ever finish from here.
    Stuck,
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Contact rows at the start of the step.
    pub state: [u8; MAX_N],
    /// One line per node for a round step (the outcome the adversary
    /// scheduled, or a drop), or a single line for a membership event.
    pub actions: Vec<String>,
}

/// A minimal failing run: the instance, the adversary's schedule step by
/// step, and the violation at the end.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The starting topology.
    pub instance: Instance,
    /// The kernel's registry name.
    pub kernel: &'static str,
    /// The world the kernel was checked in.
    pub world: World,
    /// The schedule family the adversary played.
    pub schedule: Schedule,
    /// The churn script in effect (empty for static membership).
    pub script: Vec<ChurnEvent>,
    /// The property that failed.
    pub violation: Violation,
    /// Description of the offending node outcome (empty for [`Violation::Stuck`]).
    pub offender: String,
    /// Contact rows of the violating state.
    pub state: [u8; MAX_N],
    /// Minimal (in steps) path from the initial state to [`Self::state`].
    pub trace: Vec<TraceStep>,
}

fn rows_str(rows: &[u8; MAX_N], n: usize) -> String {
    (0..n)
        .map(|i| {
            let row: Vec<String> = (0..n)
                .filter(|&j| rows[i] >> j & 1 == 1)
                .map(|j| j.to_string())
                .collect();
            format!("{i}:{{{}}}", row.join(","))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model-check violation: kernel={} world={:?} schedule={}",
            self.kernel,
            self.world,
            self.schedule.name()
        )?;
        writeln!(f, "instance: {}", self.instance.describe())?;
        if !self.script.is_empty() {
            writeln!(f, "churn script: {:?}", self.script)?;
        }
        writeln!(f, "violation: {:?}", self.violation)?;
        if !self.offender.is_empty() {
            writeln!(f, "offender: {}", self.offender)?;
        }
        writeln!(f, "trace ({} steps to reach the state):", self.trace.len())?;
        for (r, step) in self.trace.iter().enumerate() {
            writeln!(
                f,
                "  step {}: {}",
                r + 1,
                rows_str(&step.state, self.instance.n)
            )?;
            for a in &step.actions {
                writeln!(f, "    {a}")?;
            }
        }
        write!(
            f,
            "state at violation: {}",
            rows_str(&self.state, self.instance.n)
        )
    }
}

/// Bits reserved per packed cursor slot.
const CURSOR_BITS: u32 = 3;
/// Bit offset of the cursor block in a packed key.
const CURSOR_BASE: u32 = 8 * MAX_N as u32;
/// Bit offset of the churn-script position in a packed key.
const POS_BASE: u32 = CURSOR_BASE + (MAX_N * MAX_N) as u32 * CURSOR_BITS;

/// The full joint protocol state: contact rows plus per-node cursor
/// slots (all-zero, and ignored, for stateless kernels).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Joint {
    rows: [u8; MAX_N],
    cursors: [[u8; MAX_N]; MAX_N],
}

fn pack(j: &Joint, pos: usize) -> u128 {
    let mut key = 0u128;
    for (i, &r) in j.rows.iter().enumerate() {
        key |= (r as u128) << (8 * i);
    }
    for (u, row) in j.cursors.iter().enumerate() {
        for (v, &c) in row.iter().enumerate() {
            assert!(
                c < 1 << CURSOR_BITS,
                "cursor value {c} exceeds the {CURSOR_BITS}-bit joint encoding"
            );
            key |= (c as u128) << (CURSOR_BASE as usize + (u * MAX_N + v) * CURSOR_BITS as usize);
        }
    }
    key | (pos as u128) << POS_BASE
}

fn unpack(key: u128) -> (Joint, usize) {
    let mut j = Joint {
        rows: [0; MAX_N],
        cursors: [[0; MAX_N]; MAX_N],
    };
    for (i, r) in j.rows.iter_mut().enumerate() {
        *r = (key >> (8 * i)) as u8;
    }
    for (u, row) in j.cursors.iter_mut().enumerate() {
        for (v, c) in row.iter_mut().enumerate() {
            *c = (key >> (CURSOR_BASE as usize + (u * MAX_N + v) * CURSOR_BITS as usize)) as u8
                & ((1 << CURSOR_BITS) - 1);
        }
    }
    (j, (key >> POS_BASE) as usize)
}

/// Node `u`'s protocol state inside `j`, in the kernel's representation.
fn node_state(j: &Joint, n: usize, u: usize, stateful: bool) -> NodeState {
    if stateful {
        NodeState::Cursors(j.cursors[u][..n].iter().map(|&c| c as u32).collect())
    } else {
        NodeState::Stateless
    }
}

/// Writes an outcome's post-state back into the joint cursor block.
fn store_state(j: &mut Joint, u: usize, state: &NodeState) {
    if let NodeState::Cursors(c) = state {
        for (v, &cv) in c.iter().enumerate() {
            j.cursors[u][v] = cv as u8;
        }
    }
}

/// Applies one membership event. Rows are scrubbed/bootstrapped
/// symmetrically; the node's own protocol state resets to the kernel's
/// initial state, while peers' cursor slots toward it are retained (no
/// failure detector — see [`ChurnEvent`]).
fn apply_event(j: &mut Joint, n: usize, ev: ChurnEvent, init: &[u8; MAX_N]) {
    match ev {
        ChurnEvent::Leave { node } => {
            let v = node as usize;
            j.rows[v] = 0;
            j.cursors[v] = *init;
            for u in 0..n {
                j.rows[u] &= !(1 << v);
            }
        }
        ChurnEvent::Rejoin { node, contacts } => {
            let v = node as usize;
            debug_assert_eq!(j.rows[v], 0, "rejoin of a present node");
            j.rows[v] = contacts & !(1 << v);
            j.cursors[v] = *init;
            for w in 0..n {
                if contacts >> w & 1 == 1 && w != v {
                    j.rows[w] |= 1 << v;
                }
            }
        }
    }
}

/// Bitmask of nodes present after the first `pos` script events.
fn present_mask(n: usize, script: &[ChurnEvent], pos: usize) -> u8 {
    let mut mask = ((1u16 << n) - 1) as u8;
    for ev in &script[..pos] {
        match *ev {
            ChurnEvent::Leave { node } => mask &= !(1 << node),
            ChurnEvent::Rejoin { node, .. } => mask |= 1 << node,
        }
    }
    mask
}

/// Apply one node's outcome on top of `acc`, reading round-start data
/// from `start`/`lists` (synchronous semantics: all nodes act on the
/// round-start world, deliveries union; each node owns its cursor slots).
/// Out-of-range ids are skipped here — the safety scan reports them;
/// application stays total.
fn apply_outcome(
    start: &Joint,
    acc: &mut Joint,
    n: usize,
    u: usize,
    o: &Outcome,
    lists: &[Vec<NodeId>],
) {
    for &(a, b) in &o.connects {
        let (a, b) = (a as usize, b as usize);
        if a >= n || b >= n || a == b {
            continue;
        }
        acc.rows[a] |= 1 << b;
        acc.rows[b] |= 1 << a;
    }
    for &(to, s) in &o.shares {
        let to = to as usize;
        if to >= n {
            continue;
        }
        match s {
            Share::KnownList => {
                acc.rows[to] |= (start.rows[u] | 1 << u) & !(1 << to);
            }
            Share::PullRequest => {
                acc.rows[u] |= (start.rows[to] | 1 << to) & !(1 << u);
            }
            Share::Slice { start: s0, len } => {
                let row = &lists[u];
                let lo = (s0 as usize).min(row.len());
                let hi = (s0 as usize).saturating_add(len as usize).min(row.len());
                let mut bits = 1u8 << u;
                for v in &row[lo..hi] {
                    bits |= 1 << v.index();
                }
                acc.rows[to] |= bits & !(1 << to);
            }
        }
    }
    store_state(acc, u, &o.state_after);
}

fn describe_outcome(u: usize, o: &Outcome) -> String {
    let connects: Vec<String> = o
        .connects
        .iter()
        .map(|&(a, b)| format!("{a}-{b}"))
        .collect();
    let shares: Vec<String> = o
        .shares
        .iter()
        .map(|&(to, s)| match s {
            Share::KnownList => format!("KnownList->{to}"),
            Share::PullRequest => format!("PullRequest->{to}"),
            Share::Slice { start, len } => format!("Slice[{start}+{len}]->{to}"),
        })
        .collect();
    format!(
        "node {u}: choices {:?} connects [{}] shares [{}]",
        o.choices,
        connects.join(","),
        shares.join(",")
    )
}

/// Scan one outcome against the safety properties. Returns the violation
/// and an offender description, and tracks the payload-size statistic.
fn scan_outcome(
    budget: Option<u64>,
    world: World,
    start: &[u8; MAX_N],
    n: usize,
    u: usize,
    o: &Outcome,
    stats: &mut CheckStats,
) -> Option<(Violation, String)> {
    let closed1: u8 = start[u] | 1 << u;
    let closed2: u8 = match world {
        World::Graph => (0..n)
            .filter(|&v| start[u] >> v & 1 == 1)
            .fold(closed1, |acc, v| acc | start[v] | 1 << v),
        World::Knowledge => closed1,
    };
    let fail = |v: Violation| Some((v, describe_outcome(u, o)));

    for &(a, b) in &o.connects {
        let in_world = (a as usize) < n && (b as usize) < n;
        let in_two_hop = in_world && closed2 >> a & 1 == 1 && closed2 >> b & 1 == 1;
        let anchors_one_hop = in_world && (closed1 >> a & 1 == 1 || closed1 >> b & 1 == 1);
        if !(in_two_hop && anchors_one_hop) {
            return fail(Violation::PhantomConnect {
                node: u as u32,
                a,
                b,
            });
        }
        // A connect materializes as two introductions of one id each.
        stats.max_payload_ids = stats.max_payload_ids.max(1);
        if let Some(k) = budget {
            if 1 > k {
                return fail(Violation::OverBudget {
                    node: u as u32,
                    ids: 1,
                    budget: k,
                });
            }
        }
    }
    for &(to, s) in &o.shares {
        if (to as usize) >= n || start[u] >> to & 1 == 0 {
            return fail(Violation::PhantomShare { node: u as u32, to });
        }
        let ids: u64 = match s {
            // Own full list plus the sender's id.
            Share::KnownList => (start[u].count_ones() + 1) as u64,
            // The request carries one id; the induced reply carries the
            // target's full list, which counts against the same budget.
            Share::PullRequest => ((start[to as usize].count_ones() + 1) as u64).max(1),
            // The window itself; the sender id rides in the envelope,
            // matching `ThrottledKernel`'s declared `Some(budget)`.
            Share::Slice { len, .. } => len as u64,
        };
        stats.max_payload_ids = stats.max_payload_ids.max(ids);
        if let Some(k) = budget {
            if ids > k {
                return fail(Violation::OverBudget {
                    node: u as u32,
                    ids,
                    budget: k,
                });
            }
        }
    }
    None
}

type Combo = Vec<Option<u16>>;

/// How a state was reached from its BFS parent.
#[derive(Clone, Debug)]
enum Step {
    /// A synchronous round: one scheduled outcome index (or drop) per node.
    Round(Combo),
    /// The next churn-script event fired.
    Churn(ChurnEvent),
}

type ParentMap = HashMap<u128, Option<(u128, Step)>>;

/// Rebuild the minimal path from the initial state to `end`, re-deriving
/// each predecessor's menus to render the scheduled actions.
fn build_trace<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    n: usize,
    stateful: bool,
    parent: &ParentMap,
    end: u128,
) -> Vec<TraceStep> {
    let mut path: Vec<(u128, Step)> = Vec::new();
    let mut k = end;
    while let Some(Some((prev, step))) = parent.get(&k) {
        path.push((*prev, step.clone()));
        k = *prev;
    }
    path.reverse();
    path.into_iter()
        .map(|(prev, step)| {
            let (joint, _) = unpack(prev);
            let actions = match step {
                Step::Churn(ev) => vec![match ev {
                    ChurnEvent::Leave { node } => format!("membership: leave {node}"),
                    ChurnEvent::Rejoin { node, contacts } => {
                        let cs: Vec<String> = (0..n)
                            .filter(|&w| contacts >> w & 1 == 1)
                            .map(|w| w.to_string())
                            .collect();
                        format!("membership: rejoin {node} contacts {{{}}}", cs.join(","))
                    }
                }],
                Step::Round(combo) => {
                    let lists = rows_to_lists(&joint.rows, n);
                    (0..n)
                        .map(|u| match combo.get(u).copied().flatten() {
                            None => format!("node {u}: (dropped)"),
                            Some(idx) => {
                                let st = node_state(&joint, n, u, stateful);
                                let menu = node_menu(kernel, world, &lists, u, &st);
                                describe_outcome(u, &menu[idx as usize])
                            }
                        })
                        .collect()
                }
            };
            TraceStep {
                state: joint.rows,
                actions,
            }
        })
        .collect()
}

/// Exhaustively check one kernel on one instance: BFS every reachable
/// joint state under `schedule`, verifying safety on every enumerated
/// outcome and liveness (no stuck incomplete state) on every state.
pub fn check_kernel<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    schedule: Schedule,
    inst: Instance,
    max_rounds: usize,
) -> Result<CheckStats, Box<Counterexample>> {
    check_kernel_with(kernel, world, inst, &CheckConfig::new(schedule, max_rounds))
}

/// [`check_kernel`] with the full knob set: omission/lossless schedule,
/// optional liveness checking, and a bounded churn script the adversary
/// interleaves with rounds.
pub fn check_kernel_with<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    inst: Instance,
    cfg: &CheckConfig,
) -> Result<CheckStats, Box<Counterexample>> {
    let n = inst.n;
    let budget = kernel.max_message_ids();
    let init_state = kernel.initial_state(n);
    let stateful = matches!(init_state, NodeState::Cursors(_));
    let mut init_cursors = [0u8; MAX_N];
    if let NodeState::Cursors(c) = &init_state {
        assert!(c.len() >= n, "initial cursor state shorter than n");
        for (slot, &cv) in init_cursors.iter_mut().zip(c.iter()) {
            *slot = cv as u8;
        }
    }

    let init = Joint {
        rows: inst.initial_rows(),
        cursors: [init_cursors; MAX_N],
    };
    let init_key = pack(&init, 0);

    let mut stats = CheckStats::default();
    let mut parent: ParentMap = HashMap::new();
    parent.insert(init_key, None);
    let mut queue: VecDeque<(u128, usize)> = VecDeque::new();
    queue.push_back((init_key, 0));

    let fail = |violation, offender, rows, key: u128, parent: &ParentMap| {
        Box::new(Counterexample {
            instance: inst,
            kernel: kernel.name(),
            world,
            schedule: cfg.schedule,
            script: cfg.script.clone(),
            violation,
            offender,
            state: rows,
            trace: build_trace(kernel, world, n, stateful, parent, key),
        })
    };

    while let Some((key, depth)) = queue.pop_front() {
        stats.states += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let (joint, pos) = unpack(key);
        let lists = rows_to_lists(&joint.rows, n);
        let menus: Vec<Vec<Outcome>> = (0..n)
            .map(|u| {
                let st = node_state(&joint, n, u, stateful);
                node_menu(kernel, world, &lists, u, &st)
            })
            .collect();

        for (u, menu) in menus.iter().enumerate() {
            for o in menu {
                if let Some((violation, offender)) =
                    scan_outcome(budget, world, &joint.rows, n, u, o, &mut stats)
                {
                    return Err(fail(violation, offender, joint.rows, key, &parent));
                }
            }
        }

        // Completion is judged over the nodes present at this script
        // position: each present node knows every other present node
        // (departed rows are scrubbed and, for correct kernels, can never
        // be repopulated — ids only propagate out of existing rows).
        let present = present_mask(n, &cfg.script, pos);
        let complete = (0..n)
            .filter(|&i| present >> i & 1 == 1)
            .all(|i| joint.rows[i] == present & !(1 << i));
        if complete && pos == cfg.script.len() {
            continue;
        }

        // Liveness: some single outcome must change the state. Row
        // effects are monotone unions and cursor slots are node-owned, so
        // if every single outcome is a no-op, every combination is too —
        // the state is permanently stuck.
        if cfg.check_liveness && !complete {
            let progress = menus.iter().enumerate().any(|(u, menu)| {
                menu.iter().any(|o| {
                    let mut acc = joint;
                    apply_outcome(&joint, &mut acc, n, u, o, &lists);
                    acc != joint
                })
            });
            if !progress {
                return Err(fail(
                    Violation::Stuck,
                    String::new(),
                    joint.rows,
                    key,
                    &parent,
                ));
            }
        }

        if depth >= cfg.max_rounds {
            stats.truncated = true;
            continue;
        }

        // Successors: fold node menus left to right, deduplicating the
        // accumulated state after each node (sound: row unions commute
        // and each node owns its cursor slots), and keep one witness
        // combo per accumulation for parent pointers.
        let mut frontier: HashMap<u128, Combo> = HashMap::new();
        frontier.insert(key, Vec::new());
        for (u, menu) in menus.iter().enumerate() {
            let mut next: HashMap<u128, Combo> = HashMap::new();
            for (acc_key, combo) in &frontier {
                let (acc0, _) = unpack(*acc_key);
                if cfg.schedule == Schedule::Omission {
                    let mut c = combo.clone();
                    c.push(None);
                    next.entry(*acc_key).or_insert(c);
                }
                for (idx, o) in menu.iter().enumerate() {
                    let mut acc = acc0;
                    apply_outcome(&joint, &mut acc, n, u, o, &lists);
                    let mut c = combo.clone();
                    c.push(Some(idx as u16));
                    next.entry(pack(&acc, pos)).or_insert(c);
                }
            }
            frontier = next;
        }
        let mut succs: Vec<(u128, Step)> = frontier
            .into_iter()
            .map(|(k, combo)| (k, Step::Round(combo)))
            .collect();
        // The adversary may fire the next churn event instead of a round.
        if pos < cfg.script.len() {
            let mut churned = joint;
            apply_event(&mut churned, n, cfg.script[pos], &init_cursors);
            succs.push((pack(&churned, pos + 1), Step::Churn(cfg.script[pos])));
        }
        for (succ, step) in succs {
            stats.transitions += 1;
            if succ == key {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(succ) {
                slot.insert(Some((key, step)));
                queue.push_back((succ, depth + 1));
            }
        }
    }
    Ok(stats)
}

/// Check a kernel over **every** connected instance with `n <= max_n`,
/// aggregating statistics; the first violation aborts the sweep.
pub fn check_all<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    schedule: Schedule,
    max_n: usize,
    max_rounds: usize,
) -> Result<CheckStats, Box<Counterexample>> {
    let mut total = CheckStats::default();
    for inst in all_instances(max_n) {
        total.absorb(check_kernel(kernel, world, schedule, inst, max_rounds)?);
    }
    Ok(total)
}

/// Every bounded churn script for `inst`: each node as the victim, both a
/// permanent departure and a departure followed by a re-join with every
/// nonempty bootstrap subset of the remaining nodes.
pub fn churn_scripts(inst: &Instance) -> Vec<Vec<ChurnEvent>> {
    let n = inst.n;
    let mut out = Vec::new();
    for v in 0..n as u32 {
        out.push(vec![ChurnEvent::Leave { node: v }]);
        let others: Vec<u32> = (0..n as u32).filter(|&w| w != v).collect();
        for choice in 1u16..1 << others.len() {
            let contacts = others
                .iter()
                .enumerate()
                .filter(|&(i, _)| choice >> i & 1 == 1)
                .fold(0u8, |acc, (_, &w)| acc | 1 << w);
            out.push(vec![
                ChurnEvent::Leave { node: v },
                ChurnEvent::Rejoin { node: v, contacts },
            ]);
        }
    }
    out
}

/// Sweep a kernel over every connected instance with `n <= max_n` × every
/// bounded churn script from [`churn_scripts`], proving no-phantom-contact
/// safety on every reachable (state, script position) pair under every
/// interleaving of rounds and membership events. Liveness is out of scope
/// here (a leave can disconnect the instance); see [`CheckConfig`].
pub fn check_churn_family<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    schedule: Schedule,
    max_n: usize,
    max_rounds: usize,
) -> Result<CheckStats, Box<Counterexample>> {
    let mut total = CheckStats::default();
    for inst in all_instances(max_n) {
        for script in churn_scripts(&inst) {
            let cfg = CheckConfig {
                schedule,
                max_rounds,
                check_liveness: false,
                script,
            };
            total.absorb(check_kernel_with(kernel, world, inst, &cfg)?);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::PushKernel;

    #[test]
    fn pack_unpack_roundtrip() {
        let j = Joint {
            rows: [0b10110, 0b00001, 0, 0b11111, 0b01010],
            cursors: [
                [0, 1, 2, 3, 4],
                [4, 3, 2, 1, 0],
                [0; 5],
                [7, 0, 7, 0, 7],
                [1; 5],
            ],
        };
        for pos in [0usize, 1, 3] {
            let (back, back_pos) = unpack(pack(&j, pos));
            assert_eq!(back, j);
            assert_eq!(back_pos, pos);
        }
    }

    #[test]
    fn push_on_path3_reaches_triangle() {
        // Path 0-1-2 (mask: edges 0-1 and 1-2).
        let inst = crate::instance::connected_instances(3)
            .into_iter()
            .find(|i| i.edges().len() == 2)
            .unwrap();
        let stats = check_kernel(&PushKernel, World::Graph, Schedule::Lossless, inst, 32).unwrap();
        // States: path and triangle (the only strict superset).
        assert_eq!(stats.states, 2);
        assert!(!stats.truncated);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn complete_instance_is_one_state() {
        // Triangle: complete from the start, nothing to explore.
        let inst = crate::instance::connected_instances(3)
            .into_iter()
            .find(|i| i.edges().len() == 3)
            .unwrap();
        let stats = check_kernel(&PushKernel, World::Graph, Schedule::Omission, inst, 32).unwrap();
        assert_eq!(stats.states, 1);
        assert_eq!(stats.transitions, 0);
    }

    #[test]
    fn churn_scripts_cover_every_victim_and_bootstrap_subset() {
        let inst = crate::instance::connected_instances(3)
            .into_iter()
            .find(|i| i.edges().len() == 2)
            .unwrap();
        let scripts = churn_scripts(&inst);
        // 3 victims × (1 leave-only + 3 nonempty 2-element subsets).
        assert_eq!(scripts.len(), 12);
        assert!(scripts.iter().all(|s| !s.is_empty() && s.len() <= 2));
    }

    #[test]
    fn leave_scrubs_rows_and_rejoin_bootstraps_symmetrically() {
        let mut j = Joint {
            rows: [0b110, 0b101, 0b011, 0, 0],
            cursors: [[2; MAX_N]; MAX_N],
        };
        let init = [0u8; MAX_N];
        apply_event(&mut j, 3, ChurnEvent::Leave { node: 1 }, &init);
        assert_eq!(j.rows[1], 0);
        assert_eq!(j.rows[0], 0b100);
        assert_eq!(j.rows[2], 0b001);
        // The departed node's own state resets; peers keep theirs.
        assert_eq!(j.cursors[1], init);
        assert_eq!(j.cursors[0], [2; MAX_N]);
        apply_event(
            &mut j,
            3,
            ChurnEvent::Rejoin {
                node: 1,
                contacts: 0b100,
            },
            &init,
        );
        assert_eq!(j.rows[1], 0b100);
        assert_eq!(j.rows[2], 0b011);
        assert_eq!(j.rows[0], 0b100, "non-bootstrap rows untouched");
    }

    #[test]
    fn present_mask_tracks_script_position() {
        let script = vec![
            ChurnEvent::Leave { node: 2 },
            ChurnEvent::Rejoin {
                node: 2,
                contacts: 0b1,
            },
        ];
        assert_eq!(present_mask(3, &script, 0), 0b111);
        assert_eq!(present_mask(3, &script, 1), 0b011);
        assert_eq!(present_mask(3, &script, 2), 0b111);
    }
}
