//! The bounded exhaustive checker: BFS over the joint state space of one
//! instance, scanning every reachable state for safety violations and
//! stuck states, with minimal counterexample traces.
//!
//! A joint state packs the five per-node contact rows into one `u64` key.
//! For each reachable state the checker derives every node's outcome
//! *menu* (see [`crate::enumerate`]), scans each outcome against the
//! safety properties, checks that some outcome still makes progress
//! (liveness: no reachable incomplete state is stuck), and folds the
//! menus node-by-node — deduplicating intermediate accumulations, which
//! is sound because effects are monotone bit-unions over the round-start
//! rows — to produce the successor set. BFS parent pointers make every
//! reported counterexample minimal in rounds.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::enumerate::{node_menu, rows_to_lists, Outcome, World};
use crate::instance::{all_instances, Instance, MAX_N};
use gossip_core::{ProtocolKernel, Share};
use gossip_graph::NodeId;

/// Which round schedules the adversary may play.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Every node's chosen outcome is delivered every round.
    Lossless,
    /// The adversary may additionally drop any node's entire round output
    /// (crash-like omission); dropping everyone forever is the unfair
    /// schedule the liveness check deliberately ignores.
    Omission,
}

impl Schedule {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Lossless => "lossless",
            Schedule::Omission => "omission",
        }
    }
}

/// Aggregate exploration statistics for one or more checked instances.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Distinct joint states visited.
    pub states: u64,
    /// Successor transitions enumerated (after intermediate dedup).
    pub transitions: u64,
    /// Deepest BFS level reached (rounds from the initial state).
    pub max_depth: usize,
    /// True if any instance hit the round bound with states unexplored.
    pub truncated: bool,
    /// Largest per-message payload (in node ids) any enumerated message
    /// carried — the empirical side of the `O(log n)`-bits claim.
    pub max_payload_ids: u64,
}

impl CheckStats {
    /// Fold another instance's stats into this aggregate.
    pub fn absorb(&mut self, other: CheckStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.truncated |= other.truncated;
        self.max_payload_ids = self.max_payload_ids.max(other.max_payload_ids);
    }
}

/// What went wrong, for a counterexample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A node proposed a connection involving an id outside its closed
    /// two-hop view (or outside the world entirely) — a phantom contact.
    PhantomConnect {
        /// The proposing node.
        node: u32,
        /// Proposed endpoints (normalized `min, max`).
        a: u32,
        /// Second endpoint.
        b: u32,
    },
    /// A node addressed a payload to someone outside its contact row.
    PhantomShare {
        /// The sending node.
        node: u32,
        /// The phantom destination.
        to: u32,
    },
    /// A message carried more node ids than the kernel's declared
    /// [`ProtocolKernel::max_message_ids`] budget.
    OverBudget {
        /// The sending node.
        node: u32,
        /// Ids the message carried.
        ids: u64,
        /// The declared budget it exceeded.
        budget: u64,
    },
    /// An incomplete state where no outcome of any node makes progress:
    /// by monotonicity no schedule can ever finish from here.
    Stuck,
}

/// One round of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Contact rows at the start of the round.
    pub state: [u8; MAX_N],
    /// One line per node: the outcome the adversary scheduled (witness
    /// choices and effects), or a drop.
    pub actions: Vec<String>,
}

/// A minimal failing run: the instance, the adversary's schedule round by
/// round, and the violation at the end.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The starting topology.
    pub instance: Instance,
    /// The kernel's registry name.
    pub kernel: &'static str,
    /// The world the kernel was checked in.
    pub world: World,
    /// The schedule family the adversary played.
    pub schedule: Schedule,
    /// The property that failed.
    pub violation: Violation,
    /// Description of the offending node outcome (empty for [`Violation::Stuck`]).
    pub offender: String,
    /// Contact rows of the violating state.
    pub state: [u8; MAX_N],
    /// Minimal (in rounds) path from the initial state to [`Self::state`].
    pub trace: Vec<TraceStep>,
}

fn rows_str(rows: &[u8; MAX_N], n: usize) -> String {
    (0..n)
        .map(|i| {
            let row: Vec<String> = (0..n)
                .filter(|&j| rows[i] >> j & 1 == 1)
                .map(|j| j.to_string())
                .collect();
            format!("{i}:{{{}}}", row.join(","))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model-check violation: kernel={} world={:?} schedule={}",
            self.kernel,
            self.world,
            self.schedule.name()
        )?;
        writeln!(f, "instance: {}", self.instance.describe())?;
        writeln!(f, "violation: {:?}", self.violation)?;
        if !self.offender.is_empty() {
            writeln!(f, "offender: {}", self.offender)?;
        }
        writeln!(f, "trace ({} rounds to reach the state):", self.trace.len())?;
        for (r, step) in self.trace.iter().enumerate() {
            writeln!(
                f,
                "  round {}: {}",
                r + 1,
                rows_str(&step.state, self.instance.n)
            )?;
            for a in &step.actions {
                writeln!(f, "    {a}")?;
            }
        }
        write!(
            f,
            "state at violation: {}",
            rows_str(&self.state, self.instance.n)
        )
    }
}

fn pack(rows: &[u8; MAX_N]) -> u64 {
    rows.iter()
        .enumerate()
        .fold(0u64, |k, (i, &r)| k | (r as u64) << (8 * i))
}

fn unpack(key: u64) -> [u8; MAX_N] {
    let mut rows = [0u8; MAX_N];
    for (i, r) in rows.iter_mut().enumerate() {
        *r = (key >> (8 * i)) as u8;
    }
    rows
}

/// Apply one node's outcome on top of `acc`, reading round-start data
/// from `start`/`lists` (synchronous semantics: all nodes act on the
/// round-start world, deliveries union). Out-of-range ids are skipped
/// here — the safety scan reports them; application stays total.
fn apply_outcome(
    start: &[u8; MAX_N],
    acc: &mut [u8; MAX_N],
    n: usize,
    u: usize,
    o: &Outcome,
    lists: &[Vec<NodeId>],
) {
    for &(a, b) in &o.connects {
        let (a, b) = (a as usize, b as usize);
        if a >= n || b >= n || a == b {
            continue;
        }
        acc[a] |= 1 << b;
        acc[b] |= 1 << a;
    }
    for &(to, s) in &o.shares {
        let to = to as usize;
        if to >= n {
            continue;
        }
        match s {
            Share::KnownList => {
                acc[to] |= (start[u] | 1 << u) & !(1 << to);
            }
            Share::PullRequest => {
                acc[u] |= (start[to] | 1 << to) & !(1 << u);
            }
            Share::Slice { start: s0, len } => {
                let row = &lists[u];
                let lo = (s0 as usize).min(row.len());
                let hi = (s0 as usize).saturating_add(len as usize).min(row.len());
                let mut bits = 1u8 << u;
                for v in &row[lo..hi] {
                    bits |= 1 << v.index();
                }
                acc[to] |= bits & !(1 << to);
            }
        }
    }
}

fn describe_outcome(u: usize, o: &Outcome) -> String {
    let connects: Vec<String> = o
        .connects
        .iter()
        .map(|&(a, b)| format!("{a}-{b}"))
        .collect();
    let shares: Vec<String> = o
        .shares
        .iter()
        .map(|&(to, s)| match s {
            Share::KnownList => format!("KnownList->{to}"),
            Share::PullRequest => format!("PullRequest->{to}"),
            Share::Slice { start, len } => format!("Slice[{start}+{len}]->{to}"),
        })
        .collect();
    format!(
        "node {u}: choices {:?} connects [{}] shares [{}]",
        o.choices,
        connects.join(","),
        shares.join(",")
    )
}

/// Scan one outcome against the safety properties. Returns the violation
/// and an offender description, and tracks the payload-size statistic.
fn scan_outcome(
    budget: Option<u64>,
    world: World,
    start: &[u8; MAX_N],
    n: usize,
    u: usize,
    o: &Outcome,
    stats: &mut CheckStats,
) -> Option<(Violation, String)> {
    let closed1: u8 = start[u] | 1 << u;
    let closed2: u8 = match world {
        World::Graph => (0..n)
            .filter(|&v| start[u] >> v & 1 == 1)
            .fold(closed1, |acc, v| acc | start[v] | 1 << v),
        World::Knowledge => closed1,
    };
    let fail = |v: Violation| Some((v, describe_outcome(u, o)));

    for &(a, b) in &o.connects {
        let in_world = (a as usize) < n && (b as usize) < n;
        let in_two_hop = in_world && closed2 >> a & 1 == 1 && closed2 >> b & 1 == 1;
        let anchors_one_hop = in_world && (closed1 >> a & 1 == 1 || closed1 >> b & 1 == 1);
        if !(in_two_hop && anchors_one_hop) {
            return fail(Violation::PhantomConnect {
                node: u as u32,
                a,
                b,
            });
        }
        // A connect materializes as two introductions of one id each.
        stats.max_payload_ids = stats.max_payload_ids.max(1);
        if let Some(k) = budget {
            if 1 > k {
                return fail(Violation::OverBudget {
                    node: u as u32,
                    ids: 1,
                    budget: k,
                });
            }
        }
    }
    for &(to, s) in &o.shares {
        if (to as usize) >= n || start[u] >> to & 1 == 0 {
            return fail(Violation::PhantomShare { node: u as u32, to });
        }
        let ids: u64 = match s {
            // Own full list plus the sender's id.
            Share::KnownList => (start[u].count_ones() + 1) as u64,
            // The request carries one id; the induced reply carries the
            // target's full list, which counts against the same budget.
            Share::PullRequest => ((start[to as usize].count_ones() + 1) as u64).max(1),
            // The window itself; the sender id rides in the envelope,
            // matching `ThrottledKernel`'s declared `Some(budget)`.
            Share::Slice { len, .. } => len as u64,
        };
        stats.max_payload_ids = stats.max_payload_ids.max(ids);
        if let Some(k) = budget {
            if ids > k {
                return fail(Violation::OverBudget {
                    node: u as u32,
                    ids,
                    budget: k,
                });
            }
        }
    }
    None
}

type Combo = Vec<Option<u16>>;
type ParentMap = HashMap<u64, Option<(u64, Combo)>>;

/// Rebuild the minimal path from the initial state to `end`, re-deriving
/// each predecessor's menus to render the scheduled actions.
fn build_trace<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    n: usize,
    parent: &ParentMap,
    end: u64,
) -> Vec<TraceStep> {
    let mut path: Vec<(u64, Combo)> = Vec::new();
    let mut k = end;
    while let Some(Some((prev, combo))) = parent.get(&k) {
        path.push((*prev, combo.clone()));
        k = *prev;
    }
    path.reverse();
    path.into_iter()
        .map(|(prev, combo)| {
            let rows = unpack(prev);
            let lists = rows_to_lists(&rows, n);
            let actions = (0..n)
                .map(|u| match combo.get(u).copied().flatten() {
                    None => format!("node {u}: (dropped)"),
                    Some(idx) => {
                        let menu = node_menu(kernel, world, &lists, u);
                        describe_outcome(u, &menu[idx as usize])
                    }
                })
                .collect();
            TraceStep {
                state: rows,
                actions,
            }
        })
        .collect()
}

/// Exhaustively check one kernel on one instance: BFS every reachable
/// joint state under `schedule`, verifying safety on every enumerated
/// outcome and liveness (no stuck incomplete state) on every state.
pub fn check_kernel<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    schedule: Schedule,
    inst: Instance,
    max_rounds: usize,
) -> Result<CheckStats, Box<Counterexample>> {
    let n = inst.n;
    let budget = kernel.max_message_ids();
    let full: Vec<u8> = (0..n)
        .map(|i| (((1u16 << n) - 1) as u8) & !(1 << i))
        .collect();
    let init = inst.initial_rows();
    let init_key = pack(&init);

    let mut stats = CheckStats::default();
    let mut parent: ParentMap = HashMap::new();
    parent.insert(init_key, None);
    let mut queue: VecDeque<(u64, usize)> = VecDeque::new();
    queue.push_back((init_key, 0));

    let fail = |violation, offender, rows, key: u64, parent: &ParentMap| {
        Box::new(Counterexample {
            instance: inst,
            kernel: kernel.name(),
            world,
            schedule,
            violation,
            offender,
            state: rows,
            trace: build_trace(kernel, world, n, parent, key),
        })
    };

    while let Some((key, depth)) = queue.pop_front() {
        stats.states += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let rows = unpack(key);
        let lists = rows_to_lists(&rows, n);
        let menus: Vec<Vec<Outcome>> = (0..n)
            .map(|u| node_menu(kernel, world, &lists, u))
            .collect();

        for (u, menu) in menus.iter().enumerate() {
            for o in menu {
                if let Some((violation, offender)) =
                    scan_outcome(budget, world, &rows, n, u, o, &mut stats)
                {
                    return Err(fail(violation, offender, rows, key, &parent));
                }
            }
        }

        let complete = (0..n).all(|i| rows[i] == full[i]);
        if complete {
            continue;
        }

        // Liveness: some single outcome must change the state. Effects
        // are monotone unions, so if every single outcome is a no-op,
        // every combination is too — the state is permanently stuck.
        let progress = menus.iter().enumerate().any(|(u, menu)| {
            menu.iter().any(|o| {
                let mut acc = rows;
                apply_outcome(&rows, &mut acc, n, u, o, &lists);
                acc != rows
            })
        });
        if !progress {
            return Err(fail(Violation::Stuck, String::new(), rows, key, &parent));
        }

        if depth >= max_rounds {
            stats.truncated = true;
            continue;
        }

        // Successors: fold node menus left to right, deduplicating the
        // accumulated state after each node (sound: unions commute), and
        // keep one witness combo per accumulation for parent pointers.
        let mut frontier: HashMap<u64, Combo> = HashMap::new();
        frontier.insert(key, Vec::new());
        for (u, menu) in menus.iter().enumerate() {
            let mut next: HashMap<u64, Combo> = HashMap::new();
            for (acc_key, combo) in &frontier {
                let acc0 = unpack(*acc_key);
                if schedule == Schedule::Omission {
                    let mut c = combo.clone();
                    c.push(None);
                    next.entry(*acc_key).or_insert(c);
                }
                for (idx, o) in menu.iter().enumerate() {
                    let mut acc = acc0;
                    apply_outcome(&rows, &mut acc, n, u, o, &lists);
                    let mut c = combo.clone();
                    c.push(Some(idx as u16));
                    next.entry(pack(&acc)).or_insert(c);
                }
            }
            frontier = next;
        }
        for (succ, combo) in frontier {
            stats.transitions += 1;
            if succ == key {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(succ) {
                slot.insert(Some((key, combo)));
                queue.push_back((succ, depth + 1));
            }
        }
    }
    Ok(stats)
}

/// Check a kernel over **every** connected instance with `n <= max_n`,
/// aggregating statistics; the first violation aborts the sweep.
pub fn check_all<K: ProtocolKernel + ?Sized>(
    kernel: &K,
    world: World,
    schedule: Schedule,
    max_n: usize,
    max_rounds: usize,
) -> Result<CheckStats, Box<Counterexample>> {
    let mut total = CheckStats::default();
    for inst in all_instances(max_n) {
        total.absorb(check_kernel(kernel, world, schedule, inst, max_rounds)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::PushKernel;

    #[test]
    fn pack_unpack_roundtrip() {
        let rows = [0b10110, 0b00001, 0, 0b11111, 0b01010];
        assert_eq!(unpack(pack(&rows)), rows);
    }

    #[test]
    fn push_on_path3_reaches_triangle() {
        // Path 0-1-2 (mask: edges 0-1 and 1-2).
        let inst = crate::instance::connected_instances(3)
            .into_iter()
            .find(|i| i.edges().len() == 2)
            .unwrap();
        let stats = check_kernel(&PushKernel, World::Graph, Schedule::Lossless, inst, 32).unwrap();
        // States: path and triangle (the only strict superset).
        assert_eq!(stats.states, 2);
        assert!(!stats.truncated);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn complete_instance_is_one_state() {
        // Triangle: complete from the start, nothing to explore.
        let inst = crate::instance::connected_instances(3)
            .into_iter()
            .find(|i| i.edges().len() == 3)
            .unwrap();
        let stats = check_kernel(&PushKernel, World::Graph, Schedule::Omission, inst, 32).unwrap();
        assert_eq!(stats.states, 1);
        assert_eq!(stats.transitions, 0);
    }
}
