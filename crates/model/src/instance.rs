//! Instance enumeration: every connected undirected graph on `n <= 5`
//! nodes, one representative per isomorphism class.
//!
//! The checker's claims are quantified over *all* small starting
//! topologies, so the instance set must be exhaustive. Graphs are encoded
//! as edge bitmasks over the `C(n, 2)` node pairs in lexicographic order;
//! isomorphism classes are deduplicated by taking, for each mask, the
//! minimum mask over all `n!` node relabelings and keeping only masks that
//! equal their own canonical form. The class counts (1, 1, 2, 6, 21 for
//! `n = 1..=5`) match the known census of connected graphs.

/// The largest instance size the checker supports (state rows are packed
/// into one byte per node).
pub const MAX_N: usize = 5;

/// One starting topology: `n` nodes and an edge bitmask over the
/// lexicographic pair order (0-1, 0-2, ..., (n-2)-(n-1)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instance {
    /// Node count, `1..=MAX_N`.
    pub n: usize,
    /// Edge set: bit [`pair_index`]`(n, i, j)` set means edge `{i, j}`.
    pub edge_mask: u16,
}

/// The bit position of pair `{i, j}` (`i < j`) in an `n`-node edge mask.
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    // Pairs with first endpoint a occupy a contiguous block of n-1-a bits.
    (0..i).map(|a| n - 1 - a).sum::<usize>() + (j - i - 1)
}

impl Instance {
    /// The edge list in lexicographic order.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.edge_mask >> pair_index(self.n, i, j) & 1 == 1 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Initial contact rows: `rows[i]` has bit `j` set iff `{i, j}` is an
    /// edge. Both the graph world and the knowledge world start from this
    /// (the paper's knowledge is symmetric at the start).
    pub fn initial_rows(&self) -> [u8; MAX_N] {
        let mut rows = [0u8; MAX_N];
        for (i, j) in self.edges() {
            rows[i] |= 1 << j;
            rows[j] |= 1 << i;
        }
        rows
    }

    /// Human-readable rendering, e.g. `n=3 edges=0-1,1-2`.
    pub fn describe(&self) -> String {
        let edges: Vec<String> = self
            .edges()
            .iter()
            .map(|&(i, j)| format!("{i}-{j}"))
            .collect();
        format!("n={} edges={}", self.n, edges.join(","))
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn rec(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            rec(k + 1, items, out);
            items.swap(k, i);
        }
    }
    rec(0, &mut items, &mut out);
    out
}

fn is_connected(n: usize, mask: u16) -> bool {
    if n == 1 {
        return true;
    }
    let mut adj = [0u8; MAX_N];
    for i in 0..n {
        for j in (i + 1)..n {
            if mask >> pair_index(n, i, j) & 1 == 1 {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    let mut seen: u8 = 1;
    let mut frontier: u8 = 1;
    while frontier != 0 {
        let mut next: u8 = 0;
        for (i, &row) in adj.iter().enumerate().take(n) {
            if frontier >> i & 1 == 1 {
                next |= row & !seen;
            }
        }
        seen |= next;
        frontier = next;
    }
    seen == (1u8 << n) - 1
}

fn relabel(n: usize, mask: u16, perm: &[usize]) -> u16 {
    let mut out = 0u16;
    for i in 0..n {
        for j in (i + 1)..n {
            if mask >> pair_index(n, i, j) & 1 == 1 {
                let (a, b) = (perm[i].min(perm[j]), perm[i].max(perm[j]));
                out |= 1 << pair_index(n, a, b);
            }
        }
    }
    out
}

/// Every connected graph on exactly `n` nodes, one per isomorphism class
/// (the member whose edge mask is minimal over all relabelings).
pub fn connected_instances(n: usize) -> Vec<Instance> {
    assert!((1..=MAX_N).contains(&n), "instances support 1..={MAX_N}");
    let bits = n * (n - 1) / 2;
    let perms = permutations(n);
    let mut out = Vec::new();
    for mask in 0..(1u32 << bits) as u16 {
        if !is_connected(n, mask) {
            continue;
        }
        let canon = perms.iter().map(|p| relabel(n, mask, p)).min().unwrap();
        if canon == mask {
            out.push(Instance { n, edge_mask: mask });
        }
    }
    out
}

/// All connected instances with `1 <= n <= max_n` — the checker's full
/// quantification domain (31 instances at `max_n = 5`).
pub fn all_instances(max_n: usize) -> Vec<Instance> {
    (1..=max_n).flat_map(connected_instances).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_known_counts() {
        // Connected graphs up to isomorphism: OEIS A001349.
        assert_eq!(
            (1..=5)
                .map(|n| connected_instances(n).len())
                .collect::<Vec<_>>(),
            vec![1, 1, 2, 6, 21]
        );
        assert_eq!(all_instances(5).len(), 31);
    }

    #[test]
    fn pair_index_is_lexicographic_and_dense() {
        let mut seen = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                seen.push(pair_index(4, i, j));
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn initial_rows_are_symmetric() {
        for inst in all_instances(5) {
            let rows = inst.initial_rows();
            for i in 0..inst.n {
                for j in 0..inst.n {
                    assert_eq!(rows[i] >> j & 1, rows[j] >> i & 1);
                }
                assert_eq!(rows[i] >> i & 1, 0, "self-contact in {}", inst.describe());
            }
        }
    }

    #[test]
    fn instances_are_connected_representatives() {
        for inst in all_instances(5) {
            assert!(is_connected(inst.n, inst.edge_mask));
        }
    }
}
