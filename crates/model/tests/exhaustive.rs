//! The headline guarantees: every stateless kernel is safe and live on
//! **every** connected instance with `n <= 5`, under both schedule
//! families, with the full state space explored (never truncated) — and
//! the checker demonstrably catches planted safety and liveness bugs.

use gossip_core::{HybridKernel, NameDropperKernel, PullKernel, PushKernel, ThrottledKernel};
use gossip_model::{
    all_instances, check_all, check_churn_family, check_kernel_with, CheckConfig, PhantomPush,
    Schedule, StalePeerPush, StallingPush, Violation, World,
};

const MAX_N: usize = 5;
const MAX_ROUNDS: usize = 64;

const SCHEDULES: [Schedule; 2] = [Schedule::Lossless, Schedule::Omission];

#[test]
fn push_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&PushKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated, "state space must be fully explored");
        // Push introduces one id per message — the paper's O(log n) bits.
        assert!(stats.max_payload_ids <= 1, "push payload grew: {stats:?}");
        assert!(
            stats.states > 31,
            "expected nontrivial exploration: {stats:?}"
        );
    }
}

#[test]
fn pull_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&PullKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        assert!(stats.max_payload_ids <= 1, "pull payload grew: {stats:?}");
    }
}

#[test]
fn hybrid_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&HybridKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        assert!(stats.max_payload_ids <= 1, "hybrid payload grew: {stats:?}");
    }
}

#[test]
fn name_dropper_is_safe_and_live_in_the_knowledge_world() {
    for schedule in SCHEDULES {
        let stats = check_all(
            &NameDropperKernel,
            World::Knowledge,
            schedule,
            MAX_N,
            MAX_ROUNDS,
        )
        .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        // Whole-list sends really do grow with n (here: full row + self
        // at n = 5) — the contrast that motivates the throttled variant.
        assert!(
            stats.max_payload_ids >= (MAX_N - 1) as u64,
            "name-dropper payload stat too small: {stats:?}"
        );
    }
}

#[test]
fn throttled_name_dropper_is_safe_and_live_with_cursor_state() {
    // The stateful kernel the cursor-slot encoding exists for: its
    // per-destination cursors are part of the joint state, so these
    // sweeps are exhaustive over (rows × cursors), not an approximation.
    // Both schedules and budgets at n <= 3; the cursor product space
    // grows steeply with n, so the n = 4 sweep below runs lossless only.
    for budget in [1usize, 2] {
        for schedule in SCHEDULES {
            let stats = check_all(
                &ThrottledKernel { budget },
                World::Knowledge,
                schedule,
                3,
                MAX_ROUNDS,
            )
            .unwrap_or_else(|ce| panic!("{ce}"));
            assert!(!stats.truncated, "state space must be fully explored");
            // The whole point of throttling: every message fits the budget.
            assert!(
                stats.max_payload_ids <= budget as u64,
                "throttled payload exceeded budget {budget}: {stats:?}"
            );
        }
    }
}

#[test]
fn throttled_name_dropper_cursor_space_is_exhausted_at_n4() {
    // The big one: ~1M joint (rows × cursors) states, fully explored.
    // Lossless only — omission roughly squares the transition count and
    // blows the CI budget; the omission guarantee is pinned at n <= 3
    // above. (Debug-build cost: about a minute; the model-check CI job's
    // 10-minute budget was re-measured with this test in place.)
    let stats = check_all(
        &ThrottledKernel { budget: 1 },
        World::Knowledge,
        Schedule::Lossless,
        4,
        MAX_ROUNDS,
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    assert!(!stats.truncated, "state space must be fully explored");
    assert!(stats.max_payload_ids <= 1, "budget violated: {stats:?}");
    assert!(
        stats.states > 100_000,
        "cursor slots should enlarge the joint space: {stats:?}"
    );
}

#[test]
fn kernels_never_name_phantoms_under_bounded_churn() {
    // The churn schedule family: every connected instance at n <= 4,
    // every victim, every bootstrap subset, every interleaving of rounds
    // with the leave/rejoin events — no kernel may ever propose or
    // address a departed (or otherwise unknown) node.
    for schedule in SCHEDULES {
        for (name, stats) in [
            (
                "push",
                check_churn_family(&PushKernel, World::Graph, schedule, 4, MAX_ROUNDS),
            ),
            (
                "pull",
                check_churn_family(&PullKernel, World::Graph, schedule, 4, MAX_ROUNDS),
            ),
            (
                "hybrid",
                check_churn_family(&HybridKernel, World::Graph, schedule, 4, MAX_ROUNDS),
            ),
            (
                "name-dropper",
                check_churn_family(
                    &NameDropperKernel,
                    World::Knowledge,
                    schedule,
                    4,
                    MAX_ROUNDS,
                ),
            ),
            // The stateful kernel sweeps n <= 3: churn multiplies the
            // cursor product space by every script × interleaving, and
            // n = 4 blows the CI budget. Stale-cursor handling (rows
            // shrinking below an advanced cursor, retained cursors toward
            // a departed peer) is fully exercised at n = 3.
            (
                "throttled-nd",
                check_churn_family(
                    &ThrottledKernel { budget: 1 },
                    World::Knowledge,
                    schedule,
                    3,
                    MAX_ROUNDS,
                ),
            ),
        ] {
            let stats = stats.unwrap_or_else(|ce| panic!("{name}: {ce}"));
            assert!(!stats.truncated, "{name}: churn sweep truncated: {stats:?}");
        }
    }
}

#[test]
fn stale_peer_memory_is_caught_only_by_the_churn_layer() {
    // Statically the stale-memory kernel is safe: rows only grow, so the
    // remembered contact stays real (safety-only — it is deliberately
    // unproductive, so liveness is off).
    for inst in all_instances(4) {
        let cfg = CheckConfig {
            check_liveness: false,
            ..CheckConfig::new(Schedule::Lossless, MAX_ROUNDS)
        };
        check_kernel_with(&StalePeerPush, World::Graph, inst, &cfg)
            .unwrap_or_else(|ce| panic!("static world must be safe: {ce}"));
    }
    // Under churn the remembered peer departs and the kernel names a
    // phantom — exactly the staleness class the churn layer exists for.
    let ce = check_churn_family(
        &StalePeerPush,
        World::Graph,
        Schedule::Lossless,
        4,
        MAX_ROUNDS,
    )
    .expect_err("the stale memory must be caught under churn");
    assert!(
        matches!(ce.violation, Violation::PhantomConnect { .. }),
        "wrong violation: {:?}",
        ce.violation
    );
    let report = ce.to_string();
    assert!(
        report.contains("push-stale-peer") && report.contains("churn script"),
        "report must name the kernel and the script: {report}"
    );
    assert!(
        report.contains("membership: leave"),
        "trace must show the leave event: {report}"
    );
}

#[test]
fn phantom_connect_is_caught_with_a_minimal_trace() {
    let ce = check_all(
        &PhantomPush,
        World::Graph,
        Schedule::Lossless,
        MAX_N,
        MAX_ROUNDS,
    )
    .expect_err("the planted phantom bug must be caught");
    assert!(
        matches!(ce.violation, Violation::PhantomConnect { .. }),
        "wrong violation: {:?}",
        ce.violation
    );
    // The bug fires on the very first enumerated round of the smallest
    // instance with an edge — a minimal, zero-round trace.
    assert_eq!(ce.instance.n, 2, "not the smallest failing instance: {ce}");
    assert!(ce.trace.is_empty(), "trace not minimal: {ce}");
    let report = ce.to_string();
    assert!(report.contains("push-phantom") && report.contains("PhantomConnect"));
}

#[test]
fn stalling_kernel_is_caught_as_stuck() {
    let ce = check_all(
        &StallingPush,
        World::Graph,
        Schedule::Omission,
        MAX_N,
        MAX_ROUNDS,
    )
    .expect_err("the planted stall must be caught");
    assert!(
        matches!(ce.violation, Violation::Stuck),
        "wrong violation: {:?}",
        ce.violation
    );
    // n = 1 and n = 2 connected instances start complete; the 3-node
    // path is the first instance that needs progress and never gets any.
    assert_eq!(ce.instance.n, 3);
    assert!(
        ce.trace.is_empty(),
        "stuck at the initial state, zero rounds: {ce}"
    );
}
