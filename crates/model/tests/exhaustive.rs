//! The headline guarantees: every stateless kernel is safe and live on
//! **every** connected instance with `n <= 5`, under both schedule
//! families, with the full state space explored (never truncated) — and
//! the checker demonstrably catches planted safety and liveness bugs.

use gossip_core::{HybridKernel, NameDropperKernel, PullKernel, PushKernel};
use gossip_model::{check_all, PhantomPush, Schedule, StallingPush, Violation, World};

const MAX_N: usize = 5;
const MAX_ROUNDS: usize = 64;

const SCHEDULES: [Schedule; 2] = [Schedule::Lossless, Schedule::Omission];

#[test]
fn push_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&PushKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated, "state space must be fully explored");
        // Push introduces one id per message — the paper's O(log n) bits.
        assert!(stats.max_payload_ids <= 1, "push payload grew: {stats:?}");
        assert!(
            stats.states > 31,
            "expected nontrivial exploration: {stats:?}"
        );
    }
}

#[test]
fn pull_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&PullKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        assert!(stats.max_payload_ids <= 1, "pull payload grew: {stats:?}");
    }
}

#[test]
fn hybrid_is_safe_and_live_on_all_small_instances() {
    for schedule in SCHEDULES {
        let stats = check_all(&HybridKernel, World::Graph, schedule, MAX_N, MAX_ROUNDS)
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        assert!(stats.max_payload_ids <= 1, "hybrid payload grew: {stats:?}");
    }
}

#[test]
fn name_dropper_is_safe_and_live_in_the_knowledge_world() {
    for schedule in SCHEDULES {
        let stats = check_all(
            &NameDropperKernel,
            World::Knowledge,
            schedule,
            MAX_N,
            MAX_ROUNDS,
        )
        .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!stats.truncated);
        // Whole-list sends really do grow with n (here: full row + self
        // at n = 5) — the contrast that motivates the throttled variant.
        assert!(
            stats.max_payload_ids >= (MAX_N - 1) as u64,
            "name-dropper payload stat too small: {stats:?}"
        );
    }
}

#[test]
fn phantom_connect_is_caught_with_a_minimal_trace() {
    let ce = check_all(
        &PhantomPush,
        World::Graph,
        Schedule::Lossless,
        MAX_N,
        MAX_ROUNDS,
    )
    .expect_err("the planted phantom bug must be caught");
    assert!(
        matches!(ce.violation, Violation::PhantomConnect { .. }),
        "wrong violation: {:?}",
        ce.violation
    );
    // The bug fires on the very first enumerated round of the smallest
    // instance with an edge — a minimal, zero-round trace.
    assert_eq!(ce.instance.n, 2, "not the smallest failing instance: {ce}");
    assert!(ce.trace.is_empty(), "trace not minimal: {ce}");
    let report = ce.to_string();
    assert!(report.contains("push-phantom") && report.contains("PhantomConnect"));
}

#[test]
fn stalling_kernel_is_caught_as_stuck() {
    let ce = check_all(
        &StallingPush,
        World::Graph,
        Schedule::Omission,
        MAX_N,
        MAX_ROUNDS,
    )
    .expect_err("the planted stall must be caught");
    assert!(
        matches!(ce.violation, Violation::Stuck),
        "wrong violation: {:?}",
        ce.violation
    );
    // n = 1 and n = 2 connected instances start complete; the 3-node
    // path is the first instance that needs progress and never gets any.
    assert_eq!(ce.instance.n, 3);
    assert!(
        ce.trace.is_empty(),
        "stuck at the initial state, zero rounds: {ce}"
    );
}
