//! Seed replay: a model-check failure surfaced through the proptest
//! runner must report a `PROPTEST_SEED` that reproduces the identical
//! minimal counterexample.
//!
//! This is the only test in this binary on purpose: it sets the
//! `PROPTEST_SEED` environment variable, and tests within one binary run
//! concurrently.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gossip_model::{all_instances, check_kernel, PhantomPush, Schedule, World};
use proptest::test_runner::{run_cases, Config, TestCaseError};

fn phantom_push_case(idx: usize) -> Result<(), TestCaseError> {
    let inst = all_instances(5)[idx];
    match check_kernel(&PhantomPush, World::Graph, Schedule::Lossless, inst, 64) {
        Ok(_) => Ok(()),
        Err(ce) => Err(TestCaseError::fail(format!(
            "kernel violated safety on instance #{idx} ({}): {:?}",
            inst.describe(),
            ce.violation
        ))),
    }
}

fn run_property() -> String {
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_cases(
            "phantom_push_is_safe",
            &Config::with_cases(64),
            (0usize..31,),
            |(idx,)| phantom_push_case(idx),
        )
    }))
    .expect_err("phantom push must fail the property");
    err.downcast_ref::<String>()
        .cloned()
        .expect("proptest panics with a String report")
}

#[test]
fn failing_check_reports_a_replayable_seed_and_shrinks_to_minimum() {
    let report = run_property();
    assert!(
        report.contains("rerun with PROPTEST_SEED="),
        "report must carry a replay seed: {report}"
    );
    // Instance #0 is the 1-node graph (no contacts, so even the phantom
    // kernel stays silent); #1, the single edge, is the smallest failing
    // input, and greedy halving toward the range start must reach it.
    assert!(
        report.contains("minimal counterexample") && report.contains("(1,)"),
        "shrinking did not reach the minimal instance: {report}"
    );

    let seed: u64 = report
        .split("PROPTEST_SEED=")
        .nth(1)
        .unwrap()
        .split(')')
        .next()
        .unwrap()
        .parse()
        .expect("seed parses as u64");
    std::env::set_var("PROPTEST_SEED", seed.to_string());
    let replayed = run_property();
    std::env::remove_var("PROPTEST_SEED");
    assert_eq!(
        report, replayed,
        "replaying with the reported seed must reproduce the identical report"
    );
}
