//! The paper-results report: pooling [`Measurement`]s across seeds and
//! rendering the repository's `RESULTS.md`.
//!
//! `run_all --report` runs the whole experiment battery once per seed,
//! pools every `(experiment, metric, algorithm, family, n)` configuration
//! across seeds by **concatenating the raw per-trial samples** (the `± CI`
//! columns are deterministic percentile bootstraps of the pooled sample;
//! sample-less legacy rows fall back to exact moment merging), and renders
//! a Markdown document:
//!
//! 1. a **paper claim vs. measured** table — one row per theorem/figure,
//! 2. **mean rounds ± 95% CI per algorithm per n** for the headline
//!    O(n log² n) sweeps,
//! 3. **log²-n fit quality** per family from [`gossip_analysis::fit`],
//! 4. the full pooled measurement dump (the canonical numbers),
//! 5. an **appendix of wall-clock observations** (machine-dependent,
//!    excluded from the reproducibility contract).
//!
//! Everything that reaches the page above the appendix flows from seeded
//! simulations through fixed-precision formatting, so the same command
//! line reproduces those sections byte-for-byte; wall-clock time only
//! ever enters the appendix.

use crate::harness::{Args, Measurement};
use gossip_analysis::{
    bootstrap_mean_ci, fit_model, fmt_f64, loglog_exponent, ols, GrowthModel, OnlineStats, Summary,
    Table,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Resamples per pooled bootstrap interval. Cheap (a few hundred configs ×
/// tens of observations) and plenty for a 95% percentile interval.
const BOOTSTRAP_RESAMPLES: usize = 1000;

/// FNV-1a of the configuration key ([`gossip_analysis::Fnv1a`]) — the
/// deterministic per-config bootstrap seed, so the same battery always
/// resamples identically.
fn config_seed(key: &(String, String, String, String, u64)) -> u64 {
    gossip_analysis::Fnv1a::new()
        .write(key.0.as_bytes())
        .write(key.1.as_bytes())
        .write(key.2.as_bytes())
        .write(key.3.as_bytes())
        .write_u64(key.4)
        .finish()
}

/// Pools per-seed measurements of the same configuration into one summary.
///
/// Rows carrying their raw per-trial [`samples`](Measurement::samples) —
/// all of them, since PR 5 — are pooled by **concatenating the raw
/// samples** across seeds: mean/stddev/min/max are recomputed from the
/// combined sample, and `ci95` is the half-width of a deterministic
/// percentile-bootstrap interval for the mean
/// ([`gossip_analysis::bootstrap_mean_ci`], seeded from the configuration
/// key). Round-count distributions are skewed; the bootstrap stays honest
/// where the old normal-theory moment merge undercovered on small trial
/// counts.
///
/// Rows without raw samples (none are produced in-tree; kept for old JSON
/// artifacts) fall back to the exact [`OnlineStats`] moment merge. Output
/// order is first-appearance order, which the fixed battery order makes
/// stable.
pub fn pool(all: &[Measurement]) -> Vec<Measurement> {
    let mut index: BTreeMap<(String, String, String, String, u64), usize> = BTreeMap::new();
    let mut pooled: Vec<Measurement> = Vec::new();
    let mut keys: Vec<(String, String, String, String, u64)> = Vec::new();
    // Per pooled config: every contributor so far carried raw samples. One
    // sample-less contributor demotes the whole config to the moment merge
    // (mixing a raw sub-sample with merged moments would double-count).
    let mut raw_ok: Vec<bool> = Vec::new();
    let mut accs: Vec<OnlineStats> = Vec::new();
    let to_acc = |m: &Measurement| {
        let m2 = m.stddev * m.stddev * (m.trials.saturating_sub(1)) as f64;
        OnlineStats::from_moments(m.trials, m.mean, m2, m.min, m.max)
    };
    for m in all {
        let key = (
            m.experiment.clone(),
            m.metric.clone(),
            m.algorithm.clone(),
            m.family.clone(),
            m.n,
        );
        match index.get(&key) {
            None => {
                index.insert(key.clone(), pooled.len());
                raw_ok.push(!m.samples.is_empty());
                accs.push(to_acc(m));
                pooled.push(m.clone());
                keys.push(key);
            }
            Some(&i) => {
                raw_ok[i] &= !m.samples.is_empty();
                accs[i].merge(&to_acc(m));
                let p = &mut pooled[i];
                p.samples.extend_from_slice(&m.samples);
                p.wallclock |= m.wallclock;
            }
        }
    }
    for ((p, key), (&ok, acc)) in pooled.iter_mut().zip(&keys).zip(raw_ok.iter().zip(&accs)) {
        if ok {
            // The raw pooled sample is the ground truth: exact moments plus
            // a deterministic percentile-bootstrap interval for the mean.
            let s = Summary::of(&p.samples);
            p.trials = s.count as u64;
            p.mean = s.mean;
            p.stddev = s.stddev;
            p.min = s.min;
            p.max = s.max;
            p.ci95 = bootstrap_mean_ci(&p.samples, BOOTSTRAP_RESAMPLES, 0.95, config_seed(key))
                .half_width();
        } else {
            p.samples.clear();
            p.trials = acc.count();
            p.mean = acc.mean();
            p.stddev = acc.stddev();
            p.ci95 = acc.ci95();
            p.min = acc.min();
            p.max = acc.max();
        }
    }
    pooled
}

/// Selects measurements of one experiment/metric (and optionally one
/// algorithm), in pooled order. The experiment id must match exactly —
/// prefix matching would conflate `E1` with `E10`–`E14`.
fn sel<'a>(
    ms: &'a [Measurement],
    experiment: &str,
    metric: &str,
    algorithm: Option<&str>,
) -> Vec<&'a Measurement> {
    ms.iter()
        .filter(|m| {
            m.experiment == experiment
                && m.metric == metric
                && algorithm.is_none_or(|a| m.algorithm == a)
        })
        .collect()
}

/// Distinct families among a selection, in first-appearance order.
fn families<'a>(ms: &[&'a Measurement]) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for m in ms {
        if !out.contains(&m.family.as_str()) {
            out.push(&m.family);
        }
    }
    out
}

/// `mean ± ci95` cell.
fn pm(m: &Measurement) -> String {
    format!("{} ± {}", fmt_f64(m.mean), fmt_f64(m.ci95))
}

/// Log-log slope of `mean` vs `n` for one family's sweep, with `r²`.
fn family_slope(points: &[&Measurement]) -> Option<gossip_analysis::OlsFit> {
    if points.len() < 2 {
        return None;
    }
    let ns: Vec<f64> = points.iter().map(|m| m.n as f64).collect();
    let ts: Vec<f64> = points.iter().map(|m| m.mean).collect();
    Some(loglog_exponent(&ns, &ts))
}

/// Renders the full `RESULTS.md` document from pooled measurements.
pub fn render_results(pooled: &[Measurement], args: &Args) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# RESULTS — *Discovery through Gossip*, reproduced\n");
    let _ = writeln!(
        out,
        "Measured reproduction of the paper's headline claims (Haeupler, \
         Pandurangan, Peleg, Rajaraman, Sun — SPAA 2012). Every number below \
         is a simulation round count or message size pooled across {} seeds \
         (CIs bootstrapped from the raw per-trial samples); wall-clock time \
         never enters these tables — machine-dependent observations are \
         quarantined in the final appendix — so everything above the \
         appendix regenerates **byte-for-byte** with:\n",
        args.report_seeds
    );
    let _ = writeln!(
        out,
        "```sh\ncargo run -p gossip-bench --release --bin run_all -- --report \
         --seed {} --report-seeds {}{}{} --out {}\n```\n",
        args.seed,
        args.report_seeds,
        if args.quick { " --quick" } else { "" },
        // Every flag that alters the measurements must round-trip through
        // this command, or "byte-for-byte" is a lie for non-default runs.
        if args.trials > 0 {
            format!(" --trials {}", args.trials)
        } else {
            String::new()
        },
        args.out_dir.display(),
    );
    let _ = writeln!(
        out,
        "(The file is written to `{}/RESULTS.md`; the checked-in copy at the \
         repository root is that output verbatim{}. Per-experiment detail \
         tables live under `results/` after any non-report run; \
         microbenchmark statistics and baselines are documented in \
         `crates/bench/README.md`.)\n",
        args.out_dir.display(),
        if args.quick {
            " of a --quick run (CI-sized sweeps)"
        } else {
            ""
        },
    );

    claims_section(&mut out, pooled);
    scaling_section(&mut out, pooled);
    fit_section(&mut out, pooled);
    dump_section(&mut out, pooled);
    wallclock_section(&mut out, pooled);
    out
}

/// Section 1: one row per paper claim, with the measured counterpart.
fn claims_section(out: &mut String, ms: &[Measurement]) {
    let _ = writeln!(out, "## Paper claims vs. measured\n");
    let mut t = Table::new(["paper claim", "experiment", "measured", "verdict"]);

    // Theorems 8 / 12: O(n log² n) upper bound, push and pull.
    for (thm, label, exp, alg) in [
        ("Thm 8 (push)", "E1", "E1-push-scaling", "push"),
        ("Thm 12 (pull)", "E3", "E3-pull-scaling", "pull"),
    ] {
        let rows = sel(ms, exp, "rounds", Some(alg));
        let mut slopes = Vec::new();
        let mut ratios = Vec::new();
        for fam in families(&rows) {
            let pts: Vec<&Measurement> = rows.iter().filter(|m| m.family == fam).copied().collect();
            if let Some(f) = family_slope(&pts) {
                slopes.push(f.slope);
            }
            if let Some(last) = pts.last() {
                let nf = last.n as f64;
                ratios.push(last.mean / (nf * nf.ln() * nf.ln()));
            }
        }
        let (smin, smax) = (
            slopes.iter().copied().fold(f64::INFINITY, f64::min),
            slopes.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        let rmax = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        t.push_row([
            format!("{thm}: any connected graph completes in O(n log² n) rounds w.h.p."),
            label.to_string(),
            format!(
                "log-log growth exponent {:.2}–{:.2} across {} families; rounds/(n ln² n) ≤ {} at largest n",
                smin,
                smax,
                families(&rows).len(),
                fmt_f64(rmax)
            ),
            verdict(smax < 2.0 && rmax.is_finite()),
        ]);
    }

    // Theorems 9 / 13: Ω(n log k) dense lower bound.
    {
        let rows = sel(ms, "E2-E4-dense-lowerbound", "rounds", None);
        let mut cells = Vec::new();
        let mut ok = true;
        for alg in ["push", "pull"] {
            let pts: Vec<&Measurement> = rows
                .iter()
                .filter(|m| m.algorithm == alg && m.n >= 2)
                .copied()
                .collect();
            // Host n is encoded in the family label `complete-minus-k-n<N>`.
            let host_n: f64 = pts
                .first()
                .and_then(|m| m.family.rsplit_once("-n").and_then(|(_, v)| v.parse().ok()))
                .unwrap_or(f64::NAN);
            if pts.len() >= 2 {
                let lnks: Vec<f64> = pts.iter().map(|m| (m.n as f64).ln()).collect();
                let means: Vec<f64> = pts.iter().map(|m| m.mean).collect();
                let f = ols(&lnks, &means);
                cells.push(format!(
                    "{alg}: {:.1} rounds per ln k (slope/n = {:.2}, r² = {:.3})",
                    f.slope,
                    f.slope / host_n,
                    f.r2
                ));
                ok &= f.slope > 0.0 && f.r2 > 0.8;
            }
        }
        t.push_row([
            "Thms 9/13: starting k edges short of complete, both processes need Ω(n log k) rounds"
                .to_string(),
            "E2/E4".to_string(),
            cells.join("; "),
            verdict(ok),
        ]);
    }

    // Theorems 14 / 15: directed bounds.
    {
        let rows = sel(ms, "E5-E6-directed", "rounds", Some("directed-pull"));
        let mut cells = Vec::new();
        let mut strong_slope = f64::NAN;
        let mut weak_slope = f64::NAN;
        for fam in families(&rows) {
            let pts: Vec<&Measurement> = rows.iter().filter(|m| m.family == fam).copied().collect();
            if let Some(f) = family_slope(&pts) {
                cells.push(format!("{fam}: slope {:.2}", f.slope));
                if fam == "thm15-strong" {
                    strong_slope = f.slope;
                }
                if fam == "thm14-weak" {
                    weak_slope = f.slope;
                }
            }
        }
        t.push_row([
            "Thms 14/15: directed two-hop walk is O(n² log n); adversarial families need Ω(n²) \
             (strong) and Ω(n² log n) (weak)"
                .to_string(),
            "E5/E6".to_string(),
            cells.join("; "),
            verdict(strong_slope > 1.7 && weak_slope > 1.7),
        ]);
    }

    // Figure 1(c): non-monotonicity, exactly.
    {
        let exact = sel(ms, "E7-nonmonotonicity", "exact_rounds", Some("push"));
        let g = exact.iter().find(|m| m.family == "K_1,4");
        let h = exact.iter().find(|m| m.family == "K_1,3");
        let pairs = sel(
            ms,
            "E7-nonmonotonicity",
            "counterexample_pairs",
            Some("push"),
        );
        if let (Some(g), Some(h)) = (g, h) {
            let npairs = pairs.first().map_or(0.0, |m| m.mean);
            t.push_row([
                "Fig 1(c): adding an edge can slow discovery — E[T_push] is non-monotone in the \
                 edge set"
                    .to_string(),
                "E7".to_string(),
                format!(
                    "exact E[T_push(K_1,4)] = {:.4} > E[T_push(K_1,3)] = {:.4}; {} same-vertex-set \
                     4-node counterexample pairs found exhaustively",
                    g.mean, h.mean, npairs as u64
                ),
                verdict(g.mean > h.mean && npairs >= 1.0),
            ]);
        }
    }

    // §1 corollary: subgroup discovery scales with k, not host size. The
    // restricted process never contacts non-members, so the host can only
    // enter through the shape of the induced subgraph (a BFS ball of a
    // larger host is a different workload, not a host-size effect). The
    // testable part of the claim is therefore the growth in k: log-log
    // slope near 1 (O(k log² k)), far below quadratic. The cross-host
    // spread is reported as context, not gated on.
    {
        let rows = sel(ms, "E9-subgroup-discovery", "rounds", Some("push-subset"));
        let mut cells = Vec::new();
        let mut slopes = Vec::new();
        for fam in families(&rows) {
            let pts: Vec<&Measurement> = rows.iter().filter(|m| m.family == fam).copied().collect();
            if let Some(f) = family_slope(&pts) {
                cells.push(format!("{fam}: slope {:.2} in k", f.slope));
                slopes.push(f.slope);
            }
        }
        let mut worst_dev: f64 = 0.0;
        let ks: Vec<u64> = {
            let mut v: Vec<u64> = rows.iter().map(|m| m.n).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for &k in &ks {
            let per_host: Vec<f64> = rows.iter().filter(|m| m.n == k).map(|m| m.mean).collect();
            if per_host.len() >= 2 {
                let lo = per_host.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = per_host.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                worst_dev = worst_dev.max((hi - lo) / lo);
            }
        }
        let smax = slopes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        t.push_row([
            "§1: a connected k-member subgroup completes in O(k log² k) rounds — growth is in k, \
             not host size"
                .to_string(),
            "E9".to_string(),
            format!(
                "{}; spread between hosts at fixed k reaches {:.0}% (different induced \
                 subgraphs — the restricted process never contacts non-members)",
                cells.join("; "),
                worst_dev * 100.0
            ),
            verdict(slopes.iter().all(|&s| s > 0.8) && smax < 1.8),
        ]);
    }

    // §1: O(log n)-bit messages vs Name Dropper.
    {
        let bits = sel(ms, "E10-baseline-comparison", "max_message_bits", None);
        let largest_n = bits.iter().map(|m| m.n).max().unwrap_or(0);
        let at = |alg: &str| {
            bits.iter()
                .find(|m| m.n == largest_n && m.algorithm.starts_with(alg))
                .map_or(f64::NAN, |m| m.mean)
        };
        let (push_bits, nd_bits) = (at("push"), at("Name Dropper"));
        t.push_row([
            "§1: gossip messages stay O(log n) bits while Name Dropper ships Θ(n log n)-bit \
             messages"
                .to_string(),
            "E10".to_string(),
            format!(
                "at n = {largest_n}: push max message {} bits vs Name Dropper {} bits ({}×)",
                fmt_f64(push_bits),
                fmt_f64(nd_bits),
                fmt_f64(nd_bits / push_bits)
            ),
            verdict(nd_bits > 10.0 * push_bits),
        ]);
    }

    // Model extension: synchronous vs asynchronous timing.
    {
        let sync = sel(ms, "E14-asynchrony", "rounds", None);
        let asynch = sel(ms, "E14-asynchrony", "time", None);
        let mut ratios = Vec::new();
        for s in &sync {
            let base_alg = s.algorithm.trim_end_matches("-sync");
            if let Some(a) = asynch.iter().find(|a| {
                a.algorithm.trim_end_matches("-async") == base_alg
                    && a.family == s.family
                    && a.n == s.n
            }) {
                ratios.push(a.mean / s.mean);
            }
        }
        if !ratios.is_empty() {
            let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            t.push_row([
                "model extension: Poisson-clock (asynchronous) timing matches the synchronous \
                 analysis round-for-round"
                    .to_string(),
                "E14".to_string(),
                format!(
                    "async/sync mean-time ratio in [{lo:.3}, {hi:.3}] across all configurations"
                ),
                verdict(lo > 0.8 && hi < 1.2),
            ]);
        }
    }

    // Scaling extension: the arena backend restores the paper's large-n
    // regime (ROADMAP north star, not a paper theorem).
    {
        let mem = sel(ms, "E15-engine-scaling", "mem_ratio", None);
        let rounds = sel(ms, "E15-engine-scaling", "rounds", Some("pull"));
        let biggest = rounds.iter().map(|m| m.n).max().unwrap_or(0);
        if let Some(r) = mem.first() {
            t.push_row([
                "scaling extension: arena-backed storage reaches the large-n regime the \
                 asymptotic claims are about — million-node runs in O(m + n) memory"
                    .to_string(),
                "E15".to_string(),
                format!(
                    "two-hop walk completes a fixed-horizon run at n = {biggest}; at n = {} the \
                     arena stores the same run in {}× less memory than the AdjSet layout",
                    r.n,
                    fmt_f64(r.mean)
                ),
                verdict(biggest >= 1 << 20 && r.mean >= 4.0),
            ]);
        }
    }

    // Scaling extension 2: the sharded round engine (PR 5). The verdict
    // gates only on deterministic facts — the 2^22 run completing and the
    // measured trajectory invariance across shard counts; the wall-clock
    // apply-phase speedups live in this file's machine-dependent appendix
    // (`apply_speedup_vs_arena` / `apply_speedup_vs_s1` rows) and in
    // results/E16-shard-scaling.md.
    {
        let invariant = sel(
            ms,
            "E16-shard-scaling",
            "trajectory_invariant",
            Some("pull"),
        );
        let biggest = invariant.iter().map(|m| m.n).max().unwrap_or(0);
        let shard_counts = families(&invariant).len();
        let all_invariant = !invariant.is_empty() && invariant.iter().all(|m| m.min >= 1.0);
        let cross = sel(
            ms,
            "E16-shard-scaling",
            "cross_shard_edge_fraction",
            Some("pull"),
        );
        let worst_cross = cross
            .iter()
            .filter(|m| m.family == "shards-8")
            .map(|m| m.mean)
            .fold(0.0f64, f64::max);
        if !invariant.is_empty() {
            t.push_row([
                "scaling extension: the sharded round engine parallelizes the apply phase with \
                 bit-identical trajectories for every shard count"
                    .to_string(),
                "E16".to_string(),
                format!(
                    "two-hop walk completes fixed-horizon runs at n = {biggest} on the sharded \
                     engine; per-round stats + row checksums identical across {shard_counts} \
                     shard configurations at every size, with {:.0}% of edges crossing shard \
                     boundaries at S = 8 (apply-phase speedups: wall-clock appendix)",
                    worst_cross * 100.0
                ),
                verdict(biggest >= 1 << 22 && all_invariant),
            ]);
        }
    }

    // Serving extension (PR 6): a live engine behind epoch snapshots. The
    // verdict gates only on deterministic facts — a served trajectory
    // bit-identical to batch under concurrent query load, and the O(S)
    // copy-on-write sharing fact; the QPS / round-latency / clone-vs-deep-
    // copy timings live in the wall-clock appendix and results/E17-*.md.
    {
        let matches = sel(ms, "E17-serve-load", "served_matches_batch", Some("pull"));
        let biggest = matches.iter().map(|m| m.n).max().unwrap_or(0);
        let all_match = !matches.is_empty() && matches.iter().all(|m| m.min >= 1.0);
        let shares = sel(
            ms,
            "E17-serve-load",
            "snapshot_shares_all_segments",
            Some("sharded-arena"),
        );
        let all_share = !shares.is_empty() && shares.iter().all(|m| m.min >= 1.0);
        if !matches.is_empty() {
            t.push_row([
                "serving extension: a resident engine serves concurrent snapshot queries \
                 without perturbing the discovery trajectory, at O(shards) per snapshot"
                    .to_string(),
                "E17".to_string(),
                format!(
                    "served runs up to n = {biggest} stay bit-identical to batch (per-round \
                     edge counts + final row checksum) while reader threads sustain a query \
                     mix; every published snapshot starts fully segment-shared with the live \
                     graph — CoW, not deep copy (QPS × round latency: wall-clock appendix)",
                ),
                verdict(biggest >= 1 << 20 && all_match && all_share),
            ]);
        }
    }

    // Dynamics extension (PR 8): membership churn through the lifecycle
    // seam. The verdict gates only on deterministic facts — churned
    // trajectories bit-identical across engine variants, and burst cohorts
    // re-discovered after rejoining at the full-window sizes; per-round
    // membership cost lives in the wall-clock appendix and results/E18-*.md.
    {
        let invariant = sel(ms, "E18-churn", "sharded_matches_sequential", Some("pull"));
        let biggest = invariant.iter().map(|m| m.n).max().unwrap_or(0);
        let all_invariant = !invariant.is_empty() && invariant.iter().all(|m| m.min >= 1.0);
        let served = sel(ms, "E18-churn", "served_matches_batch", Some("pull"));
        let all_served = !served.is_empty() && served.iter().all(|m| m.min >= 1.0);
        let served_biggest = served.iter().map(|m| m.n).max().unwrap_or(0);
        // Re-discovery at the sizes that run the full recovery window (the
        // 2^22 acceptance row trades horizon for its RSS ceiling, which can
        // censor its second burst).
        let rediscovery = sel(ms, "E18-churn", "rediscovery_rounds", None);
        let worst = rediscovery
            .iter()
            .filter(|m| m.n <= 1 << 20)
            .map(|m| m.max)
            .fold(0.0, f64::max);
        if !invariant.is_empty() {
            t.push_row([
                "dynamics extension: discovery absorbs membership churn — departed \
                 cohorts are re-discovered within a few rounds of rejoining, and the \
                 churned trajectory is an engine invariant"
                    .to_string(),
                "E18".to_string(),
                format!(
                    "churn bursts (2 × n/64 nodes, 1 round away) at n up to {biggest}: \
                     full-window runs re-discover a departed cohort within {worst:.0} \
                     rounds of its rejoin; sharded S ∈ {{1, 8}} stay bit-identical at \
                     every size and served runs equal batch through n = {served_biggest} \
                     under the same plan (membership cost: wall-clock appendix)"
                ),
                verdict(biggest >= 1 << 22 && all_invariant && all_served),
            ]);
        }
    }

    // Distribution extension (PR 9): the sharded round over a serialized
    // seam — one OS process per shard, framed mailboxes over UDS. The
    // verdict gates only on deterministic facts — trajectory invariance
    // vs the in-process engine in both modes and the 10^7 acceptance row
    // completing; rounds/sec and per-shard RSS live in the wall-clock
    // appendix and results/E19-*.md.
    {
        let uds = sel(
            ms,
            "E19-transport",
            "trajectory_invariant_vs_inproc",
            Some("uds"),
        );
        let lossy = sel(
            ms,
            "E19-transport",
            "trajectory_invariant_vs_inproc",
            Some("lossy"),
        );
        let biggest = uds.iter().map(|m| m.n).max().unwrap_or(0);
        let all_invariant = !uds.is_empty() && uds.iter().chain(lossy.iter()).all(|m| m.min >= 1.0);
        let retrans = sel(ms, "E19-transport", "retransmitted_frames", Some("lossy"));
        let repaired = !retrans.is_empty() && retrans.iter().all(|m| m.min >= 1.0);
        if !uds.is_empty() {
            t.push_row([
                "distribution extension: the sharded round survives serialization — shard \
                 processes exchanging framed mailboxes over UDS replay the in-process \
                 engine bit-for-bit, through injected loss"
                    .to_string(),
                "E19".to_string(),
                format!(
                    "per-round stats, final edge count, and row checksums identical to the \
                     in-process sharded engine up to n = {biggest} across every (S, mode) \
                     cell; lossy cells repair seeded drop/duplicate/reorder via nak-driven \
                     retransmit (wire volume: reproducible rows; rounds/sec and per-shard \
                     RSS: wall-clock appendix)"
                ),
                verdict(biggest >= 10_000_000 && all_invariant && repaired),
            ]);
        }
    }

    // Distribution extension (PR 10): the datagram shard cluster — one OS
    // process per shard with its own UDP socket, static peer table across
    // loopback hosts, no supervisor on the data path. The verdict gates
    // only on deterministic facts — trajectory invariance vs the
    // in-process engine at every loss rate and the million-node acceptance
    // row completing; repair traffic, RSS, and bootstrap-overlap savings
    // live in the wall-clock appendix and results/E20-*.md.
    {
        let udp = sel(
            ms,
            "E20-cluster",
            "trajectory_invariant_vs_inproc",
            Some("udp"),
        );
        let loss5 = sel(
            ms,
            "E20-cluster",
            "trajectory_invariant_vs_inproc",
            Some("udp-loss-5%"),
        );
        let loss20 = sel(
            ms,
            "E20-cluster",
            "trajectory_invariant_vs_inproc",
            Some("udp-loss-20%"),
        );
        let biggest = udp.iter().map(|m| m.n).max().unwrap_or(0);
        let all_invariant = !udp.is_empty()
            && udp
                .iter()
                .chain(loss5.iter())
                .chain(loss20.iter())
                .all(|m| m.min >= 1.0);
        let drops = sel(ms, "E20-cluster", "injected_drops", None);
        let faulted = !drops.is_empty() && drops.iter().all(|m| m.min >= 1.0);
        if !udp.is_empty() {
            t.push_row([
                "distribution extension: the sharded round survives the network — shard \
                 processes exchanging datagrams peer-to-peer over UDP across loopback \
                 hosts replay the in-process engine bit-for-bit, through 20% seeded loss"
                    .to_string(),
                "E20".to_string(),
                format!(
                    "per-round stats, final edge count, and row checksums identical to the \
                     in-process sharded engine up to n = {biggest} on a 2-host × 2-process \
                     static peer table at 0%/5%/20% drop injection; ack/timeout/backoff \
                     windows repair every fault before its round barrier (datagram volume: \
                     reproducible rows; retransmits, RSS, and streamed-bootstrap overlap \
                     savings: wall-clock appendix)"
                ),
                verdict(biggest >= 1 << 20 && all_invariant && faulted),
            ]);
        }
    }

    out.push_str(&t.to_markdown());
    let _ = writeln!(out);
}

fn verdict(ok: bool) -> String {
    if ok { "reproduced" } else { "NOT reproduced" }.to_string()
}

/// Section 2: the headline sweep, mean ± CI per algorithm per n.
fn scaling_section(out: &mut String, ms: &[Measurement]) {
    let _ = writeln!(
        out,
        "## Convergence rounds: mean ± 95% CI per algorithm per n\n"
    );
    let _ = writeln!(
        out,
        "Undirected scaling sweeps (E1 push, E3 pull); each cell pools every \
         seed's trials on that topology family at that size.\n"
    );
    let push = sel(ms, "E1-push-scaling", "rounds", Some("push"));
    let pull = sel(ms, "E3-pull-scaling", "rounds", Some("pull"));
    let mut t = Table::new(["family", "n", "push rounds", "pull rounds", "n ln² n"]);
    for fam in families(&push) {
        for p in push.iter().filter(|m| m.family == fam) {
            let q = pull
                .iter()
                .find(|m| m.family == fam && m.n == p.n)
                .map_or("-".to_string(), |m| pm(m));
            let nf = p.n as f64;
            t.push_row([
                fam.to_string(),
                p.n.to_string(),
                pm(p),
                q,
                fmt_f64(nf * nf.ln() * nf.ln()),
            ]);
        }
    }
    out.push_str(&t.to_markdown());
    let _ = writeln!(out);
}

/// Section 3: how well `c · n ln² n` explains each family.
fn fit_section(out: &mut String, ms: &[Measurement]) {
    let _ = writeln!(out, "## log²-n fit quality\n");
    let _ = writeln!(
        out,
        "Least-squares fit of `T = c · n ln² n` per family (log-space \
         residuals, `gossip_analysis::fit`), plus the model-free log-log \
         growth exponent. The theorem is an upper bound: slopes below ~1.35 \
         and bounded constants are consistent with O(n log² n); a slope \
         near 2 would refute it.\n"
    );
    let mut t = Table::new([
        "algorithm",
        "family",
        "c (n ln² n)",
        "log-MSE",
        "log-log slope",
        "r²",
    ]);
    for (exp, alg) in [("E1-push-scaling", "push"), ("E3-pull-scaling", "pull")] {
        let rows = sel(ms, exp, "rounds", Some(alg));
        for fam in families(&rows) {
            let pts: Vec<&Measurement> = rows.iter().filter(|m| m.family == fam).copied().collect();
            if pts.len() < 2 {
                continue;
            }
            let ns: Vec<f64> = pts.iter().map(|m| m.n as f64).collect();
            let ts: Vec<f64> = pts.iter().map(|m| m.mean).collect();
            let fit = fit_model(&ns, &ts, GrowthModel::NLog2N);
            let slope = loglog_exponent(&ns, &ts);
            t.push_row([
                alg.to_string(),
                fam.to_string(),
                fmt_f64(fit.c),
                format!("{:.4}", fit.log_mse),
                format!("{:.3}", slope.slope),
                format!("{:.4}", slope.r2),
            ]);
        }
    }
    out.push_str(&t.to_markdown());
    let _ = writeln!(out);
}

/// Section 4: the full pooled dump — the canonical numbers.
fn dump_section(out: &mut String, all: &[Measurement]) {
    let ms: Vec<&Measurement> = all.iter().filter(|m| !m.wallclock).collect();
    let _ = writeln!(out, "## All pooled measurements\n");
    let _ = writeln!(
        out,
        "Every configuration the battery measures, pooled across seeds. \
         `n` is the experiment's swept size (host n, subgroup k, or missing \
         edges k — see the experiment module docs).\n"
    );
    let mut t = Table::new([
        "experiment",
        "metric",
        "algorithm",
        "family",
        "n",
        "trials",
        "mean",
        "stddev",
        "ci95",
        "min",
        "max",
    ]);
    for m in ms {
        t.push_row([
            m.experiment.clone(),
            m.metric.clone(),
            m.algorithm.clone(),
            m.family.clone(),
            m.n.to_string(),
            m.trials.to_string(),
            fmt_f64(m.mean),
            fmt_f64(m.stddev),
            fmt_f64(m.ci95),
            fmt_f64(m.min),
            fmt_f64(m.max),
        ]);
    }
    out.push_str(&t.to_markdown());
}

/// Appendix: machine-dependent wall-clock observations (phase timings,
/// speedup ratios). Rendered last and excluded from the byte-for-byte
/// reproducibility contract — rerunning on different hardware changes only
/// this section.
fn wallclock_section(out: &mut String, all: &[Measurement]) {
    let ms: Vec<&Measurement> = all.iter().filter(|m| m.wallclock).collect();
    if ms.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n## Appendix: wall-clock observations\n");
    let _ = writeln!(
        out,
        "Machine-dependent timings measured on the machine that generated \
         this file (pooled across the same seeds as everything else). These \
         rows are **outside the byte-for-byte contract** — they are the one \
         section that legitimately differs between hosts. Per-experiment \
         tables under `results/` carry the full per-phase breakdowns.\n"
    );
    let mut t = Table::new([
        "experiment",
        "metric",
        "algorithm",
        "family",
        "n",
        "mean",
        "min",
        "max",
    ]);
    for m in ms {
        t.push_row([
            m.experiment.clone(),
            m.metric.clone(),
            m.algorithm.clone(),
            m.family.clone(),
            m.n.to_string(),
            fmt_f64(m.mean),
            fmt_f64(m.min),
            fmt_f64(m.max),
        ]);
    }
    out.push_str(&t.to_markdown());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(alg: &str, fam: &str, n: u64, trials: u64, mean: f64, stddev: f64) -> Measurement {
        Measurement {
            experiment: "E1-push-scaling".into(),
            metric: "rounds".into(),
            algorithm: alg.into(),
            family: fam.into(),
            n,
            trials,
            mean,
            stddev,
            ci95: 0.5,
            min: mean - 1.0,
            max: mean + 1.0,
            samples: Vec::new(),
            wallclock: false,
        }
    }

    /// A row built the way `Report::measure` builds them: raw samples
    /// attached, summary derived from them.
    fn m_raw(alg: &str, fam: &str, n: u64, samples: &[f64]) -> Measurement {
        let mut r = crate::harness::Report::new("E1-push-scaling");
        r.measure("rounds", alg, fam, n, samples);
        r.measurements.pop().unwrap()
    }

    #[test]
    fn pool_concatenates_raw_samples_and_bootstraps_ci() {
        // Two seeds of the same config: pooled sample [10, 20, 30, 40].
        let a = m_raw("push", "star", 64, &[10.0, 20.0]);
        let b = m_raw("push", "star", 64, &[30.0, 40.0]);
        let pooled = pool(&[a, b]);
        assert_eq!(pooled.len(), 1);
        let p = &pooled[0];
        assert_eq!(p.trials, 4);
        assert_eq!(p.samples, vec![10.0, 20.0, 30.0, 40.0]);
        assert!((p.mean - 25.0).abs() < 1e-9);
        assert!((p.stddev - (500.0_f64 / 3.0).sqrt()).abs() < 1e-9);
        // Min/max are the true sample envelope, not a normal approximation.
        assert_eq!((p.min, p.max), (10.0, 40.0));
        // The CI comes from the percentile bootstrap: strictly inside the
        // sample range, deterministic across calls.
        assert!(p.ci95 > 0.0 && p.ci95 < 15.0);
        let again = pool(&[
            m_raw("push", "star", 64, &[10.0, 20.0]),
            m_raw("push", "star", 64, &[30.0, 40.0]),
        ]);
        assert_eq!(p.ci95, again[0].ci95, "bootstrap must be deterministic");
    }

    #[test]
    fn pool_merges_sampleless_rows_via_moments() {
        // Legacy rows without raw samples (e.g. old JSON artifacts) still
        // pool exactly through the Welford moment merge.
        let a = m("push", "star", 64, 2, 15.0, (50.0_f64).sqrt());
        let b = m("push", "star", 64, 2, 35.0, (50.0_f64).sqrt());
        let pooled = pool(&[a, b]);
        assert_eq!(pooled.len(), 1);
        let p = &pooled[0];
        assert_eq!(p.trials, 4);
        assert!((p.mean - 25.0).abs() < 1e-9);
        assert!((p.stddev - (500.0_f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!((p.min, p.max), (14.0, 36.0));
        assert!(p.ci95 > 0.0);
        assert!(p.samples.is_empty());
    }

    #[test]
    fn mixed_contributors_demote_to_moment_merge() {
        // One sample-backed row + one legacy row: mixing a raw sub-sample
        // with merged moments would double-count, so the config demotes.
        let a = m_raw("push", "star", 64, &[10.0, 20.0]);
        let b = m("push", "star", 64, 2, 35.0, (50.0_f64).sqrt());
        let pooled = pool(&[a, b]);
        assert_eq!(pooled.len(), 1);
        let p = &pooled[0];
        assert_eq!(p.trials, 4);
        assert!((p.mean - 25.0).abs() < 1e-9);
        assert!(
            p.samples.is_empty(),
            "demoted rows must not keep partial samples"
        );
    }

    #[test]
    fn wallclock_rows_are_quarantined_to_the_appendix() {
        let mut r = crate::harness::Report::new("E16-shard-scaling");
        r.measure_scalar("rounds", "pull", "tree+2n", 1024, 6.0);
        r.measure_wallclock_scalar("apply_speedup", "pull-s8", "tree+2n", 1024, 2.4);
        let pooled = pool(&r.measurements);
        let md = render_results(&pooled, &Args::default());
        let dump = md
            .split("## All pooled measurements")
            .nth(1)
            .unwrap()
            .split("## Appendix")
            .next()
            .unwrap();
        assert!(
            !dump.contains("apply_speedup"),
            "wall-clock row leaked into the dump"
        );
        assert!(dump.contains("rounds"));
        let appendix = md
            .split("## Appendix: wall-clock observations")
            .nth(1)
            .unwrap();
        assert!(appendix.contains("apply_speedup"));
        // No wall-clock rows -> no appendix at all.
        let md2 = render_results(&pool(&r.measurements[..1]), &Args::default());
        assert!(!md2.contains("## Appendix"));
    }

    #[test]
    fn pool_keeps_distinct_configs_apart() {
        let rows = vec![
            m("push", "star", 64, 2, 10.0, 1.0),
            m("push", "star", 128, 2, 20.0, 1.0),
            m("pull", "star", 64, 2, 30.0, 1.0),
        ];
        let pooled = pool(&rows);
        assert_eq!(pooled.len(), 3);
        // First-appearance order preserved.
        assert_eq!(pooled[0].n, 64);
        assert_eq!(pooled[1].n, 128);
        assert_eq!(pooled[2].algorithm, "pull");
    }

    #[test]
    fn render_is_deterministic() {
        let rows = vec![
            m("push", "star", 64, 8, 100.0, 5.0),
            m("push", "star", 128, 8, 260.0, 9.0),
        ];
        let args = Args::default();
        let a = render_results(&pool(&rows), &args);
        let b = render_results(&pool(&rows), &args);
        assert_eq!(a, b);
        assert!(a.contains("# RESULTS"));
        assert!(a.contains("--seed 857536"));
        assert!(a.contains("## All pooled measurements"));
    }
}
