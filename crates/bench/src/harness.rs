//! Shared experiment plumbing: CLI parsing, result persistence, progress.

use gossip_analysis::Table;
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct Args {
    /// Shrink sweeps for a fast smoke run.
    pub quick: bool,
    /// Base seed for all randomness.
    pub seed: u64,
    /// Trials per configuration (0 = experiment default).
    pub trials: usize,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            quick: false,
            seed: 0xD15C0,
            trials: 0,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// Parses `--quick`, `--seed N`, `--trials N`, `--out DIR` from argv.
/// Unknown flags abort with usage — silent typos in experiment flags have
/// burned too many lab notebooks.
pub fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"))
            }
            "--trials" => {
                args.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs an integer"))
            }
            "--out" => {
                args.out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: exp_* [--quick] [--seed N] [--trials N] [--out DIR]");
    std::process::exit(2);
}

/// A named experiment result: rendered tables plus raw rows for JSON.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. "E1-push-scaling".
    pub id: String,
    /// Free-form headline findings (one per line).
    pub notes: Vec<String>,
    /// Named tables (section title, table).
    pub tables: Vec<(String, Table)>,
}

/// Serializable summary row for the JSON artifact.
#[derive(Serialize)]
struct JsonReport<'a> {
    id: &'a str,
    notes: &'a [String],
    tables: Vec<JsonTable<'a>>,
}

#[derive(Serialize)]
struct JsonTable<'a> {
    title: &'a str,
    csv: String,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Adds a headline note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a titled table.
    pub fn table(&mut self, title: impl Into<String>, t: Table) {
        self.tables.push((title.into(), t));
    }

    /// Prints the report to stdout as markdown.
    pub fn print(&self) {
        println!("\n## {}\n", self.id);
        for n in &self.notes {
            println!("* {n}");
        }
        for (title, t) in &self.tables {
            println!("\n### {title}\n");
            print!("{}", t.to_markdown());
        }
    }

    /// Writes `<out>/<id>.md`, `<out>/<id>.csv` (tables concatenated), and
    /// `<out>/<id>.json`.
    pub fn save(&self, out_dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let base = out_dir.join(&self.id);
        // Markdown
        let mut md = std::fs::File::create(base.with_extension("md"))?;
        writeln!(md, "## {}\n", self.id)?;
        for n in &self.notes {
            writeln!(md, "* {n}")?;
        }
        for (title, t) in &self.tables {
            writeln!(md, "\n### {title}\n")?;
            write!(md, "{}", t.to_markdown())?;
        }
        // CSV (sections separated by comment lines)
        let mut csv = std::fs::File::create(base.with_extension("csv"))?;
        for (title, t) in &self.tables {
            writeln!(csv, "# {title}")?;
            write!(csv, "{}", t.to_csv())?;
        }
        // JSON
        let json = JsonReport {
            id: &self.id,
            notes: &self.notes,
            tables: self
                .tables
                .iter()
                .map(|(title, t)| JsonTable {
                    title,
                    csv: t.to_csv(),
                })
                .collect(),
        };
        std::fs::write(
            base.with_extension("json"),
            serde_json::to_string_pretty(&json).expect("report serialization"),
        )?;
        Ok(())
    }

    /// Print and save in one call (the standard bin epilogue).
    pub fn finish(&self, args: &Args) {
        self.print();
        if let Err(e) = self.save(&args.out_dir) {
            eprintln!("warning: could not save results: {e}");
        } else {
            println!(
                "\n[saved to {}/{}.{{md,csv,json}}]",
                args.out_dir.display(),
                self.id
            );
        }
    }
}

/// Geometric sweep of problem sizes: `base * 2^i` for `i < steps`.
pub fn geometric_sizes(base: usize, steps: usize) -> Vec<usize> {
    (0..steps).map(|i| base << i).collect()
}

/// Mean of integer round counts.
pub fn mean(rounds: &[u64]) -> f64 {
    rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_sizes_doubles() {
        assert_eq!(geometric_sizes(32, 4), vec![32, 64, 128, 256]);
        assert_eq!(geometric_sizes(10, 1), vec![10]);
    }

    #[test]
    fn report_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join(format!("gossip-bench-test-{}", std::process::id()));
        let mut r = Report::new("T0-selftest");
        r.note("hello");
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        r.table("numbers", t);
        r.save(&dir).unwrap();
        let md = std::fs::read_to_string(dir.join("T0-selftest.md")).unwrap();
        assert!(md.contains("hello"));
        assert!(md.contains("| a"));
        let json = std::fs::read_to_string(dir.join("T0-selftest.json")).unwrap();
        assert!(json.contains("T0-selftest"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mean_of_rounds() {
        assert_eq!(mean(&[1, 2, 3]), 2.0);
    }
}
