//! Shared experiment plumbing: CLI parsing, result persistence, progress.

use gossip_analysis::{Summary, Table};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct Args {
    /// Shrink sweeps for a fast smoke run.
    pub quick: bool,
    /// Base seed for all randomness.
    pub seed: u64,
    /// Trials per configuration (0 = experiment default).
    pub trials: usize,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// `run_all` only: render the aggregated paper-results report.
    pub report: bool,
    /// `run_all --report` only: how many seeds to pool per configuration.
    pub report_seeds: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            quick: false,
            seed: 0xD15C0,
            trials: 0,
            out_dir: PathBuf::from("results"),
            report: false,
            report_seeds: 3,
        }
    }
}

/// Parses `--quick`, `--seed N`, `--trials N`, `--out DIR`, `--report`,
/// `--report-seeds N` from argv. Unknown flags abort with usage — silent
/// typos in experiment flags have burned too many lab notebooks.
pub fn parse_args() -> Args {
    let mut args = Args::default();
    let mut argv = std::env::args();
    // Only run_all implements report mode; accepting --report in an exp_*
    // binary would silently do an ordinary single run instead. Match the
    // binary's file stem, not the whole path — a checkout under a directory
    // named "run_all*" must not defeat the guard.
    let is_run_all = argv.next().is_some_and(|bin| {
        std::path::Path::new(&bin)
            .file_stem()
            .is_some_and(|stem| stem == "run_all")
    });
    let mut it = argv;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--report" if is_run_all => args.report = true,
            "--report" => usage("--report is only supported by run_all"),
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"))
            }
            "--trials" => {
                args.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs an integer"))
            }
            "--report-seeds" if !is_run_all => usage("--report-seeds is only supported by run_all"),
            "--report-seeds" => {
                args.report_seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--report-seeds needs a positive integer"))
            }
            "--out" => {
                args.out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: exp_* [--quick] [--seed N] [--trials N] [--out DIR]");
    eprintln!("       run_all additionally accepts [--report] [--report-seeds N]");
    std::process::exit(2);
}

/// One machine-readable measured quantity: the summary of a sample of
/// `metric` values for one `(algorithm, family, n)` configuration. This is
/// what `run_all --report` pools across seeds and renders into `RESULTS.md`,
/// and what lands in each experiment's JSON artifact.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Experiment id, e.g. `"E1-push-scaling"`.
    pub experiment: String,
    /// What was measured: `"rounds"`, `"time"`, `"max_message_bits"`, …
    pub metric: String,
    /// Algorithm/process label, e.g. `"push"`.
    pub algorithm: String,
    /// Workload label: topology family or scenario, e.g. `"random-tree"`.
    pub family: String,
    /// Problem size the configuration sweeps (`n`, `k`, … per experiment).
    pub n: u64,
    /// Number of observations behind the summary.
    pub trials: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for single observations).
    pub stddev: f64,
    /// Half-width of the ~95% CI for the mean (0 for single observations).
    /// Per-seed rows carry the normal-theory half-width; report pooling
    /// replaces it with a percentile-bootstrap half-width computed from the
    /// pooled raw [`samples`](Measurement::samples).
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// The raw observations behind the summary, in trial order. Report
    /// pooling concatenates these across seeds so `RESULTS.md` CIs are
    /// bootstrapped from per-trial samples, not merged normal-theory
    /// moments.
    pub samples: Vec<f64>,
    /// Whether the row is a machine-dependent wall-clock observation.
    /// Wall-clock rows are quarantined to the report's appendix and are
    /// excluded from the byte-for-byte reproducibility contract.
    pub wallclock: bool,
}

/// A named experiment result: rendered tables plus raw rows for JSON.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. "E1-push-scaling".
    pub id: String,
    /// Free-form headline findings (one per line).
    pub notes: Vec<String>,
    /// Named tables (section title, table).
    pub tables: Vec<(String, Table)>,
    /// Machine-readable measurements backing the tables.
    pub measurements: Vec<Measurement>,
}

/// Serializable summary row for the JSON artifact.
#[derive(Serialize)]
struct JsonReport<'a> {
    id: &'a str,
    notes: &'a [String],
    tables: Vec<JsonTable<'a>>,
    measurements: &'a [Measurement],
}

#[derive(Serialize)]
struct JsonTable<'a> {
    title: &'a str,
    csv: String,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            notes: Vec::new(),
            tables: Vec::new(),
            measurements: Vec::new(),
        }
    }

    /// Adds a headline note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a titled table.
    pub fn table(&mut self, title: impl Into<String>, t: Table) {
        self.tables.push((title.into(), t));
    }

    /// Records the summary of a sample of `metric` values for one
    /// configuration.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn measure(
        &mut self,
        metric: impl Into<String>,
        algorithm: impl Into<String>,
        family: impl Into<String>,
        n: u64,
        values: &[f64],
    ) {
        let s = Summary::of(values);
        self.measurements.push(Measurement {
            experiment: self.id.clone(),
            metric: metric.into(),
            algorithm: algorithm.into(),
            family: family.into(),
            n,
            trials: s.count as u64,
            mean: s.mean,
            stddev: s.stddev,
            ci95: s.ci95,
            min: s.min,
            max: s.max,
            samples: values.to_vec(),
            wallclock: false,
        });
    }

    /// Records a sample of integer round counts under the `"rounds"` metric.
    pub fn measure_rounds(
        &mut self,
        algorithm: impl Into<String>,
        family: impl Into<String>,
        n: u64,
        rounds: &[u64],
    ) {
        let vals: Vec<f64> = rounds.iter().map(|&r| r as f64).collect();
        self.measure("rounds", algorithm, family, n, &vals);
    }

    /// Records a single deterministic or pre-aggregated observation.
    pub fn measure_scalar(
        &mut self,
        metric: impl Into<String>,
        algorithm: impl Into<String>,
        family: impl Into<String>,
        n: u64,
        value: f64,
    ) {
        self.measure(metric, algorithm, family, n, &[value]);
    }

    /// Records a single **wall-clock** observation (seconds, speedup
    /// ratios, …). Wall-clock rows flow into the report's machine-dependent
    /// appendix instead of the reproducible tables — keeping them out of
    /// the byte-for-byte contract that every other row honors.
    pub fn measure_wallclock_scalar(
        &mut self,
        metric: impl Into<String>,
        algorithm: impl Into<String>,
        family: impl Into<String>,
        n: u64,
        value: f64,
    ) {
        self.measure(metric, algorithm, family, n, &[value]);
        self.measurements
            .last_mut()
            .expect("measure just pushed")
            .wallclock = true;
    }

    /// Prints the report to stdout as markdown.
    pub fn print(&self) {
        println!("\n## {}\n", self.id);
        for n in &self.notes {
            println!("* {n}");
        }
        for (title, t) in &self.tables {
            println!("\n### {title}\n");
            print!("{}", t.to_markdown());
        }
    }

    /// Writes `<out>/<id>.md`, `<out>/<id>.csv` (tables concatenated), and
    /// `<out>/<id>.json`.
    pub fn save(&self, out_dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let base = out_dir.join(&self.id);
        // Markdown
        let mut md = std::fs::File::create(base.with_extension("md"))?;
        writeln!(md, "## {}\n", self.id)?;
        for n in &self.notes {
            writeln!(md, "* {n}")?;
        }
        for (title, t) in &self.tables {
            writeln!(md, "\n### {title}\n")?;
            write!(md, "{}", t.to_markdown())?;
        }
        // CSV (sections separated by comment lines)
        let mut csv = std::fs::File::create(base.with_extension("csv"))?;
        for (title, t) in &self.tables {
            writeln!(csv, "# {title}")?;
            write!(csv, "{}", t.to_csv())?;
        }
        // JSON
        let json = JsonReport {
            id: &self.id,
            notes: &self.notes,
            tables: self
                .tables
                .iter()
                .map(|(title, t)| JsonTable {
                    title,
                    csv: t.to_csv(),
                })
                .collect(),
            measurements: &self.measurements,
        };
        std::fs::write(
            base.with_extension("json"),
            serde_json::to_string_pretty(&json).expect("report serialization"),
        )?;
        Ok(())
    }

    /// Print and save in one call (the standard bin epilogue).
    pub fn finish(&self, args: &Args) {
        self.print();
        if let Err(e) = self.save(&args.out_dir) {
            eprintln!("warning: could not save results: {e}");
        } else {
            println!(
                "\n[saved to {}/{}.{{md,csv,json}}]",
                args.out_dir.display(),
                self.id
            );
        }
    }
}

/// Geometric sweep of problem sizes: `base * 2^i` for `i < steps`.
pub fn geometric_sizes(base: usize, steps: usize) -> Vec<usize> {
    (0..steps).map(|i| base << i).collect()
}

/// Mean of integer round counts.
pub fn mean(rounds: &[u64]) -> f64 {
    rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_sizes_doubles() {
        assert_eq!(geometric_sizes(32, 4), vec![32, 64, 128, 256]);
        assert_eq!(geometric_sizes(10, 1), vec![10]);
    }

    #[test]
    fn report_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join(format!("gossip-bench-test-{}", std::process::id()));
        let mut r = Report::new("T0-selftest");
        r.note("hello");
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        r.table("numbers", t);
        r.measure_rounds("push", "star", 64, &[10, 12, 14]);
        r.save(&dir).unwrap();
        let md = std::fs::read_to_string(dir.join("T0-selftest.md")).unwrap();
        assert!(md.contains("hello"));
        assert!(md.contains("| a"));
        let json = std::fs::read_to_string(dir.join("T0-selftest.json")).unwrap();
        assert!(json.contains("T0-selftest"));
        assert!(json.contains("\"measurements\""));
        assert!(json.contains("\"algorithm\": \"push\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn measurements_summarize_samples() {
        let mut r = Report::new("T1");
        r.measure_rounds("pull", "cycle", 128, &[10, 20, 30]);
        r.measure_scalar("max_message_bits", "flooding", "tree", 64, 4096.0);
        let m = &r.measurements[0];
        assert_eq!((m.n, m.trials), (128, 3));
        assert!((m.mean - 20.0).abs() < 1e-12);
        assert!((m.min, m.max) == (10.0, 30.0));
        assert!(m.ci95 > 0.0);
        let s = &r.measurements[1];
        assert_eq!((s.trials, s.stddev, s.ci95), (1, 0.0, 0.0));
        assert_eq!(s.mean, 4096.0);
    }

    #[test]
    fn mean_of_rounds() {
        assert_eq!(mean(&[1, 2, 3]), 2.0);
    }
}
