//! E15: arena-backed engine scaling, `n` up to `2^20`.
//!
//! `--quick` sweeps `{2^14, 2^17, 2^20}` over a short fixed horizon (the CI
//! smoke configuration); the full run covers every power of two from `2^14`
//! to `2^20` plus the `AdjSet` memory baseline at `2^17`.

use gossip_bench::experiments::scale;
use gossip_bench::parse_args;

fn main() {
    let args = parse_args();
    scale::run(&args).finish(&args);
}
