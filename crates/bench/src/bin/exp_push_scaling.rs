//! Experiment binary: see `gossip_bench::experiments::scaling`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::scaling::run_push(&args).finish(&args);
}
