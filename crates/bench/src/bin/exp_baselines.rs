//! Experiment binary: see `gossip_bench::experiments::baselines`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::baselines::run(&args).finish(&args);
}
