//! Experiment binary: see `gossip_bench::experiments::dense`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::dense::run(&args).finish(&args);
}
