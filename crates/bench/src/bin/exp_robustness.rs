//! Experiment binary: see `gossip_bench::experiments::robustness`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::robustness::run(&args).finish(&args);
}
