//! Experiment binary: see `gossip_bench::experiments::netsim`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::netsim::run(&args).finish(&args);
}
