//! Experiment binary: see `gossip_bench::experiments::asynchrony`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::asynchrony::run(&args).finish(&args);
}
