//! Runs the full experiment battery (E1–E20) and writes every report to the
//! results directory. `--quick` keeps the whole thing under a couple of
//! minutes; the full run is sized for a coffee break.
//!
//! `--report` switches to paper-results mode: the battery runs once per
//! seed (`--report-seeds`, default 3), the per-configuration measurements
//! are pooled across seeds, and the aggregated Markdown report — paper
//! claim vs. measured, mean ± CI per algorithm per n, log²-n fit quality —
//! is written to `<out>/RESULTS.md`. Nothing wall-clock-dependent enters
//! the report, so the same command line reproduces it byte-for-byte.

use gossip_bench::experiments as exp;
use gossip_bench::{parse_args, report, Args, Measurement, Report};
use std::io::Write as _;
use std::time::Instant;

/// The battery, in fixed order (report reproducibility relies on it).
#[allow(clippy::type_complexity)] // dispatch table
fn battery() -> Vec<(&'static str, fn(&Args) -> Report)> {
    vec![
        ("E1", exp::scaling::run_push),
        ("E2/E4", exp::dense::run),
        ("E3", exp::scaling::run_pull),
        ("E5/E6", exp::directed::run),
        ("E7", exp::nonmonotone::run),
        ("E8", exp::mindegree::run),
        ("E9", exp::subset::run),
        ("E10", exp::baselines::run),
        ("E11", exp::robustness::run),
        ("E12", exp::netsim::run),
        ("E13", exp::evolution::run),
        ("E14", exp::asynchrony::run),
        ("E15", exp::scale::run),
        ("E16", exp::shard::run),
        ("E17", exp::serve_load::run),
        ("E18", exp::churn::run),
        ("E19", exp::transport::run),
        ("E20", exp::cluster::run),
    ]
}

fn main() {
    // E19/E20 spawn one re-execed copy of this binary per shard; divert
    // worker copies before they can start a second battery.
    gossip_shard::maybe_run_worker();
    gossip_cluster::maybe_run_cluster_shard();

    let args = parse_args();
    if args.report {
        run_report(&args);
        return;
    }
    let total = Instant::now();
    for (id, run) in battery() {
        let t = Instant::now();
        eprintln!("[run_all] starting {id} ...");
        let report = run(&args);
        report.finish(&args);
        eprintln!("[run_all] {id} done in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "[run_all] battery complete in {:.1}s (quick = {})",
        total.elapsed().as_secs_f64(),
        args.quick
    );
}

/// Paper-results mode: battery × seeds → pooled measurements → RESULTS.md.
fn run_report(args: &Args) {
    let total = Instant::now();
    let mut all: Vec<Measurement> = Vec::new();
    for i in 0..args.report_seeds {
        // Widely separated per-run seeds; every experiment further mixes
        // its own stream constants on top.
        let seed = args
            .seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let sub = Args {
            seed,
            report: false,
            ..args.clone()
        };
        for (id, run) in battery() {
            let t = Instant::now();
            eprintln!(
                "[run_all --report] seed {}/{}: {id} ...",
                i + 1,
                args.report_seeds
            );
            all.extend(run(&sub).measurements);
            eprintln!(
                "[run_all --report] seed {}/{}: {id} done in {:.1}s",
                i + 1,
                args.report_seeds,
                t.elapsed().as_secs_f64()
            );
        }
    }
    let pooled = report::pool(&all);
    let md = report::render_results(&pooled, args);
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = args.out_dir.join("RESULTS.md");
    let mut f = std::fs::File::create(&path).expect("create RESULTS.md");
    f.write_all(md.as_bytes()).expect("write RESULTS.md");
    eprintln!(
        "[run_all --report] {} measurements pooled into {} configurations; \
         report written to {} in {:.1}s",
        all.len(),
        pooled.len(),
        path.display(),
        total.elapsed().as_secs_f64()
    );
}
