//! Runs the full experiment battery (E1–E12) and writes every report to the
//! results directory. `--quick` keeps the whole thing under a couple of
//! minutes; the full run is sized for a coffee break.

use gossip_bench::experiments as exp;
use gossip_bench::{parse_args, Args, Report};
use std::time::Instant;

fn main() {
    let args = parse_args();
    #[allow(clippy::type_complexity)] // dispatch table
    let battery: Vec<(&str, fn(&Args) -> Report)> = vec![
        ("E1", exp::scaling::run_push),
        ("E2/E4", exp::dense::run),
        ("E3", exp::scaling::run_pull),
        ("E5/E6", exp::directed::run),
        ("E7", exp::nonmonotone::run),
        ("E8", exp::mindegree::run),
        ("E9", exp::subset::run),
        ("E10", exp::baselines::run),
        ("E11", exp::robustness::run),
        ("E12", exp::netsim::run),
        ("E13", exp::evolution::run),
        ("E14", exp::asynchrony::run),
    ];
    let total = Instant::now();
    for (id, run) in battery {
        let t = Instant::now();
        eprintln!("[run_all] starting {id} ...");
        let report = run(&args);
        report.finish(&args);
        eprintln!("[run_all] {id} done in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "[run_all] battery complete in {:.1}s (quick = {})",
        total.elapsed().as_secs_f64(),
        args.quick
    );
}
