//! E20: the sharded round peer-to-peer over UDP across loopback "hosts".
//!
//! `--quick` runs the full loss grid and both bootstrap modes at
//! `n = 2^17`; the full run's `n = 2^20` grid — 2 loopback hosts × 2
//! shard processes each — is the acceptance workload. Per-shard peak
//! RSS, retransmit traffic, and the streamed-vs-blocking bootstrap
//! savings go to the report's wall-clock appendix.

use gossip_bench::experiments::cluster;
use gossip_bench::parse_args;

fn main() {
    // Cluster shard workers are re-execed copies of this binary: divert
    // them to the shard loop before any experiment code runs.
    gossip_cluster::maybe_run_cluster_shard();

    let args = parse_args();
    cluster::run(&args).finish(&args);
}
