//! Experiment binary: see `gossip_bench::experiments::mindegree`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::mindegree::run(&args).finish(&args);
}
