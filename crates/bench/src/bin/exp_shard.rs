//! E16: sharded round engine scaling, `n` up to `2^22`.
//!
//! `--quick` trims horizons and the shard grid but keeps all three sizes —
//! the `n = 2^22` two-hop-walk row is the acceptance run and must complete
//! within CI memory. The full run sweeps `S ∈ {1, 2, 8}` at
//! `n ∈ {2^17, 2^20, 2^22}` with longer horizons. Run standalone for clean
//! peak-RSS readings (inside `run_all` the process floor is set by earlier
//! experiments).

use gossip_bench::experiments::shard;
use gossip_bench::parse_args;

fn main() {
    let args = parse_args();
    shard::run(&args).finish(&args);
}
