//! E17: the serving surface under load, `n` up to `2^20`.
//!
//! Serves a live sharded engine to concurrent reader threads sustaining a
//! who-knows-whom / membership / coverage query mix against epoch
//! snapshots, and checks that serving never perturbs the trajectory and
//! that snapshots stay O(S) copy-on-write clones. `--quick` runs the
//! `n = 2^14` configuration only; the full run's `n = 2^20` row is the
//! acceptance run (QPS × round-latency in the wall-clock appendix).

use gossip_bench::experiments::serve_load;
use gossip_bench::parse_args;

fn main() {
    let args = parse_args();
    serve_load::run(&args).finish(&args);
}
