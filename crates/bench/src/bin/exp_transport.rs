//! E19: the sharded round across OS processes over framed UDS.
//!
//! `--quick` runs both modes at `n = 2^14`; the full run's `n = 10^7` row
//! spreads a ten-million-node round over 4 shard processes and is the
//! acceptance workload (per-shard peak RSS + wire bytes go to the report's
//! wall-clock appendix). Run standalone for clean supervisor-RSS readings.

use gossip_bench::experiments::transport;
use gossip_bench::parse_args;

fn main() {
    // Shard workers are re-execed copies of this binary: divert them to
    // the worker loop before any experiment code runs.
    gossip_shard::maybe_run_worker();

    let args = parse_args();
    transport::run(&args).finish(&args);
}
