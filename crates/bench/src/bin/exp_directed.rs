//! Experiment binary: see `gossip_bench::experiments::directed`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::directed::run(&args).finish(&args);
}
