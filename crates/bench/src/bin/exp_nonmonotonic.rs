//! Experiment binary: see `gossip_bench::experiments::nonmonotone`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::nonmonotone::run(&args).finish(&args);
}
