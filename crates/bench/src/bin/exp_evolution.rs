//! Experiment binary: see `gossip_bench::experiments::evolution`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::evolution::run(&args).finish(&args);
}
