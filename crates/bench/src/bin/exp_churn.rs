//! E18: churn bursts at `n` up to `2^22` — re-discovery time, staleness,
//! and determinism under dynamic membership.
//!
//! `--quick` keeps one small size (CI smoke); the full run sweeps
//! `n ∈ {2^20, 2^22}`. The `n = 2^22` row is the acceptance run and must
//! fit 1 GiB peak RSS — run standalone for the clean reading (inside
//! `run_all` the process RSS floor is set by earlier experiments).

use gossip_bench::experiments::churn;
use gossip_bench::parse_args;

fn main() {
    let args = parse_args();
    churn::run(&args).finish(&args);
}
