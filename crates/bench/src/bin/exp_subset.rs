//! Experiment binary: see `gossip_bench::experiments::subset`.
fn main() {
    let args = gossip_bench::parse_args();
    gossip_bench::experiments::subset::run(&args).finish(&args);
}
