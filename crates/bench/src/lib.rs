//! # gossip-bench
//!
//! The experiment harness: one module per paper artifact (theorem/figure),
//! each regenerating its table from scratch. Binaries under `src/bin/` are
//! thin wrappers so `cargo run -p gossip-bench --release --bin exp_*` works;
//! `run_all` executes the full battery and writes `results/`.
//!
//! Conventions:
//! * `--quick` shrinks sweeps for CI-speed runs; the full battery is sized
//!   for minutes, not hours, on a laptop.
//! * Every experiment prints a markdown table (for EXPERIMENTS.md), records
//!   machine-readable [`Measurement`] rows, and writes tables + measurements
//!   as CSV + JSON under `results/`.
//! * All randomness flows from `--seed` through the deterministic stream
//!   machinery, so reruns reproduce bit-identical tables — including
//!   `run_all --report`, which pools the battery across seeds (see
//!   [`report`]) and regenerates the repository's `RESULTS.md`
//!   byte-for-byte.
//!
//! See `crates/bench/README.md` for the experiment/benchmark workflow
//! (flags, criterion baselines, report mode).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{parse_args, Args, Measurement, Report};
