//! E20 — datagram shard cluster: the sharded round peer-to-peer over UDP.
//!
//! E19 serialized the round through a resident supervisor on Unix domain
//! sockets. This experiment removes the supervisor from the data path:
//! each shard is an **OS process with its own UDP socket**, resolved from
//! a static peer table laid out as two loopback "hosts" (shards 0–1 on
//! `127.0.0.1`, shards 2–3 on `127.0.0.2`), exchanging mailbox frames
//! directly with every peer while shard 0 only coordinates round
//! barriers. Per `(n, loss)` it records:
//!
//! * **trajectory invariance** — per-round stats, final edge count, and
//!   row checksum must equal the in-process `ShardedEngine` run of the
//!   same `(n, seed)`, at zero loss *and* under seeded datagram
//!   drop/duplicate injection repaired by the ack/timeout/backoff
//!   windows,
//! * **datagram volume** — data datagrams queued, fragments, snapshot
//!   chunks, and injected faults (pure functions of trajectory, MTU, and
//!   fault seed, measured at the coordinator endpoint), plus the
//!   wall-clock repair traffic (retransmits, acks, naks),
//! * **memory** — per-shard worker peak RSS (`VmHWM`, each process reads
//!   its own and reports it in the `Done` barrier),
//! * **bootstrap overlap** — how long the coordinator's first propose
//!   ran while bootstrap snapshot datagrams were still pending (transfer
//!   hidden under compute — the blocking-handshake baseline spends that
//!   span idle, so its overlap is zero by construction), how many
//!   datagrams were confirmed during that propose, and the raw
//!   time-through-round-0 for both modes. Savings are reported in the
//!   wall-clock appendix; the deterministic sections never depend on
//!   them.
//!
//! The full run's `n = 2^20` grid is the acceptance workload: a
//! million-node round over 2×2 shard processes on two loopback hosts,
//! bit-identical to the in-process engine at every loss rate.

use crate::experiments::shard::{fmt_mib, row_checksum, sparse_sharded};
use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_cluster::{ClusterBuilder, ClusterStats, DatagramLoss};
use gossip_core::{Pull, RoundStats, RuleId};
use gossip_shard::{ShardedEngine, TransportMode};
use std::net::{SocketAddr, UdpSocket};
use std::time::Instant;

/// The in-process oracle: same reduction as E19 — per-round stats, final
/// `m`, row checksum — dropped before any worker process spawns.
fn oracle(n: usize, shards: usize, horizon: u64, seed: u64) -> (Vec<RoundStats>, u64, u64) {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let mut e = ShardedEngine::new(g, Pull, seed ^ 0x5A4D);
    let stats: Vec<RoundStats> = (0..horizon).map(|_| e.step()).collect();
    let g = e.into_graph();
    (stats, g.m(), row_checksum(&g))
}

/// The two-host loopback peer table: shard 1 beside the coordinator on
/// `127.0.0.1`, shards 2..S on `127.0.0.2` (falling back to single-host
/// where the platform only binds the first loopback address).
fn two_host_table(shards: usize) -> Vec<SocketAddr> {
    let host_b = if UdpSocket::bind("127.0.0.2:0").is_ok() {
        "127.0.0.2"
    } else {
        "127.0.0.1"
    };
    let reserve = |host: &str| -> SocketAddr {
        let s = UdpSocket::bind(format!("{host}:0")).expect("reserve loopback port");
        s.local_addr().unwrap()
    };
    (1..shards)
        .map(|s| {
            reserve(if s < shards.div_ceil(2) {
                "127.0.0.1"
            } else {
                host_b
            })
        })
        .collect()
}

struct ClusterRun {
    stats: Vec<RoundStats>,
    final_m: u64,
    checksum: u64,
    cluster: ClusterStats,
    wall_ns_per_round: f64,
    /// Spawn through the end of round 0, the window the streamed
    /// bootstrap overlaps with snapshot transfer.
    first_round_ns: u64,
}

fn cluster_run(
    n: usize,
    shards: usize,
    horizon: u64,
    seed: u64,
    loss: Option<DatagramLoss>,
    blocking_bootstrap: bool,
) -> ClusterRun {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let peers = two_host_table(shards);
    let t_boot = Instant::now();
    let mut b = ClusterBuilder::new(g, RuleId::Pull, seed ^ 0x5A4D)
        .with_mode(TransportMode::Process)
        .with_bind("127.0.0.1:0".parse().unwrap())
        .with_peers(peers)
        .with_blocking_bootstrap(blocking_bootstrap);
    if let Some(l) = loss {
        b = b.with_loss(l);
    }
    let mut e = b.spawn().expect("spawn cluster shards");
    let t = Instant::now();
    let mut stats: Vec<RoundStats> = vec![e.step()];
    let first_round_ns = t_boot.elapsed().as_nanos() as u64;
    stats.extend((1..horizon).map(|_| e.step()));
    let wall_ns_per_round = t.elapsed().as_nanos() as f64 / horizon as f64;
    let final_m = e.graph().m();
    let checksum = row_checksum(e.graph());
    let cluster = e.stats();
    e.shutdown().expect("clean shard exit");
    ClusterRun {
        stats,
        final_m,
        checksum,
        cluster,
        wall_ns_per_round,
        first_round_ns,
    }
}

/// E20: datagram shard cluster on a two-host loopback grid.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E20-cluster");

    // 2 loopback hosts × 2 shard processes each. Quick shrinks n only;
    // the loss grid and both bootstrap modes run either way.
    let shards = 4usize;
    let (n, horizon) = if args.quick {
        (1 << 17, 4u64)
    } else {
        (1 << 20, 5u64)
    };
    let loss_grid: [(&str, Option<DatagramLoss>); 3] = [
        ("udp", None),
        (
            "udp-loss-5%",
            Some(DatagramLoss {
                seed: args.seed ^ 0xD06,
                drop_per_mille: 50,
                dup_per_mille: 25,
            }),
        ),
        (
            "udp-loss-20%",
            Some(DatagramLoss {
                seed: args.seed ^ 0xD07,
                drop_per_mille: 200,
                dup_per_mille: 100,
            }),
        ),
    ];

    let mut table = Table::new([
        "mode",
        "n",
        "S",
        "rounds",
        "edges added",
        "data dgrams",
        "fragments",
        "snap chunks",
        "inj drops",
        "retransmits",
        "acks",
        "rounds/sec",
        "worker RSS MiB (max)",
    ]);

    let (oracle_stats, oracle_m, oracle_sum) = oracle(n, shards, horizon, args.seed);
    let fam = format!("hosts-2x{}", shards / 2);
    let mut streamed_first_round_ns = 0u64;
    let mut streamed_overlap_dgrams = 0u64;
    let mut streamed_overlap_ns = 0u64;

    for (label, loss) in loss_grid {
        let r = cluster_run(n, shards, horizon, args.seed, loss, false);

        // The headline contract: the datagram cluster replays the
        // in-process engine bit-for-bit at every loss rate.
        let invariant =
            r.stats == oracle_stats && r.final_m == oracle_m && r.checksum == oracle_sum;
        assert!(
            invariant,
            "{label} cluster diverged from in-process engine at n={n}, S={shards}"
        );
        if loss.is_some() {
            assert!(
                r.cluster.endpoint.injected_drops > 0,
                "{label} at n={n} never dropped a datagram — \
                 injection rates too low to exercise the windows"
            );
            assert!(r.cluster.endpoint.retransmitted > 0);
        }
        if label == "udp" {
            streamed_first_round_ns = r.first_round_ns;
            streamed_overlap_dgrams = r.cluster.bootstrap_overlap_datagrams;
            streamed_overlap_ns = r.cluster.bootstrap_overlap_ns;
            assert!(
                streamed_overlap_ns > 0,
                "streamed bootstrap hid no transfer under the first propose"
            );
        }

        let added: u64 = r.stats.iter().map(|st| st.added).sum();
        report.measure_scalar(
            "trajectory_invariant_vs_inproc",
            label,
            fam.clone(),
            n as u64,
            invariant as u64 as f64,
        );
        report.measure_scalar("edges_added", label, fam.clone(), n as u64, added as f64);
        // Coordinator-side datagram volume is a pure function of
        // (trajectory, MTU, fault seed): queue order per link is fixed,
        // and injection verdicts are keyed by (seed, link, seq).
        report.measure_scalar(
            "data_datagrams",
            label,
            fam.clone(),
            n as u64,
            r.cluster.endpoint.data_datagrams as f64,
        );
        report.measure_scalar(
            "snapshot_chunks",
            label,
            fam.clone(),
            n as u64,
            r.cluster.snapshot_chunks as f64,
        );
        if loss.is_some() {
            report.measure_scalar(
                "injected_drops",
                label,
                fam.clone(),
                n as u64,
                r.cluster.endpoint.injected_drops as f64,
            );
        }

        // Machine-dependent rows: throughput, repair traffic, memory.
        report.measure_wallclock_scalar(
            "rounds_per_sec",
            label,
            fam.clone(),
            n as u64,
            1e9 / r.wall_ns_per_round,
        );
        report.measure_wallclock_scalar(
            "retransmitted_datagrams",
            label,
            fam.clone(),
            n as u64,
            r.cluster.endpoint.retransmitted as f64,
        );
        let worker_rss = r.cluster.worker_peak_rss_bytes.iter().copied().max();
        if let Some(rss) = worker_rss {
            report.measure_wallclock_scalar(
                "worker_peak_rss_bytes",
                label,
                fam.clone(),
                n as u64,
                rss as f64,
            );
        }
        report.measure_wallclock_scalar(
            "bootstrap_overlap_datagrams",
            label,
            fam.clone(),
            n as u64,
            r.cluster.bootstrap_overlap_datagrams as f64,
        );

        table.push_row([
            label.into(),
            n.to_string(),
            shards.to_string(),
            horizon.to_string(),
            added.to_string(),
            r.cluster.endpoint.data_datagrams.to_string(),
            r.cluster.endpoint.fragments_sent.to_string(),
            r.cluster.snapshot_chunks.to_string(),
            r.cluster.endpoint.injected_drops.to_string(),
            r.cluster.endpoint.retransmitted.to_string(),
            r.cluster.endpoint.acks_sent.to_string(),
            fmt_f64(1e9 / r.wall_ns_per_round),
            worker_rss.map_or("-".into(), fmt_mib),
        ]);
    }

    // The bootstrap baseline: same lossless workload, but the coordinator
    // waits for every worker's Hello before round 0 instead of streaming
    // snapshots under its own propose. Its overlap is zero by
    // construction, so the streamed run's overlap time — propose wall
    // time during which transfer was still pending — is exactly the span
    // the baseline spends idle: the savings (wall-clock appendix only).
    let blocking = cluster_run(n, shards, horizon, args.seed, None, true);
    assert!(
        blocking.stats == oracle_stats
            && blocking.final_m == oracle_m
            && blocking.checksum == oracle_sum,
        "blocking-bootstrap cluster diverged from in-process engine"
    );
    assert_eq!(blocking.cluster.bootstrap_overlap_datagrams, 0);
    assert_eq!(blocking.cluster.bootstrap_overlap_ns, 0);
    report.measure_wallclock_scalar(
        "bootstrap_first_round_ns",
        "udp",
        fam.clone(),
        n as u64,
        streamed_first_round_ns as f64,
    );
    report.measure_wallclock_scalar(
        "bootstrap_first_round_ns",
        "udp-blocking",
        fam.clone(),
        n as u64,
        blocking.first_round_ns as f64,
    );
    report.measure_wallclock_scalar(
        "bootstrap_overlap_savings_ns",
        "udp",
        fam,
        n as u64,
        streamed_overlap_ns as f64,
    );

    report.note(format!(
        "every cluster run — one OS process per shard with its own UDP \
         socket, peer table split across loopback hosts 127.0.0.1/127.0.0.2, \
         no supervisor on the data path — replayed the in-process \
         ShardedEngine bit-for-bit (per-round stats, final m, row checksum) \
         at 0%, 5%, and 20% seeded datagram drop rates; the ack/timeout/\
         backoff windows repaired every injected fault before its round \
         barrier. Horizon: {} rounds at n = 2^{} over 2x{} shard processes.",
        horizon,
        n.trailing_zeros(),
        shards / 2,
    ));
    report.note(format!(
        "streamed bootstrap hid {:.1} ms of snapshot transfer under the \
         coordinator's first propose ({} datagrams confirmed while it \
         ran) — the span the blocking handshake spends idle, its overlap \
         being zero by construction; raw time through round 0: {} ms \
         streamed vs {} ms blocking (both ack-clock dominated — \
         wall-clock appendix, machine-dependent). Datagram and \
         snapshot-chunk counts are coordinator-endpoint, deterministic \
         rows; retransmit/ack traffic and RSS stay in the appendix.",
        streamed_overlap_ns as f64 / 1e6,
        streamed_overlap_dgrams,
        streamed_first_round_ns / 1_000_000,
        blocking.first_round_ns / 1_000_000,
    ));
    report.table("datagram cluster vs in-process engine (pull)", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process mode would re-exec the libtest harness; thread-hosted
    // workers cover the same window/bootstrap/assembler code paths.
    #[test]
    fn cluster_run_matches_oracle_in_thread_mode() {
        let n = 1500;
        let shards = 3;
        let (stats, m, sum) = oracle(n, shards, 3, 9);
        for loss in [
            None,
            Some(DatagramLoss {
                seed: 5,
                drop_per_mille: 150,
                dup_per_mille: 100,
            }),
        ] {
            let g = sparse_sharded(n, 2 * n as u64, 9, shards);
            let mut b = ClusterBuilder::new(g, RuleId::Pull, 9 ^ 0x5A4D);
            if let Some(l) = loss {
                b = b.with_loss(l);
            }
            let mut e = b.spawn().expect("spawn");
            let got: Vec<RoundStats> = (0..3).map(|_| e.step()).collect();
            assert_eq!(got, stats);
            assert_eq!(e.graph().m(), m);
            assert_eq!(row_checksum(e.graph()), sum);
            if loss.is_some() {
                assert!(e.stats().endpoint.injected_drops > 0);
            }
            e.shutdown().unwrap();
        }
    }
}
