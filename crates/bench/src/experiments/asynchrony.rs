//! E14 — synchronous rounds vs asynchronous (Poisson-clock) time.
//!
//! The paper's model is synchronous; the asynchronous rendition is the
//! other standard gossip timing model and the natural first robustness
//! question about the analysis. Exchange rate: one continuous time unit =
//! one expected activation per node = one round of work. We compare full
//! convergence-time *distributions* (KS distance), not just means: a shape
//! change would say the synchrony barrier matters; a near-zero KS says the
//! processes are timing-model-insensitive.

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, ks_statistic, ks_threshold_95, Ecdf, Summary, Table};
use gossip_core::rng::trial_seed;
use gossip_core::{with_rule, ComponentwiseComplete, EngineBuilder, ProposalRule, RuleId};
use gossip_graph::{generators, UndirectedGraph};
use rayon::prelude::*;

fn sync_rounds<R: ProposalRule<UndirectedGraph> + Clone>(
    g: &UndirectedGraph,
    rule: R,
    trials: usize,
    base_seed: u64,
) -> Vec<f64> {
    (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut check = ComponentwiseComplete::for_graph(g);
            let mut e =
                EngineBuilder::new(g.clone(), rule.clone(), trial_seed(base_seed, t)).build();
            let out = e.run_until(&mut check, u64::MAX);
            assert!(out.converged);
            out.rounds as f64
        })
        .collect()
}

fn async_times<R: ProposalRule<UndirectedGraph> + Clone>(
    g: &UndirectedGraph,
    rule: R,
    trials: usize,
    base_seed: u64,
) -> Vec<f64> {
    (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut check = ComponentwiseComplete::for_graph(g);
            let mut e =
                EngineBuilder::new(g.clone(), rule.clone(), trial_seed(base_seed, t)).build_async();
            let out = e.run_until(&mut check, f64::INFINITY);
            assert!(out.converged);
            out.time
        })
        .collect()
}

/// E14.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E14-asynchrony");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        24
    } else {
        64
    };
    let sizes: Vec<usize> = if args.quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256]
    };

    let mut table = Table::new([
        "process",
        "family",
        "n",
        "sync rounds (mean)",
        "async time (mean)",
        "ratio",
        "KS distance",
        "KS 95% threshold",
    ]);
    for &n in &sizes {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0xA51, n as u64);
        let families = [
            ("star", generators::star(n)),
            ("random-tree", generators::random_tree(n, &mut rng)),
        ];
        for (fam, g) in &families {
            for id in [RuleId::Push, RuleId::Pull] {
                let proc_name = id.name();
                let (sync, asynch) = with_rule!(id, |rule| (
                    sync_rounds(g, rule, trials, args.seed ^ n as u64),
                    async_times(g, rule, trials, args.seed ^ n as u64 ^ 0xA5),
                ));
                report.measure("rounds", format!("{proc_name}-sync"), *fam, n as u64, &sync);
                report.measure(
                    "time",
                    format!("{proc_name}-async"),
                    *fam,
                    n as u64,
                    &asynch,
                );
                let ss = Summary::of(&sync);
                let sa = Summary::of(&asynch);
                let ks = ks_statistic(&Ecdf::new(&sync), &Ecdf::new(&asynch));
                report.measure_scalar("ks_distance", proc_name, *fam, n as u64, ks);
                table.push_row([
                    proc_name.to_string(),
                    fam.to_string(),
                    n.to_string(),
                    fmt_f64(ss.mean),
                    fmt_f64(sa.mean),
                    fmt_f64(sa.mean / ss.mean),
                    fmt_f64(ks),
                    fmt_f64(ks_threshold_95(sync.len(), asynch.len())),
                ]);
            }
        }
    }
    report.note(
        "exchange rate: 1 continuous time unit = 1 expected activation per node = 1 round of \
         work. Ratios near 1 mean the paper's synchronous analysis carries over to the \
         asynchronous model; the KS column compares full distributions, not just means.",
    );
    report.note(
        "observed: the timing models are statistically indistinguishable — mean ratios scatter \
         within ±5% of 1.0 and every KS distance sits below the 95% threshold. The synchrony \
         barrier does not matter to these processes at the densities where time is spent.",
    );
    report.table("synchronous vs asynchronous convergence", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let args = Args {
            quick: true,
            trials: 8,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables[0].1.len(), 8); // 2 sizes x 2 families x 2 processes
    }
}
