//! E15 — engine scaling: the arena-backed store at million-node sizes.
//!
//! The paper's upper bounds are asymptotic, but the `AdjSet` layout's
//! per-node bitmaps (`n²/8` bytes) capped experiments near `n = 2^17`.
//! This experiment drives the [`gossip_graph::ArenaGraph`] backend through
//! the flat proposal pipeline across `n ∈ {2^14 … 2^20}` and records, per
//! process:
//!
//! * **rounds / edges added** over a fixed horizon (deterministic,
//!   pooled into `RESULTS.md`),
//! * **edge-doubling time** — rounds until `m ≥ 2·m₀` — via the streaming
//!   trial runner (one engine alive at a time, `O(edges)` peak memory),
//! * **memory** — deterministic length-based bytes of the arena store,
//!   against the `AdjSet` baseline at the comparison size (the headline
//!   `≥4×` reduction gate), and
//! * **throughput** — ns per node per round and process peak RSS. Timing
//!   and RSS go to this experiment's tables only, never into
//!   [`Measurement`](crate::harness::Measurement) rows, so `RESULTS.md`
//!   stays byte-reproducible.
//!
//! The `AdjSet` comparison runs **last**: peak RSS is process-wide and
//! monotone, so the bitmap build must not pollute the arena rows.

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{
    stream_trials, ConvergenceCheck, Engine, Never, Parallelism, Pull, Push, TrialConfig,
};
use gossip_graph::{ArenaGraph, NodeId, UndirectedGraph};
use std::time::Instant;

/// Converged once the edge count reaches `target` — the scale experiment's
/// milestone check (full completion at these sizes would need terabytes).
struct EdgesAtLeast {
    target: u64,
}

impl ConvergenceCheck<ArenaGraph> for EdgesAtLeast {
    fn is_converged(&mut self, g: &ArenaGraph) -> bool {
        g.m() >= self.target
    }
    fn describe(&self) -> String {
        format!("edge count >= {}", self.target)
    }
}

/// Connected sparse start graph built directly in the arena layout:
/// a random parent tree plus `extra` uniform random edges. Mirrors
/// `generators::tree_plus_random_edges`'s workload shape without ever
/// materializing the `O(n²/8)`-byte `AdjSet` form.
pub(crate) fn sparse_arena(n: usize, extra: u64, seed: u64) -> ArenaGraph {
    use rand::Rng;
    let mut rng = gossip_core::rng::stream_rng(seed, 0xA1, n as u64);
    let mut g = ArenaGraph::new(n);
    for i in 1..n as u32 {
        g.add_edge(NodeId(i), NodeId(rng.random_range(0..i)));
    }
    let target = n as u64 - 1 + extra;
    while g.m() < target {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        g.add_edge(NodeId(a), NodeId(b));
    }
    g
}

/// Process peak RSS (`VmHWM`) in bytes, if the platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// E15: arena-backend scaling sweep.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E15-engine-scaling");
    let sizes: Vec<usize> = if args.quick {
        vec![1 << 14, 1 << 17, 1 << 20]
    } else {
        (14..=20).map(|p| 1usize << p).collect()
    };
    let horizon: u64 = if args.quick { 6 } else { 16 };
    // Edge-doubling trials stay at sizes where a trial is milliseconds.
    let doubling_cap: usize = if args.quick { 1 << 14 } else { 1 << 16 };
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        2
    } else {
        3
    };
    // The AdjSet layout's bitmaps are n²/8 bytes, so the baseline build is
    // the experiment's dominant allocation; 2^17 (≈ 2 GiB of bitmaps) is
    // the paper-facing comparison point and stays feasible in CI.
    let cmp_n: usize = 1 << 17;

    let mut throughput = Table::new([
        "process",
        "n",
        "rounds",
        "edges added",
        "ns/node/round",
        "arena MiB",
        "peak RSS MiB",
    ]);
    let mut doubling = Table::new(["process", "n", "trials", "mean rounds to 2x edges"]);

    for &n in &sizes {
        let g0 = sparse_arena(n, 2 * n as u64, args.seed);
        let m0 = g0.m();
        for (name, is_pull) in [("pull", true), ("push", false)] {
            // Fixed-horizon throughput run (the n = 2^20 pull row is the
            // "clean Two-Hop Walk run at a million nodes" acceptance gate).
            let t = Instant::now();
            let (added, mem_bytes) = if is_pull {
                let mut e = Engine::new(g0.clone(), Pull, args.seed ^ 0x7400);
                let out = e.run_until(&mut Never, horizon);
                (out.final_edges - m0, e.graph().memory_bytes())
            } else {
                let mut e = Engine::new(g0.clone(), Push, args.seed ^ 0x7400);
                let out = e.run_until(&mut Never, horizon);
                (out.final_edges - m0, e.graph().memory_bytes())
            };
            let elapsed = t.elapsed().as_nanos() as f64;
            let ns_node_round = elapsed / (n as f64 * horizon as f64);
            report.measure_scalar("rounds", name, "tree+2n", n as u64, horizon as f64);
            report.measure_scalar("edges_added", name, "tree+2n", n as u64, added as f64);
            if is_pull {
                report.measure_scalar("mem_bytes", "arena", "tree+2n", n as u64, mem_bytes as f64);
            }
            throughput.push_row([
                name.to_string(),
                n.to_string(),
                horizon.to_string(),
                added.to_string(),
                fmt_f64(ns_node_round),
                fmt_mib(mem_bytes as u64),
                peak_rss_bytes().map_or("-".into(), fmt_mib),
            ]);

            // Edge-doubling time through the streaming trial runner.
            if n <= doubling_cap && is_pull {
                let cfg = TrialConfig {
                    trials,
                    base_seed: args.seed ^ (n as u64) << 4,
                    max_rounds: 10_000,
                    parallel: false,
                };
                let mut rounds = Vec::new();
                stream_trials(
                    &g0,
                    Pull,
                    |g| EdgesAtLeast { target: 2 * g.m() },
                    &cfg,
                    Parallelism::default(),
                    |_, out| {
                        assert!(out.converged, "edge doubling exceeded round budget");
                        rounds.push(out.rounds);
                    },
                );
                report.measure_rounds("pull-doubling", "tree+2n", n as u64, &rounds);
                doubling.push_row([
                    "pull".to_string(),
                    n.to_string(),
                    trials.to_string(),
                    fmt_f64(crate::harness::mean(&rounds)),
                ]);
            }
        }
    }

    // AdjSet baseline, last (see module docs): identical edge set, same
    // horizon, then compare deterministic storage bytes.
    let arena0 = sparse_arena(cmp_n, 2 * cmp_n as u64, args.seed);
    let mut arena_e = Engine::new(arena0.clone(), Pull, args.seed ^ 0x7400);
    arena_e.run_until(&mut Never, horizon);
    let arena_bytes = arena_e.graph().memory_bytes();
    drop(arena_e);
    let adj0 = UndirectedGraph::from_edges(cmp_n, arena0.edges().map(|e| (e.a.0, e.b.0)));
    drop(arena0);
    let mut adj_e = Engine::new(adj0, Pull, args.seed ^ 0x7400);
    adj_e.run_until(&mut Never, horizon);
    let adj_bytes = adj_e.graph().memory_bytes();
    drop(adj_e);
    let ratio = adj_bytes as f64 / arena_bytes as f64;
    report.measure_scalar(
        "mem_bytes",
        "adjset",
        "tree+2n",
        cmp_n as u64,
        adj_bytes as f64,
    );
    report.measure_scalar(
        "mem_ratio",
        "adjset-vs-arena",
        "tree+2n",
        cmp_n as u64,
        ratio,
    );
    let mut memory = Table::new(["n", "arena MiB", "AdjSet MiB", "reduction"]);
    memory.push_row([
        cmp_n.to_string(),
        fmt_mib(arena_bytes as u64),
        fmt_mib(adj_bytes as u64),
        format!("{:.0}x", ratio),
    ]);

    report.note(format!(
        "arena backend: O(m + n) storage vs the AdjSet layout's n^2/8-byte bitmaps; \
         at n = 2^17 the same {horizon}-round pull run needs {}x less graph memory.",
        fmt_f64(ratio)
    ));
    report.note(
        "timing and peak-RSS columns are wall-clock observations and never enter \
         the Measurement rows (RESULTS.md stays byte-reproducible).",
    );
    report.table("fixed-horizon throughput (arena backend)", throughput);
    report.table("edge-doubling time (streamed trials)", doubling);
    report.table("memory: arena vs AdjSet at the comparison size", memory);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_arena_is_connected_and_sized() {
        let g = sparse_arena(512, 1024, 7);
        assert_eq!(g.n(), 512);
        assert_eq!(g.m(), 511 + 1024);
        g.validate().unwrap();
    }

    #[test]
    fn quick_run_records_deterministic_measurements() {
        // A scaled-down args set (the real quick sweep reaches 2^20 and is
        // exercised by CI's exp_scale smoke run, not unit tests).
        let args = Args {
            quick: true,
            trials: 1,
            ..Args::default()
        };
        // Shrink further for unit-test speed by monkeying the sweep via
        // direct calls: run the pieces the experiment is built from.
        let n = 1 << 12;
        let g = sparse_arena(n, 2 * n as u64, args.seed);
        let m0 = g.m();
        let mut e = Engine::new(g, Pull, args.seed);
        let out = e.run_until(&mut Never, 4);
        assert_eq!(out.rounds, 4);
        assert!(out.final_edges > m0);
        // Even with growth reserve, dead space, and fixed per-node
        // bookkeeping (which dominates at this deliberately small n), the
        // arena stays well under the n²/8-byte bitmap floor of the AdjSet
        // layout; the measured ratio at 2^17 lands in RESULTS.md.
        assert!(e.graph().memory_bytes() < n * n / 8 / 2);
    }

    #[test]
    fn edges_at_least_check_fires() {
        let g = sparse_arena(256, 512, 3);
        let mut check = EdgesAtLeast { target: 2 * g.m() };
        assert!(!check.is_converged(&g));
        let mut e = Engine::new(g, Pull, 11);
        let out = e.run_until(&mut check, 10_000);
        assert!(out.converged);
        assert!(out.final_edges >= 2 * (255 + 512));
    }
}
