//! One module per paper artifact. Each exposes `run(&Args) -> Report`.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`scaling`] | Theorems 8 & 12 (E1, E3): O(n log² n) undirected upper bounds |
//! | [`dense`] | Theorems 9 & 13 (E2, E4): Ω(n log k) dense lower bounds |
//! | [`directed`] | Theorems 14 & 15 (E5, E6): directed upper/lower bounds |
//! | [`nonmonotone`] | Figure 1(c) (E7): exact non-monotonicity |
//! | [`mindegree`] | Lemmas 5–7, 10–11 (E8): min-degree growth + tie structure |
//! | [`subset`] | §1 (E9): subgroup discovery scales with k, not host n |
//! | [`baselines`] | §1 (E10): rounds-vs-bandwidth against Name Dropper et al. |
//! | [`robustness`] | §6 (E11): connection failures, partial participation |
//! | [`netsim`] | §1 (E12): byte-accurate wire validation, loss + churn |
//! | [`evolution`] | §1 (E13): structural evolution + brokerage under push |
//! | [`asynchrony`] | model extension (E14): synchronous vs Poisson-clock timing |
//! | [`scale`] | scaling extension (E15): arena-backed engine at n up to 2^20 |
//! | [`shard`] | scaling extension (E16): sharded round engine at n up to 2^22 |
//! | [`serve_load`] | serving extension (E17): live engine under sustained query load |
//! | [`churn`] | dynamics extension (E18): re-discovery and staleness under membership bursts |
//! | [`transport`] | distribution extension (E19): framed mailbox exchange across shard processes over UDS |
//! | [`cluster`] | distribution extension (E20): datagram shard cluster over UDP with static peer tables |

pub mod asynchrony;
pub mod baselines;
pub mod churn;
pub mod cluster;
pub mod dense;
pub mod directed;
pub mod evolution;
pub mod mindegree;
pub mod netsim;
pub mod nonmonotone;
pub mod robustness;
pub mod scale;
pub mod scaling;
pub mod serve_load;
pub mod shard;
pub mod subset;
pub mod transport;
