//! E8 — the proofs' progress measure (Lemmas 5–7 for push, 10–11 for pull):
//! the minimum degree grows by a factor 9/8 every `O(n log n)` rounds.
//!
//! The `n log n` phase cost binds in the **dense regime** (`δ0 = Θ(n)`):
//! each helper adds a useful edge with probability `Θ(1/n)` per round and
//! `Θ(δ0)` new edges are needed, so we sweep G(n, 1/4) and check rounds
//! against `n ln n`. For contrast we also sweep sparse regular-ish graphs,
//! where doubling is exponentially easier (`O(log n)` — the bound is a
//! worst case over all densities, not tight everywhere). We also trace the
//! strongly/weakly-tied neighbor populations the case analysis walks
//! through.

use crate::harness::{geometric_sizes, mean, Args, Report};
use gossip_analysis::{fmt_f64, loglog_exponent, Table};
use gossip_core::diagnostics::tie_stats;
use gossip_core::{
    convergence_rounds, Engine, MinDegreeAtLeast, ProposalRule, Pull, Push, TrialConfig,
};
use gossip_graph::{generators, UndirectedGraph};

/// Which density regime to sweep.
#[derive(Clone, Copy)]
enum Regime {
    /// G(n, 1/4): δ0 = Θ(n); target δ0 · 9/8 — the lemma's binding case.
    Dense,
    /// Random regular-ish d = 4; target 2 δ0 — the easy sparse case.
    Sparse,
}

fn degree_growth_sweep<R: ProposalRule<UndirectedGraph> + Clone>(
    rule: R,
    label: &str,
    regime: Regime,
    args: &Args,
    report: &mut Report,
    table: &mut Table,
) -> (Vec<f64>, Vec<f64>) {
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };
    let sizes = if args.quick {
        geometric_sizes(64, 3)
    } else {
        geometric_sizes(64, 5)
    };
    let mut ns = Vec::new();
    let mut ts = Vec::new();
    for &n in &sizes {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0x8E, n as u64);
        let g = match regime {
            Regime::Dense => generators::gnp_connected(n, 0.25, &mut rng),
            Regime::Sparse => generators::random_regular_ish(n, 4, &mut rng),
        };
        let delta0 = g.min_degree();
        let target = match regime {
            Regime::Dense => (delta0 * 9).div_ceil(8),
            Regime::Sparse => 2 * delta0,
        };
        let cfg = TrialConfig {
            trials,
            base_seed: args.seed ^ n as u64,
            max_rounds: 100_000_000,
            parallel: true,
        };
        let rounds = convergence_rounds(
            &g,
            rule.clone(),
            |_g: &UndirectedGraph| MinDegreeAtLeast::new(target),
            &cfg,
        );
        let (algorithm, family) = label.split_once(' ').expect("label is `process regime`");
        report.measure_rounds(algorithm, family.replace(' ', "-"), n as u64, &rounds);
        let m = mean(&rounds);
        let nf = n as f64;
        table.push_row([
            label.to_string(),
            n.to_string(),
            delta0.to_string(),
            target.to_string(),
            fmt_f64(m),
            fmt_f64(nf * nf.ln()),
            fmt_f64(m / (nf * nf.ln())),
        ]);
        ns.push(nf);
        ts.push(m);
    }
    (ns, ts)
}

/// E8.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E8-mindegree-growth");

    let mut table = Table::new([
        "workload",
        "n",
        "δ0",
        "target δ",
        "mean rounds",
        "n ln n",
        "rounds/(n ln n)",
    ]);
    let (ns_pd, ts_pd) = degree_growth_sweep(
        Push,
        "push dense 9/8",
        Regime::Dense,
        args,
        &mut report,
        &mut table,
    );
    let (ns_qd, ts_qd) = degree_growth_sweep(
        Pull,
        "pull dense 9/8",
        Regime::Dense,
        args,
        &mut report,
        &mut table,
    );
    let (ns_ps, ts_ps) = degree_growth_sweep(
        Push,
        "push sparse 2x",
        Regime::Sparse,
        args,
        &mut report,
        &mut table,
    );
    let (ns_qs, ts_qs) = degree_growth_sweep(
        Pull,
        "pull sparse 2x",
        Regime::Sparse,
        args,
        &mut report,
        &mut table,
    );
    report.note(
        "paper: δ grows by 9/8 within O(n log n) rounds (Lemmas 5–7/10–11). The bound binds in \
         the dense regime (δ0 = Θ(n)); sparse graphs double far faster — the lemma is a worst \
         case across densities.",
    );
    for (label, ns, ts) in [
        ("push dense", &ns_pd, &ts_pd),
        ("pull dense", &ns_qd, &ts_qd),
        ("push sparse", &ns_ps, &ts_ps),
        ("pull sparse", &ns_qs, &ts_qs),
    ] {
        let f = loglog_exponent(ns, ts);
        report.note(format!(
            "{label}: log-log slope {:.3} (r² = {:.4}).",
            f.slope, f.r2
        ));
    }
    report.table("rounds until the min-degree target", table);

    // Tie-structure trace: the population split the Lemma 5–7 case analysis
    // tracks, sampled on the minimum-degree node of a random tree.
    let n = if args.quick { 128 } else { 512 };
    let mut rng = gossip_core::rng::stream_rng(args.seed, 0x71E, n as u64);
    let g0 = generators::random_tree(n, &mut rng);
    let delta0 = g0.min_degree();
    let mut engine = Engine::new(g0, Push, args.seed);
    let mut tie_table = Table::new([
        "round",
        "min-deg node",
        "deg(u)",
        "|N²(u)|",
        "strongly tied",
        "weakly tied",
    ]);
    let stride = (n as u64 / 2).max(1);
    for snapshot in 0..10u64 {
        let g = engine.graph();
        let u = g
            .nodes()
            .min_by_key(|&u| g.degree(u))
            .expect("nonempty graph");
        let s = tie_stats(g, u, delta0);
        tie_table.push_row([
            (snapshot * stride).to_string(),
            u.to_string(),
            s.n1_size.to_string(),
            s.n2_size.to_string(),
            s.strongly_tied.to_string(),
            s.weakly_tied.to_string(),
        ]);
        if g.is_complete() {
            break;
        }
        for _ in 0..stride {
            engine.step();
        }
    }
    report.table(
        format!("tie structure around the min-degree node (random tree, n = {n}, δ0 = {delta0})"),
        tie_table,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_completes() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 2);
    }
}
