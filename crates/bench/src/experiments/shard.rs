//! E16 — sharded round engine: throughput and memory vs. shard count.
//!
//! After PR 4 the propose phase parallelizes but the apply/merge phase is
//! one sequential sort + dedup over the whole round — the wall-clock
//! ceiling at `n ≥ 2^17`. The sharded engine (`gossip-shard`) partitions
//! the node space into `S` owner-local arena segments and applies each
//! shard's mailbox in parallel. This experiment drives the two-hop walk
//! (the paper's pull process) through `ShardedEngine` at
//! `n ∈ {2^17, 2^20, 2^22}` and records, per `(n, S)`:
//!
//! * **trajectory invariance** — the final edge count and a row checksum
//!   must be identical for every `S` (the determinism contract, measured
//!   rather than assumed; the claims table gates on it),
//! * **cross-shard edge fraction** — how many edges span two owners
//!   (deterministic; ≈ `1 - 1/S` on uniform workloads, the mailbox traffic
//!   the routing phase pays),
//! * **memory** — deterministic length-based bytes of the sharded store,
//! * **wall-clock** — rounds/sec, per-phase (propose/route/apply)
//!   nanoseconds, apply-phase speedup vs. `S = 1`, and process peak RSS.
//!   Wall-clock rows go to this experiment's tables and the report's
//!   machine-dependent appendix, never into the reproducible sections.
//!
//! The `S = 1` engine *is* the unsharded apply (one global merge), so
//! `apply_ns(S=1) / apply_ns(S)` isolates exactly what sharding buys the
//! apply phase — parallelism across segments plus per-segment locality
//! (each shard's rows live in one contiguous slab, and its merge walks
//! them in ascending order instead of proposal order).

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::engine::{propose_round, PROPOSAL_CHUNK};
use gossip_core::{EngineBuilder, GossipGraph, ProposalRule, Pull, Push, RoundStats};
use gossip_graph::{NodeId, ShardedArenaGraph};
use gossip_shard::{BuildSharded, ShardedEngine};
use std::time::Instant;

/// Connected sparse start graph built directly in the sharded layout: a
/// random parent tree plus `extra` uniform random edges — the same stream
/// and workload shape as `exp_scale`'s `sparse_arena`, so edge sets match
/// across experiments at the same `(n, seed)`.
pub(crate) fn sparse_sharded(n: usize, extra: u64, seed: u64, shards: usize) -> ShardedArenaGraph {
    use rand::Rng;
    let mut rng = gossip_core::rng::stream_rng(seed, 0xA1, n as u64);
    let mut g = ShardedArenaGraph::new(n, shards);
    for i in 1..n as u32 {
        g.add_edge(NodeId(i), NodeId(rng.random_range(0..i)));
    }
    let target = n as u64 - 1 + extra;
    while g.m() < target {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        g.add_edge(NodeId(a), NodeId(b));
    }
    g
}

/// Deterministic FNV-1a checksum ([`gossip_analysis::Fnv1a`]) over every
/// row (row boundaries included) — two graphs with equal checksums and
/// equal `m` are (with overwhelming probability) identical, which is how
/// trajectory invariance across `S` is measured without holding two
/// million-node graphs at once.
pub(crate) fn row_checksum(g: &ShardedArenaGraph) -> u64 {
    let mut h = gossip_analysis::Fnv1a::new();
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            h.write_u64((u.0 as u64) << 32 | v.0 as u64);
        }
        h.write(&[0xFF]); // row boundary
    }
    h.finish()
}

/// Fraction of edges whose endpoints live in different shards — the
/// round's cross-shard mailbox traffic, as a graph property.
fn cross_shard_fraction(g: &ShardedArenaGraph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let plan = g.plan();
    let crossing = g
        .edges()
        .filter(|e| plan.owner(e.a) != plan.owner(e.b))
        .count();
    crossing as f64 / g.m() as f64
}

/// Process peak RSS (`VmHWM`) in bytes, if the platform exposes it.
/// Monotone and process-wide: inside `run_all` earlier experiments raise
/// the floor, so the standalone `exp_shard` run is the clean source.
pub(crate) fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

pub(crate) fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

struct RunResult {
    stats: Vec<RoundStats>,
    final_m: u64,
    checksum: u64,
    cross_fraction: f64,
    mem_bytes: usize,
    /// (propose, route, apply) ns per measured round.
    phase_ns: (f64, f64, f64),
    wall_ns_per_round: f64,
}

/// One fixed-horizon pull run at `(n, shards)`: one warm-up round, then
/// `horizon` timed rounds. Phase timing and per-round stats both ride the
/// unified listener seam ([`gossip_core::RoundListener`]) — a
/// [`PhaseAccumulator`] absorbs the engine's `PhaseEvent`s and a small
/// stats collector captures each `RoundEvent`, replacing the engine's
/// bespoke cumulative-timer accessors this experiment used to poke.
fn drive<R: ProposalRule<ShardedArenaGraph>>(
    mut e: ShardedEngine<R>,
    horizon: u64,
) -> (ShardedArenaGraph, Vec<RoundStats>, (f64, f64, f64), f64) {
    use gossip_core::listener::{PhaseAccumulator, RoundControl, RoundEvent, RoundListener};
    use gossip_core::run_engine_listened;

    struct CollectStats<'a>(&'a mut Vec<RoundStats>);
    impl RoundListener<ShardedArenaGraph> for CollectStats<'_> {
        fn on_round(&mut self, ev: &RoundEvent<'_, ShardedArenaGraph>) -> RoundControl {
            self.0.push(ev.stats);
            RoundControl::Continue
        }
    }

    let mut stats = Vec::new();
    stats.push(e.step()); // warm-up: buffers sized, pool spun up
    let mut phases = PhaseAccumulator::new();
    let t = Instant::now();
    run_engine_listened(
        &mut e,
        &mut gossip_core::Chain(CollectStats(&mut stats), &mut phases),
        horizon,
    );
    let wall = t.elapsed().as_nanos() as f64 / horizon as f64;
    let p = phases.totals();
    let per = |x: u64| x as f64 / horizon as f64;
    (
        e.into_graph(),
        stats,
        (per(p.propose), per(p.route), per(p.apply)),
        wall,
    )
}

/// The PR 4 baseline, phase-timed: the unsharded arena engine's round is
/// `propose_round` (shared code) + `ArenaGraph::apply_proposals` (one
/// global sort + dedup + proposal-order insert). Reconstructed from the
/// same public pieces `Engine::step` uses, with the same seed and round
/// numbering as the sharded runs, so the workload — and the final graph —
/// is identical. Returns `(propose_ns, apply_ns, wall_ns)` per round and
/// the final edge count.
fn arena_baseline(n: usize, horizon: u64, seed: u64) -> (f64, f64, f64, u64) {
    let mut g = crate::experiments::scale::sparse_arena(n, 2 * n as u64, seed);
    let rule_seed = seed ^ 0x5A4D;
    let mut bufs = vec![Vec::new(); n.div_ceil(PROPOSAL_CHUNK)];
    let run_round = |round: u64,
                     g: &mut gossip_graph::ArenaGraph,
                     bufs: &mut Vec<Vec<gossip_core::TaggedProposal>>|
     -> (u64, u64) {
        let t = Instant::now();
        // Parallel propose, like the real Engine would at these sizes
        // (every E16 size is far above the Auto threshold) — otherwise the
        // baseline's propose/wall columns overstate PR 4's cost on
        // multi-core hosts.
        propose_round(&*g, &Pull, rule_seed, round, bufs, true);
        let propose = t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        g.apply_proposals(bufs, &mut |_, _, _| {});
        (propose, t.elapsed().as_nanos() as u64)
    };
    run_round(0, &mut g, &mut bufs); // warm-up, mirroring the sharded runs
    let (mut propose, mut apply) = (0u64, 0u64);
    let t = Instant::now();
    for round in 1..=horizon {
        let (p, a) = run_round(round, &mut g, &mut bufs);
        propose += p;
        apply += a;
    }
    let wall = t.elapsed().as_nanos() as f64 / horizon as f64;
    (
        propose as f64 / horizon as f64,
        apply as f64 / horizon as f64,
        wall,
        g.m(),
    )
}

fn one_run(n: usize, shards: usize, horizon: u64, seed: u64, pull: bool) -> RunResult {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let (final_g, stats, phase_ns, wall_ns_per_round) = if pull {
        drive(
            EngineBuilder::new(g, Pull, seed ^ 0x5A4D).build_sharded(),
            horizon,
        )
    } else {
        drive(
            EngineBuilder::new(g, Push, seed ^ 0x5A4D).build_sharded(),
            horizon,
        )
    };
    RunResult {
        stats,
        final_m: final_g.m(),
        checksum: row_checksum(&final_g),
        cross_fraction: cross_shard_fraction(&final_g),
        mem_bytes: final_g.memory_bytes(),
        phase_ns,
        wall_ns_per_round,
    }
}

/// E16: sharded engine scaling sweep.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E16-shard-scaling");
    // Same sizes quick and full (the 2^22 row IS the acceptance run);
    // quick trims horizons and the shard grid instead.
    let sizes: [usize; 3] = [1 << 17, 1 << 20, 1 << 22];
    let horizon_of = |n: usize| -> u64 {
        match (n, args.quick) {
            (n, true) if n >= 1 << 22 => 3,
            (_, true) => 4,
            (n, false) if n >= 1 << 22 => 6,
            (n, false) if n >= 1 << 20 => 8,
            _ => 12,
        }
    };
    let shard_grid = |n: usize| -> Vec<usize> {
        if args.quick && n != 1 << 20 {
            vec![1, 8] // the speedup point keeps its middle rung
        } else {
            vec![1, 2, 8]
        }
    };

    let mut throughput = Table::new([
        "process",
        "n",
        "S",
        "rounds",
        "edges added",
        "ns/node/round",
        "propose ms/round",
        "route ms/round",
        "apply ms/round",
        "peak RSS MiB",
    ]);
    let mut speedup_t = Table::new([
        "n",
        "S",
        "apply ms/round",
        "vs arena engine (PR4)",
        "vs S=1",
    ]);

    for &n in &sizes {
        let horizon = horizon_of(n);

        // The PR 4 baseline: unsharded arena engine, phase-timed. Its
        // apply phase is the sequential sort this experiment exists to
        // break up.
        let (pr4_propose_ns, pr4_apply_ns, pr4_wall_ns, pr4_m) =
            arena_baseline(n, horizon, args.seed);
        throughput.push_row([
            "pull (arena PR4)".into(),
            n.to_string(),
            "-".into(),
            horizon.to_string(),
            "-".into(),
            fmt_f64(pr4_wall_ns / n as f64),
            format!("{:.2}", pr4_propose_ns / 1e6),
            "-".into(),
            format!("{:.2}", pr4_apply_ns / 1e6),
            peak_rss_bytes().map_or("-".into(), fmt_mib),
        ]);

        let mut base: Option<(u64, u64, Vec<RoundStats>)> = None;
        let mut apply_base_ns = 0.0f64;
        for s in shard_grid(n) {
            let r = one_run(n, s, horizon, args.seed, true);
            let added: u64 = r.stats.iter().map(|st| st.added).sum();

            // Trajectory invariance vs the S=1 run of the same (n, seed):
            // identical per-round stats, final m, and row checksum.
            let invariant = match &base {
                None => {
                    base = Some((r.final_m, r.checksum, r.stats.clone()));
                    apply_base_ns = r.phase_ns.2;
                    true
                }
                Some((m0, c0, s0)) => *m0 == r.final_m && *c0 == r.checksum && *s0 == r.stats,
            };
            assert!(
                invariant,
                "sharded trajectory diverged from S=1 at n={n}, S={s}"
            );

            // Reproducible rows.
            report.measure_scalar(
                "trajectory_invariant",
                "pull",
                format!("shards-{s}"),
                n as u64,
                invariant as u64 as f64,
            );
            report.measure_scalar(
                "edges_added",
                "pull",
                format!("shards-{s}"),
                n as u64,
                added as f64,
            );
            report.measure_scalar(
                "cross_shard_edge_fraction",
                "pull",
                format!("shards-{s}"),
                n as u64,
                r.cross_fraction,
            );
            if s == 8 {
                report.measure_scalar(
                    "mem_bytes",
                    "sharded-arena",
                    format!("shards-{s}"),
                    n as u64,
                    r.mem_bytes as f64,
                );
            }

            // Machine-dependent rows (report appendix + tables here).
            let ns_node_round = r.wall_ns_per_round / n as f64;
            report.measure_wallclock_scalar(
                "rounds_per_sec",
                "pull",
                format!("shards-{s}"),
                n as u64,
                1e9 / r.wall_ns_per_round,
            );
            report.measure_wallclock_scalar(
                "apply_ms_per_round",
                "pull",
                format!("shards-{s}"),
                n as u64,
                r.phase_ns.2 / 1e6,
            );
            // The same engine applied the same proposal stream: the PR 4
            // baseline must land on the same graph.
            assert_eq!(
                pr4_m, r.final_m,
                "arena baseline diverged from sharded runs at n={n}"
            );
            let apply_speedup = if s == 1 {
                1.0
            } else {
                apply_base_ns / r.phase_ns.2
            };
            let vs_pr4 = pr4_apply_ns / r.phase_ns.2;
            report.measure_wallclock_scalar(
                "apply_speedup_vs_arena",
                "pull",
                format!("shards-{s}"),
                n as u64,
                vs_pr4,
            );
            if s != 1 {
                report.measure_wallclock_scalar(
                    "apply_speedup_vs_s1",
                    "pull",
                    format!("shards-{s}"),
                    n as u64,
                    apply_speedup,
                );
            }

            throughput.push_row([
                "pull".into(),
                n.to_string(),
                s.to_string(),
                horizon.to_string(),
                added.to_string(),
                fmt_f64(ns_node_round),
                format!("{:.2}", r.phase_ns.0 / 1e6),
                format!("{:.2}", r.phase_ns.1 / 1e6),
                format!("{:.2}", r.phase_ns.2 / 1e6),
                peak_rss_bytes().map_or("-".into(), fmt_mib),
            ]);
            speedup_t.push_row([
                n.to_string(),
                s.to_string(),
                format!("{:.2}", r.phase_ns.2 / 1e6),
                format!("{:.2}x", vs_pr4),
                format!("{:.2}x", apply_speedup),
            ]);
        }

        // Breadth: the push process at the smallest size (full runs only —
        // the pull grid is the acceptance workload).
        if !args.quick && n == 1 << 17 {
            let r = one_run(n, 8, horizon, args.seed, false);
            let added: u64 = r.stats.iter().map(|st| st.added).sum();
            report.measure_scalar("edges_added", "push", "shards-8", n as u64, added as f64);
            throughput.push_row([
                "push".into(),
                n.to_string(),
                "8".into(),
                horizon.to_string(),
                added.to_string(),
                fmt_f64(r.wall_ns_per_round / n as f64),
                format!("{:.2}", r.phase_ns.0 / 1e6),
                format!("{:.2}", r.phase_ns.1 / 1e6),
                format!("{:.2}", r.phase_ns.2 / 1e6),
                peak_rss_bytes().map_or("-".into(), fmt_mib),
            ]);
        }
    }

    report.note(format!(
        "two-hop walk completes fixed-horizon runs up to n = 2^22 on the sharded \
         engine; trajectories (per-round stats, final edge set) are bit-identical \
         across S ∈ {{1, 2, 8}} at every size — the determinism contract, measured. \
         Horizons: {}.",
        if args.quick {
            "quick (3-4 rounds)"
        } else {
            "full (6-12 rounds)"
        }
    ));
    report.note(
        "wall-clock columns (phase times, speedups, RSS) are machine-dependent and \
         stay out of the reproducible sections; RESULTS.md carries them in its \
         appendix only. Peak RSS is process-wide and monotone — inside run_all the \
         floor is set by earlier experiments, so the standalone exp_shard run is \
         the clean memory reading.",
    );
    report.table("fixed-horizon throughput vs shard count (pull)", throughput);
    report.table("apply-phase speedup vs S=1 (pull)", speedup_t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_sharded_matches_scale_generator() {
        // Same stream as exp_scale::sparse_arena -> same edge set.
        let n = 2048;
        let a = sparse_sharded(n, 2 * n as u64, 7, 4);
        let b = crate::experiments::scale::sparse_arena(n, 2 * n as u64, 7);
        assert_eq!(a.m(), b.m());
        for u in b.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
        a.validate().unwrap();
    }

    #[test]
    fn checksum_distinguishes_graphs_and_is_stable() {
        let g1 = sparse_sharded(1500, 1000, 1, 2);
        let g2 = sparse_sharded(1500, 1000, 1, 8); // same edges, different S
        let g3 = sparse_sharded(1500, 1000, 2, 2); // different edges
        assert_eq!(row_checksum(&g1), row_checksum(&g2));
        assert_ne!(row_checksum(&g1), row_checksum(&g3));
    }

    #[test]
    fn cross_shard_fraction_bounds() {
        let g = sparse_sharded(4096, 8192, 3, 4);
        let f = cross_shard_fraction(&g);
        // Uniform edges across 4 equal shards cross ~3/4 of the time.
        assert!((0.5..1.0).contains(&f), "fraction {f}");
        let g1 = sparse_sharded(4096, 8192, 3, 1);
        assert_eq!(cross_shard_fraction(&g1), 0.0);
    }

    #[test]
    fn one_run_is_invariant_in_shard_count() {
        let a = one_run(3000, 1, 4, 5, true);
        let b = one_run(3000, 8, 4, 5, true);
        assert_eq!(a.final_m, b.final_m);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.stats, b.stats);
    }
}
