//! E7 — Figure 1(c): non-monotonicity of the processes. Exact expected
//! convergence times from the absorbing-chain solver, a Monte Carlo
//! cross-check, and the exhaustive 4-node counterexample search.

use crate::harness::{Args, Report};
use gossip_analysis::{
    exact_expected_rounds, find_nonmonotone_pairs, fmt_f64, ProcessKind, Summary, Table,
};
use gossip_core::{convergence_rounds, ComponentwiseComplete, Pull, Push, TrialConfig};
use gossip_graph::{generators, UndirectedGraph};

fn mc(g: &UndirectedGraph, kind: ProcessKind, trials: usize, seed: u64) -> Vec<u64> {
    let cfg = TrialConfig {
        trials,
        base_seed: seed,
        max_rounds: 100_000_000,
        parallel: true,
    };
    match kind {
        ProcessKind::Push => convergence_rounds(g, Push, ComponentwiseComplete::for_graph, &cfg),
        ProcessKind::Pull => convergence_rounds(g, Pull, ComponentwiseComplete::for_graph, &cfg),
    }
}

/// E7.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E7-nonmonotonicity");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        2_000
    } else {
        20_000
    };

    // Part 1: the Figure 1(c) pair, exact + Monte Carlo agreement.
    let (g, h) = generators::nonmonotone_pair();
    let mut t = Table::new([
        "graph",
        "edges",
        "process",
        "exact E[T]",
        "MC mean",
        "MC ±95%",
    ]);
    for (name, family, gr) in [("G = K_1,4", "K_1,4", &g), ("H = K_1,3 ⊂ G", "K_1,3", &h)] {
        for kind in [ProcessKind::Push, ProcessKind::Pull] {
            let algorithm = format!("{kind:?}").to_lowercase();
            let exact = exact_expected_rounds(gr, kind);
            let rounds = mc(gr, kind, trials, args.seed);
            report.measure_scalar("exact_rounds", &algorithm, family, gr.n() as u64, exact);
            report.measure_rounds(&algorithm, family, gr.n() as u64, &rounds);
            let s = Summary::of_rounds(&rounds);
            t.push_row([
                name.to_string(),
                gr.m().to_string(),
                format!("{kind:?}"),
                format!("{exact:.4}"),
                fmt_f64(s.mean),
                fmt_f64(s.ci95),
            ]);
        }
    }
    report.table("Figure 1(c) pair: exact vs simulated", t);

    // Part 2: the same-vertex-set witnesses on 4 nodes, exhaustively.
    let mut st = Table::new(["G edges", "E[T(G)]", "H edges (H ⊂ G)", "E[T(H)]", "gap"]);
    let pairs = find_nonmonotone_pairs(4, ProcessKind::Push, 0.05);
    report.measure_scalar(
        "counterexample_pairs",
        "push",
        "4-node-exhaustive",
        4,
        pairs.len() as f64,
    );
    for p in pairs.iter().take(8) {
        st.push_row([
            format!("{:?}", p.g_edges),
            format!("{:.4}", p.g_expected),
            format!("{:?}", p.h_edges),
            format!("{:.4}", p.h_expected),
            format!("{:.4}", p.gap()),
        ]);
    }
    report.note(format!(
        "paper (Fig 1c): a 4-edge graph converging slower than its 3-edge subgraph; \
         exact values: E[T_push(K_1,4)] = {:.4} > E[T_push(K_1,3)] = {:.4}.",
        exact_expected_rounds(&g, ProcessKind::Push),
        exact_expected_rounds(&h, ProcessKind::Push),
    ));
    report.note(format!(
        "exhaustive search over all connected 4-node graphs found {} same-vertex-set \
         counterexample pairs for push (diamond vs 4-cycle is canonical); pull has none on 4 nodes.",
        pairs.len()
    ));
    report.table("same-vertex-set counterexamples (push, 4 nodes)", st);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_inequality() {
        let args = Args {
            quick: true,
            trials: 500,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 2);
        assert!(!r.tables[1].1.is_empty());
    }
}
