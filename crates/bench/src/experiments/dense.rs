//! E2 / E4 — Theorems 9 and 13: starting `k` edges short of complete, both
//! processes need `Ω(n log k)` rounds (w.p. `1 - O(e^{-k^{1/4}})`). We fix
//! `n`, sweep `k`, and check rounds track `n ln k` from below.

use crate::harness::{mean, Args, Report};
use gossip_analysis::{fmt_f64, ols, Table};
use gossip_core::{
    convergence_rounds, ComponentwiseComplete, ProposalRule, Pull, Push, TrialConfig,
};
use gossip_graph::{generators, UndirectedGraph};

fn sweep<R: ProposalRule<UndirectedGraph> + Clone>(
    rule: R,
    n: usize,
    ks: &[u64],
    args: &Args,
    report: &mut Report,
    table: &mut Table,
    label: &str,
) -> (Vec<f64>, Vec<f64>) {
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };
    let mut lnks = Vec::new();
    let mut means = Vec::new();
    for &k in ks {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0xDE, k);
        let g = generators::complete_minus_k(n, k, &mut rng);
        let cfg = TrialConfig {
            trials,
            base_seed: args.seed ^ k,
            max_rounds: 100_000_000,
            parallel: true,
        };
        let rounds = convergence_rounds(&g, rule.clone(), ComponentwiseComplete::for_graph, &cfg);
        // The swept size here is k (missing edges), not n.
        report.measure_rounds(label, format!("complete-minus-k-n{n}"), k, &rounds);
        let m = mean(&rounds);
        let nlnk = n as f64 * (k as f64).ln().max(1.0);
        table.push_row([
            label.to_string(),
            k.to_string(),
            fmt_f64(m),
            fmt_f64(nlnk),
            fmt_f64(m / nlnk),
        ]);
        if k >= 2 {
            lnks.push((k as f64).ln());
            means.push(m);
        }
    }
    (lnks, means)
}

/// E2 + E4 in one report (the sweeps share workload generation).
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E2-E4-dense-lowerbound");
    let n = if args.quick { 64 } else { 128 };
    let max_k = (n * (n - 1) / 2 - n) as u64; // keep the graph well connected
    let mut ks: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];
    ks.retain(|&k| k <= max_k);
    if !args.quick {
        ks.extend([512, 1024, 2048].iter().filter(|&&k| k <= max_k));
    }

    let mut table = Table::new([
        "process",
        "k missing",
        "mean rounds",
        "n ln k",
        "rounds / n ln k",
    ]);
    let (lx_push, ly_push) = sweep(Push, n, &ks, args, &mut report, &mut table, "push");
    let (lx_pull, ly_pull) = sweep(Pull, n, &ks, args, &mut report, &mut table, "pull");

    // Rounds should grow linearly in ln k at fixed n (the Ω(n log k) shape).
    let push_fit = ols(&lx_push, &ly_push);
    let pull_fit = ols(&lx_pull, &ly_pull);
    report.note(format!(
        "paper: Ω(n log k) lower bound (Theorems 9/13); n fixed at {n}."
    ));
    report.note(format!(
        "rounds vs ln k is near-linear: push slope {:.1} rounds per ln k (r² = {:.4}), \
         pull slope {:.1} (r² = {:.4}); slope/n = {:.3} and {:.3}.",
        push_fit.slope,
        push_fit.r2,
        pull_fit.slope,
        pull_fit.r2,
        push_fit.slope / n as f64,
        pull_fit.slope / n as f64,
    ));
    report.table("rounds from complete-minus-k", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_both_processes() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 1);
        assert!(r.tables[0].1.len() >= 16);
    }
}
