//! E12 — the wire-level validation of §1's message-size claim, plus the
//! loss/churn scenarios the paper motivates: push/pull keep every message at
//! 5 bytes on the wire while Name Dropper's payload grows with what it
//! knows; discovery keeps working through message loss and churn.

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_graph::generators;
use gossip_net::{wire_protocol, ChurnModel, NetConfig, Network, Protocol, PushProtocol};

fn wire_row(
    report: &mut Report,
    table: &mut Table,
    n: usize,
    proto: &mut dyn Protocol,
    name: &str,
    g: &gossip_graph::UndirectedGraph,
    seed: u64,
) {
    let mut net = Network::from_graph(
        g,
        n,
        NetConfig {
            drop_prob: 0.0,
            seed,
        },
    );
    let (rounds, done, t) = net.run_until_coverage(proto, 1.0, 50_000_000);
    assert!(done, "{name} failed to reach full coverage at n={n}");
    report.measure_scalar("rounds", name, "wire-clean", n as u64, rounds as f64);
    report.measure_scalar(
        "max_message_bytes",
        name,
        "wire-clean",
        n as u64,
        t.max_message_bytes as f64,
    );
    table.push_row([
        n.to_string(),
        name.to_string(),
        rounds.to_string(),
        t.max_message_bytes.to_string(),
        fmt_f64(t.bytes as f64 / 1e6),
        fmt_f64(t.bytes as f64 / (rounds.max(1) as f64 * n as f64)),
    ]);
}

/// E12.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E12-wire-validation");
    let sizes: Vec<usize> = if args.quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256]
    };

    // Part 1: byte-accurate bandwidth at zero loss.
    let mut wire = Table::new([
        "n",
        "protocol",
        "rounds to full coverage",
        "max message (bytes)",
        "total (MB)",
        "bytes/node/round",
    ]);
    for &n in &sizes {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0xE7, n as u64);
        let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);
        for name in ["push", "pull", "name-dropper"] {
            let mut proto = wire_protocol(name).unwrap();
            wire_row(
                &mut report,
                &mut wire,
                n,
                proto.as_mut(),
                name,
                &g,
                args.seed,
            );
        }
    }
    report.note(
        "push/pull max message is 5 bytes at every n (one address + tag): the O(log n)-bit \
         claim, on the wire. Name Dropper's max message grows ≈ 4n bytes.",
    );
    report.table("clean network: bandwidth profile", wire);

    // Part 2: message loss sweep.
    let n = if args.quick { 48 } else { 128 };
    let mut rng = gossip_core::rng::stream_rng(args.seed, 0xE8, n as u64);
    let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);
    let mut loss = Table::new(["drop prob", "push rounds", "pull rounds"]);
    for &p in &[0.0, 0.1, 0.3, 0.5] {
        let mut row = vec![format!("{p}")];
        for proto_name in ["push", "pull"] {
            let mut net = Network::from_graph(
                &g,
                n,
                NetConfig {
                    drop_prob: p,
                    seed: args.seed,
                },
            );
            let mut proto = wire_protocol(proto_name).unwrap();
            let (rounds, done, _) = net.run_until_coverage(proto.as_mut(), 1.0, 50_000_000);
            assert!(done, "{proto_name} under loss {p} did not converge");
            report.measure_scalar(
                "rounds",
                proto_name,
                format!("loss-p{p}"),
                n as u64,
                rounds as f64,
            );
            row.push(rounds.to_string());
        }
        loss.push_row(row);
    }
    report.table(format!("message loss sweep (n = {n})"), loss);

    // Part 3: churn timeline — plain push vs push + failure detection.
    // Plain push never evicts, so under sustained churn its contact lists
    // silt up with the dead and coverage decays; the heartbeat extension
    // (§6's "failures / joining and leaving" future work) keeps both
    // metrics healthy on the same membership schedule.
    let horizon: u64 = if args.quick { 600 } else { 3000 };
    let capacity = 16 * n;
    let churn = ChurnModel {
        join_prob: 0.04,
        leave_prob: 0.04,
        bootstrap_contacts: 3,
        seed: args.seed ^ 0xC1,
    };
    let run_timeline = |proto: &mut dyn Protocol| {
        let mut net = Network::from_graph(
            &g,
            capacity,
            NetConfig {
                drop_prob: 0.1,
                seed: args.seed,
            },
        );
        let stride = horizon / 6;
        let mut rows = Vec::new();
        for round in 0..horizon {
            churn.apply(&mut net, round);
            net.step(proto);
            if round % stride == stride - 1 {
                rows.push((
                    round + 1,
                    net.alive_count(),
                    net.coverage(),
                    net.staleness(),
                ));
            }
        }
        rows
    };
    let plain = run_timeline(&mut PushProtocol);
    let mut hb = gossip_net::HeartbeatPushProtocol::new(capacity, 1, 4);
    let healed = run_timeline(&mut hb);
    let mut churn_table = Table::new([
        "round",
        "alive",
        "coverage (plain push)",
        "staleness (plain)",
        "coverage (heartbeat)",
        "staleness (heartbeat)",
    ]);
    for (p, h) in plain.iter().zip(&healed) {
        churn_table.push_row([
            p.0.to_string(),
            p.1.to_string(),
            fmt_f64(p.2),
            fmt_f64(p.3),
            fmt_f64(h.2),
            fmt_f64(h.3),
        ]);
    }
    let (pl, hl) = (plain.last().unwrap(), healed.last().unwrap());
    report.measure_scalar("final_coverage", "plain-push", "churn", n as u64, pl.2);
    report.measure_scalar("final_coverage", "heartbeat-push", "churn", n as u64, hl.2);
    report.note(format!(
        "churn (4% join / 4% leave per round, 10% loss, round {horizon}): plain push ends at \
         coverage {:.2} / staleness {:.2} — dead contacts accumulate forever. With heartbeat \
         eviction the same schedule ends at coverage {:.2} / staleness {:.2}: failure detection \
         is what turns \"naturally robust\" into \"self-healing\".",
        pl.2, pl.3, hl.2, hl.3
    ));
    report.table("churn timeline: plain push vs heartbeat push", churn_table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_full_shape() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].1.len(), 6);
    }
}
