//! E19 — cross-process shard transport: the sharded round over a
//! serialized seam.
//!
//! PR 5's `ShardedEngine` proved the round decomposes into owner-local
//! segments exchanging `(source, owner)` mailboxes — but the mailboxes
//! were `Vec`s handed across a function call. This experiment drives the
//! same two-hop walk through [`gossip_shard::transport`]: every shard is
//! its own **OS process** holding a full replica, mailboxes travel as
//! length-prefixed frames over Unix domain sockets, and a supervisor
//! routes frames and collects round barriers. Per `(n, S, mode)` it
//! records:
//!
//! * **trajectory invariance** — per-round stats, final edge count, and
//!   the row checksum must equal the in-process `ShardedEngine` run of
//!   the same `(n, seed)` (which PR 5 pinned to the sequential engine),
//!   measured for the deterministic *and* the lossy mode,
//! * **wire volume** — frames and bytes actually written per round (a
//!   deterministic function of the trajectory in canonical mode), plus
//!   the lossy mode's injected drop/duplicate counts and the nak/
//!   retransmit traffic that repairs them,
//! * **memory** — per-shard worker peak RSS (`VmHWM`, read by each worker
//!   from its own `/proc`) and the supervisor's process-wide peak,
//! * **wall-clock** — rounds/sec across the serialized seam. Wall-clock
//!   and RSS rows go to the report's machine-dependent appendix, never
//!   into the reproducible sections.
//!
//! The full run's `n = 10^7` row is the acceptance point: a ten-million
//! node round spread across 4 shard processes, completing a fixed horizon
//! with per-shard RSS and wire bytes on record. The oracle run and the
//! transport run execute **sequentially** (the oracle graph is dropped
//! before workers spawn), so peak memory is the transport's own
//! `S + 1` replicas, not oracle + transport.

use crate::experiments::shard::{fmt_mib, peak_rss_bytes, row_checksum, sparse_sharded};
use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{Pull, RoundStats, RuleId};
use gossip_shard::transport::{LossyConfig, TransportBuilder, TransportMode};
use gossip_shard::{ShardedEngine, TransportStats};
use std::time::Instant;

/// The in-process oracle: same `(n, seed, horizon)` on `ShardedEngine`,
/// reduced to what invariance compares — per-round stats, final `m`, row
/// checksum. The graph itself is dropped here, before any worker spawns.
fn oracle(n: usize, shards: usize, horizon: u64, seed: u64) -> (Vec<RoundStats>, u64, u64) {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let mut e = ShardedEngine::new(g, Pull, seed ^ 0x5A4D);
    let stats: Vec<RoundStats> = (0..horizon).map(|_| e.step()).collect();
    let g = e.into_graph();
    (stats, g.m(), row_checksum(&g))
}

struct TransportRun {
    stats: Vec<RoundStats>,
    final_m: u64,
    checksum: u64,
    wire: TransportStats,
    wall_ns_per_round: f64,
}

/// One fixed-horizon run across the serialized seam. `lossy = None` is
/// the deterministic mode (canonical frame order, strict assembler);
/// `Some(cfg)` injects seeded drop/duplicate/reorder on every worker-bound
/// mailbox stream and repairs through nak/retransmit.
fn transport_run(
    n: usize,
    shards: usize,
    horizon: u64,
    seed: u64,
    mode: TransportMode,
    lossy: Option<LossyConfig>,
) -> TransportRun {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let mut b = TransportBuilder::new(g, RuleId::Pull, seed ^ 0x5A4D).with_mode(mode);
    if let Some(cfg) = lossy {
        b = b.with_lossy(cfg);
    }
    let mut e = b.spawn().expect("spawn shard workers");
    let t = Instant::now();
    let stats: Vec<RoundStats> = (0..horizon).map(|_| e.step()).collect();
    let wall_ns_per_round = t.elapsed().as_nanos() as f64 / horizon as f64;
    let final_m = e.graph().m();
    let checksum = row_checksum(e.graph());
    let wire = e.stats().clone();
    e.shutdown().expect("clean worker exit");
    TransportRun {
        stats,
        final_m,
        checksum,
        wire,
        wall_ns_per_round,
    }
}

/// E19: framed mailbox exchange across shard processes.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E19-transport");

    // (n, S grid, horizon). Quick keeps both modes but shrinks n; the
    // full run's 10^7 row is the acceptance workload. Horizons are short
    // everywhere: each worker holds a full replica, so the row exists to
    // prove the seam at scale, not to re-measure convergence (E1-E16).
    let sweeps: Vec<(usize, Vec<usize>, u64)> = if args.quick {
        vec![(1 << 14, vec![2, 4], 4)]
    } else {
        vec![(1 << 20, vec![2, 4], 5), (10_000_000, vec![4], 4)]
    };
    // The lossy leg re-runs the deterministic workload under injected
    // faults at every size except the 10^7 acceptance row (one more
    // full-replica fleet there buys no new information — the property
    // and determinism suites cover lossy at dozens of (n, S) points).
    let lossy_at = |n: usize| n < 10_000_000;
    let lossy_cfg = |seed: u64| LossyConfig {
        seed: seed ^ 0x10_55,
        drop_per_mille: 60,
        dup_per_mille: 40,
        reorder: true,
    };

    let mut table = Table::new([
        "mode",
        "n",
        "S",
        "rounds",
        "edges added",
        "wire MiB",
        "frames",
        "dropped",
        "naks",
        "retransmits",
        "rounds/sec",
        "worker RSS MiB (max)",
        "supervisor RSS MiB",
    ]);

    for (n, shard_grid, horizon) in sweeps {
        for shards in shard_grid {
            let (oracle_stats, oracle_m, oracle_sum) = oracle(n, shards, horizon, args.seed);

            let mut modes: Vec<(&str, Option<LossyConfig>)> = vec![("uds", None)];
            if lossy_at(n) {
                modes.push(("lossy", Some(lossy_cfg(args.seed))));
            }
            for (label, lossy) in modes {
                let r = transport_run(n, shards, horizon, args.seed, TransportMode::Process, lossy);

                // The headline contract, measured per run: the serialized
                // seam replays the in-process engine bit-for-bit — in
                // lossy mode through nak/retransmit repair.
                let invariant =
                    r.stats == oracle_stats && r.final_m == oracle_m && r.checksum == oracle_sum;
                assert!(
                    invariant,
                    "{label} transport diverged from in-process engine at n={n}, S={shards}"
                );
                if label == "lossy" {
                    assert!(
                        r.wire.wire.frames_dropped > 0,
                        "lossy leg at n={n}, S={shards} never dropped a frame — \
                         injection rates too low to exercise recovery"
                    );
                    assert!(r.wire.wire.retransmitted_frames > 0);
                }

                let added: u64 = r.stats.iter().map(|st| st.added).sum();
                let fam = format!("shards-{shards}");
                report.measure_scalar(
                    "trajectory_invariant_vs_inproc",
                    label,
                    fam.clone(),
                    n as u64,
                    invariant as u64 as f64,
                );
                report.measure_scalar("edges_added", label, fam.clone(), n as u64, added as f64);
                // Wire volume is a pure function of (trajectory, fault
                // seed), so it belongs with the reproducible rows.
                report.measure_scalar(
                    "wire_bytes_sent",
                    label,
                    fam.clone(),
                    n as u64,
                    r.wire.wire.bytes_sent as f64,
                );
                if label == "lossy" {
                    report.measure_scalar(
                        "retransmitted_frames",
                        label,
                        fam.clone(),
                        n as u64,
                        r.wire.wire.retransmitted_frames as f64,
                    );
                }

                // Machine-dependent rows: throughput and memory.
                let worker_rss = r.wire.worker_peak_rss_bytes.iter().copied().max();
                report.measure_wallclock_scalar(
                    "rounds_per_sec",
                    label,
                    fam.clone(),
                    n as u64,
                    1e9 / r.wall_ns_per_round,
                );
                if let Some(rss) = worker_rss {
                    report.measure_wallclock_scalar(
                        "worker_peak_rss_bytes",
                        label,
                        fam.clone(),
                        n as u64,
                        rss as f64,
                    );
                }

                table.push_row([
                    label.into(),
                    n.to_string(),
                    shards.to_string(),
                    horizon.to_string(),
                    added.to_string(),
                    fmt_mib(r.wire.wire.bytes_sent),
                    r.wire.wire.frames_sent.to_string(),
                    r.wire.wire.frames_dropped.to_string(),
                    r.wire.wire.naks.to_string(),
                    r.wire.wire.retransmitted_frames.to_string(),
                    fmt_f64(1e9 / r.wall_ns_per_round),
                    worker_rss.map_or("-".into(), fmt_mib),
                    peak_rss_bytes().map_or("-".into(), fmt_mib),
                ]);
            }
        }
    }

    report.note(format!(
        "every transport run — one OS process per shard, mailboxes as \
         length-prefixed frames over Unix domain sockets — replayed the \
         in-process ShardedEngine bit-for-bit (per-round stats, final m, row \
         checksum), deterministic and lossy modes alike; lossy legs repaired \
         seeded drop/duplicate/reorder through nak-driven retransmit. \
         Horizons: {}.",
        if args.quick {
            "quick (4 rounds at n = 2^14)"
        } else {
            "full (5 rounds at n = 2^20; 4 rounds at n = 10^7 across 4 processes)"
        }
    ));
    report.note(
        "wire bytes and retransmit counts are pure functions of (trajectory, \
         fault seed) and sit with the reproducible rows; rounds/sec, worker \
         peak RSS (per-shard VmHWM, reported by each worker over the wire), \
         and supervisor RSS are machine-dependent and stay in the wall-clock \
         appendix. Worker RSS is the per-shard memory story: each worker \
         holds a full replica, so the figure tracks graph size, not 1/S of it.",
    );
    report.table("framed UDS transport vs in-process engine (pull)", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process mode would re-exec the libtest harness; everything the unit
    // level needs is provable with thread-hosted workers on the same
    // framed socketpair path.
    #[test]
    fn transport_run_matches_oracle_in_thread_mode() {
        let (stats, m, sum) = oracle(1500, 3, 3, 9);
        for lossy in [None, Some(lossy_cfg_for_test())] {
            let r = transport_run(1500, 3, 3, 9, TransportMode::Thread, lossy);
            assert_eq!(r.stats, stats);
            assert_eq!(r.final_m, m);
            assert_eq!(r.checksum, sum);
            assert!(r.wire.wire.bytes_sent > 0);
        }
    }

    fn lossy_cfg_for_test() -> LossyConfig {
        LossyConfig {
            seed: 5,
            drop_per_mille: 150,
            dup_per_mille: 100,
            reorder: true,
        }
    }
}
