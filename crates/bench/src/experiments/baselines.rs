//! E10 — §1's comparison table: the gossip processes against Name Dropper,
//! Random Pointer Jump, the bandwidth-throttled Name Dropper, and flooding.
//! The paper's pitch: polylog-round algorithms pay Θ(n log n)-bit messages;
//! the gossip processes pay rounds to keep every message at O(log n) bits.

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_baselines::{
    id_bits, DiscoveryAlgorithm, Flooding, Knowledge, NameDropper, PointerJump,
    ThrottledNameDropper,
};
use gossip_core::{convergence_rounds, ComponentwiseComplete, Pull, Push, TrialConfig};
use gossip_graph::generators;

struct Row {
    algorithm: String,
    rounds: f64,
    max_msg_bits: u64,
    total_bits: f64,
}

fn process_row(name: &str, rule_rounds: f64, ids_per_node_round: u64, n: usize) -> Row {
    // Accounting convention for the graph-model processes: push sends two
    // one-id introductions per node-round; pull sends a request + one-id
    // reply + announce (identity carried in headers) — two ids transferred.
    let bits = id_bits(n);
    Row {
        algorithm: name.to_string(),
        rounds: rule_rounds,
        max_msg_bits: bits,
        total_bits: rule_rounds * n as f64 * (ids_per_node_round * bits) as f64,
    }
}

/// E10.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E10-baseline-comparison");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        3
    } else {
        6
    };
    let sizes: Vec<usize> = if args.quick {
        vec![64]
    } else {
        vec![64, 256, 1024]
    };

    let mut table = Table::new([
        "n",
        "algorithm",
        "rounds",
        "max message (bits)",
        "total traffic (Mbit)",
    ]);
    for &n in &sizes {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0xBA5E, n as u64);
        let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);
        let cfg = TrialConfig {
            trials,
            base_seed: args.seed ^ n as u64,
            max_rounds: 100_000_000,
            parallel: true,
        };

        let mut rows: Vec<Row> = Vec::new();
        // Gossip processes (graph model).
        let push = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
        report.measure_rounds("push", "tree+2n", n as u64, &push);
        rows.push(process_row(
            "push (this paper)",
            crate::harness::mean(&push),
            2,
            n,
        ));
        let pull = convergence_rounds(&g, Pull, ComponentwiseComplete::for_graph, &cfg);
        report.measure_rounds("pull", "tree+2n", n as u64, &pull);
        rows.push(process_row(
            "pull (this paper)",
            crate::harness::mean(&pull),
            2,
            n,
        ));

        // Knowledge-model baselines, averaged over the same trial count.
        let mut nd_acc = (0.0, 0u64, 0.0);
        let mut pj_acc = (0.0, 0u64, 0.0);
        let mut th_acc = (0.0, 0u64, 0.0);
        for t in 0..trials {
            let seed = gossip_core::rng::trial_seed(args.seed ^ n as u64, t);
            let k = Knowledge::from_undirected(&g);
            for (acc, out) in [
                (
                    &mut nd_acc,
                    NameDropper::new(k.clone(), seed).run_to_completion(1_000_000),
                ),
                (
                    &mut pj_acc,
                    PointerJump::new(k.clone(), seed).run_to_completion(1_000_000),
                ),
                (
                    &mut th_acc,
                    ThrottledNameDropper::new(k.clone(), 1, seed).run_to_completion(10_000_000),
                ),
            ] {
                assert!(out.complete, "baseline failed to complete at n={n}");
                acc.0 += out.rounds as f64 / trials as f64;
                acc.1 = acc.1.max(out.max_message_bits);
                acc.2 += out.total_bits as f64 / trials as f64;
            }
        }
        rows.push(Row {
            algorithm: "Name Dropper [HLL99]".into(),
            rounds: nd_acc.0,
            max_msg_bits: nd_acc.1,
            total_bits: nd_acc.2,
        });
        rows.push(Row {
            algorithm: "Random Pointer Jump".into(),
            rounds: pj_acc.0,
            max_msg_bits: pj_acc.1,
            total_bits: pj_acc.2,
        });
        rows.push(Row {
            algorithm: "throttled ND (B=1)".into(),
            rounds: th_acc.0,
            max_msg_bits: th_acc.1,
            total_bits: th_acc.2,
        });

        // Flooding (deterministic).
        let fl = Flooding::new(&g).run_to_completion(100_000);
        assert!(fl.complete);
        rows.push(Row {
            algorithm: "flooding".into(),
            rounds: fl.rounds as f64,
            max_msg_bits: fl.max_message_bits,
            total_bits: fl.total_bits as f64,
        });

        for r in rows {
            report.measure_scalar(
                "mean_rounds",
                r.algorithm.as_str(),
                "tree+2n",
                n as u64,
                r.rounds,
            );
            report.measure_scalar(
                "max_message_bits",
                r.algorithm.as_str(),
                "tree+2n",
                n as u64,
                r.max_msg_bits as f64,
            );
            report.measure_scalar(
                "total_traffic_mbit",
                r.algorithm.as_str(),
                "tree+2n",
                n as u64,
                r.total_bits / 1e6,
            );
            table.push_row([
                n.to_string(),
                r.algorithm,
                fmt_f64(r.rounds),
                r.max_msg_bits.to_string(),
                fmt_f64(r.total_bits / 1e6),
            ]);
        }
    }

    report.note(
        "paper (§1): Name Dropper completes in O(log² n) rounds but ships Θ(n log n)-bit \
         messages; the gossip processes hold every message at O(log n) bits and pay \
         O(n log² n) rounds. Total traffic lands within an order of magnitude either way.",
    );
    report.table("rounds vs bandwidth", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_all_algorithms() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables[0].1.len(), 6);
    }
}
