//! E18 — churn as a first-class workload: membership bursts at scale.
//!
//! The paper's setting is a *dynamic* network, but E15–E17 drive static
//! node sets. This experiment installs a [`MembershipPlan`] burst schedule
//! into the engines (the lifecycle seam from `gossip-core`) and measures
//! what churn costs the discovery process at `n ∈ {2^20, 2^22}`:
//!
//! * **re-discovery time** (reproducible): rounds after a burst's rejoin
//!   until the departed cohort's total degree regains its pre-leave value —
//!   how fast gossip re-integrates returning members,
//! * **staleness** (reproducible): the cohort's knowledge deficit
//!   integrated over rounds (edge-rounds below the pre-leave baseline)
//!   from the leave until recovery — how much discovered state a burst
//!   destroys, weighted by how long it stays destroyed,
//! * **determinism under churn** (asserted in-run): the sharded engine at
//!   `S ∈ {1, 8}` and the sequential arena engine walk bit-identical
//!   trajectories under the same plan, and a *served* run (engine behind
//!   [`GossipService`] publishing epoch snapshots) equals the batch run —
//!   the sequential and served witnesses stop at `2^20` (each roughly
//!   doubles the largest size's cost: a second full run, or a snapshot
//!   copy held alongside the live graph),
//! * **memory** (acceptance): the `n = 2^22` churn sweep completes within
//!   1 GiB peak RSS when this experiment sets the process's high-water
//!   mark (run `exp_churn` standalone for the clean reading); the
//!   acceptance size runs a shorter `ACCEPT_HORIZON` window so edge growth
//!   stays inside the ceiling.
//!
//! Leaves scrub the departed node from every row (the engine's membership
//! contract — no failure detector is modeled, the *schedule* is the
//! oracle), so a departed cohort's degree is exactly 0 while away and the
//! deficit metrics are pure functions of the plan and the seed.

use crate::experiments::shard::{fmt_mib, peak_rss_bytes, row_checksum, sparse_sharded};
use crate::harness::{Args, Report};
use gossip_analysis::Table;
use gossip_core::listener::PhaseAccumulator;
use gossip_core::{
    ChurnBursts, Engine, EngineBuilder, ListenerSet, MembershipEvent, MembershipPlan,
    MembershipStats, Pull, RoundEngine,
};
use gossip_graph::{ArenaGraph, NodeId};
use gossip_serve::{GossipService, ServeConfig, TrajectoryRecorder};
use gossip_shard::{BuildSharded, ShardedEngine};
use std::time::Instant;

const SHARDS: usize = 8;
/// Rounds per run: two bursts land early (leaves at rounds 1 and 4,
/// rejoins one round later), leaving most of the horizon for recovery —
/// the second cohort departs with ~4 rounds of accumulated knowledge and
/// needs most of the remaining window to regain it.
const HORIZON: u64 = 16;
/// Rounds for the `n = 2^22` acceptance row. Pull grows the edge set by
/// ~`n` per round, and the arena keeps up to ~2.25× the live entries
/// (relocation reserve + dead space below the compaction trigger), so
/// sixteen rounds at 4M nodes put the run past the 1 GiB RSS ceiling on
/// edge data alone (measured 2.2 GiB); the largest size runs a shorter
/// window instead. Both bursts still land and the deficit metrics are
/// reported — recovery may be censored at the horizon (`recovered = no`),
/// with full-horizon recovery measured at `2^20`.
const ACCEPT_HORIZON: u64 = 6;

/// The burst schedule for one run: 2 bursts of `n/64` nodes, one round
/// away, 3 bootstrap contacts back in. Same shape at every size, so the
/// deficit metrics compare across `n`.
fn churn_cfg(n: usize, seed: u64) -> ChurnBursts {
    ChurnBursts {
        n,
        nodes_per_burst: (n / 64).max(1),
        bursts: 2,
        first_round: 1,
        period: 3,
        rejoin_after: 1,
        bootstrap_contacts: 3,
        seed: seed ^ 0xC402,
    }
}

/// The burst cohorts a plan departs, grouped by leave round (in plan-round
/// coordinates), extracted from the replayable event list.
fn cohorts(plan: &MembershipPlan) -> Vec<(u64, Vec<NodeId>)> {
    let mut out: Vec<(u64, Vec<NodeId>)> = Vec::new();
    for (round, ev) in plan.events() {
        if let MembershipEvent::Leave { node } = ev {
            match out.last_mut() {
                Some((r, nodes)) if r == round => nodes.push(*node),
                _ => out.push((*round, vec![*node])),
            }
        }
    }
    out
}

/// One run's integer trajectory: edge count and per-cohort degree sums
/// after every round. Everything downstream (metrics, cross-engine
/// asserts) is computed from this.
#[derive(Debug, PartialEq, Eq)]
struct Trajectory {
    /// `m[i]` = edge count after round `i + 1`.
    m: Vec<u64>,
    /// `cohort_deg[b][i]` = Σ degree over burst `b`'s cohort after round
    /// `i + 1`. Exactly 0 while the cohort is away.
    cohort_deg: Vec<Vec<u64>>,
}

/// Drives `horizon` rounds of a step closure that returns
/// `(m, per-cohort degree sums)` after each round.
fn record(horizon: u64, mut step: impl FnMut() -> (u64, Vec<u64>)) -> Trajectory {
    let mut t = Trajectory {
        m: Vec::with_capacity(horizon as usize),
        cohort_deg: Vec::new(),
    };
    for _ in 0..horizon {
        let (m, degs) = step();
        if t.cohort_deg.is_empty() {
            t.cohort_deg = vec![Vec::with_capacity(horizon as usize); degs.len()];
        }
        t.m.push(m);
        for (b, d) in degs.into_iter().enumerate() {
            t.cohort_deg[b].push(d);
        }
    }
    t
}

struct ChurnRun {
    traj: Trajectory,
    stats: MembershipStats,
    checksum: u64,
    final_m: u64,
    mem_bytes: usize,
    wall_ns_per_round: f64,
    membership_ms_per_round: f64,
}

/// One churned sharded run at `(n, shards)` under the standard plan.
fn sharded_run(n: usize, shards: usize, seed: u64, horizon: u64) -> ChurnRun {
    let g = sparse_sharded(n, 2 * n as u64, seed, shards);
    let cfg = churn_cfg(n, seed);
    let plan = MembershipPlan::bursts(&cfg);
    let sets: Vec<Vec<NodeId>> = cohorts(&plan).into_iter().map(|(_, c)| c).collect();
    let mut e = ShardedEngine::new(g, Pull, seed ^ 0x5A4D).with_membership(plan);
    let mut phases = PhaseAccumulator::new();
    let t = Instant::now();
    let traj = record(horizon, || {
        e.step_listened(&mut phases);
        let g = e.graph();
        let degs = sets
            .iter()
            .map(|c| c.iter().map(|&u| g.degree(u) as u64).sum())
            .collect();
        (g.m(), degs)
    });
    let wall_ns_per_round = t.elapsed().as_nanos() as f64 / horizon as f64;
    let stats = e.membership_stats();
    let g = e.into_graph();
    ChurnRun {
        traj,
        stats,
        checksum: row_checksum(&g),
        final_m: g.m(),
        mem_bytes: g.memory_bytes(),
        wall_ns_per_round,
        membership_ms_per_round: phases.totals().membership as f64 / 1e6 / horizon as f64,
    }
}

/// FNV row checksum of the unsharded arena — same canonical rows as
/// [`row_checksum`] on the sharded layout, so the two are comparable.
fn arena_checksum(g: &ArenaGraph) -> u64 {
    let mut h = gossip_analysis::Fnv1a::new();
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            h.write_u64((u.0 as u64) << 32 | v.0 as u64);
        }
        h.write(&[0xFF]); // row boundary
    }
    h.finish()
}

/// The sequential oracle: the plain arena [`Engine`] under the same graph,
/// rule, seed, and plan. Its trajectory must equal the sharded runs' —
/// the membership seam keeps the engines bit-identical under churn.
fn sequential_run(n: usize, seed: u64, horizon: u64) -> ChurnRun {
    let g = crate::experiments::scale::sparse_arena(n, 2 * n as u64, seed);
    let cfg = churn_cfg(n, seed);
    let plan = MembershipPlan::bursts(&cfg);
    let sets: Vec<Vec<NodeId>> = cohorts(&plan).into_iter().map(|(_, c)| c).collect();
    let mut e = Engine::new(g, Pull, seed ^ 0x5A4D).with_membership(plan);
    let t = Instant::now();
    let traj = record(horizon, || {
        e.step();
        let g = e.graph();
        let degs = sets
            .iter()
            .map(|c| c.iter().map(|&u| g.degree(u) as u64).sum())
            .collect();
        (g.m(), degs)
    });
    let wall_ns_per_round = t.elapsed().as_nanos() as f64 / horizon as f64;
    let stats = e.membership_stats();
    let g = e.graph();
    ChurnRun {
        checksum: arena_checksum(g),
        final_m: g.m(),
        mem_bytes: g.memory_bytes(),
        traj,
        stats,
        wall_ns_per_round,
        membership_ms_per_round: 0.0, // the sequential engine emits no phase events
    }
}

/// The served run: the same churned engine resident behind
/// [`GossipService`], publishing an epoch snapshot every round. Returns
/// per-round edge counts (from the trajectory plugin), the final checksum,
/// and the final edge count — compared against the batch run.
fn served_run(n: usize, seed: u64, horizon: u64) -> (Vec<u64>, u64, u64) {
    let g = sparse_sharded(n, 2 * n as u64, seed, SHARDS);
    let plan = MembershipPlan::bursts(&churn_cfg(n, seed));
    let (trajectory_listener, trajectory) = TrajectoryRecorder::new(1);
    let engine = EngineBuilder::new(g, Pull, seed ^ 0x5A4D)
        .membership(plan)
        .build_sharded();
    let svc = GossipService::spawn_with(
        engine,
        ServeConfig {
            snapshot_every: 1,
            budget: horizon,
        },
        ListenerSet::new().with(trajectory_listener),
    );
    let (engine, _outcome) = svc.join();
    let trajectory = trajectory.lock().expect("trajectory lock");
    (
        trajectory.iter().map(|p| p.edges).collect(),
        row_checksum(engine.graph()),
        engine.graph().m(),
    )
}

/// Per-burst deficit metrics, in plan-round coordinates. An event at plan
/// round `R` fires at the top of step `R + 1`, so it is visible in
/// trajectory index `R`; the pre-leave baseline is index `L - 1`.
struct BurstMetrics {
    leave_round: u64,
    rejoin_round: u64,
    /// Cohort degree sum just before the leave.
    deg_pre: u64,
    /// Rounds from the rejoin's visibility until the cohort regained
    /// `deg_pre` (0 = same round), capped at the horizon if unrecovered.
    rediscovery_rounds: u64,
    /// Σ max(0, deg_pre − cohort_deg) over rounds from leave to recovery.
    staleness_edge_rounds: u64,
    recovered: bool,
}

fn burst_metrics(cfg: &ChurnBursts, traj: &Trajectory) -> Vec<BurstMetrics> {
    let plan = MembershipPlan::bursts(cfg);
    cohorts(&plan)
        .iter()
        .zip(&traj.cohort_deg)
        .map(|((leave_round, _), deg)| {
            let l = *leave_round as usize;
            let rejoin_round = leave_round + cfg.rejoin_after;
            assert!(l >= 1, "first_round must be >= 1 for a pre-leave baseline");
            let deg_pre = deg[l - 1];
            let mut staleness = 0u64;
            let mut r = l;
            let recovered = loop {
                match deg.get(r) {
                    None => break false,
                    Some(&d) if d >= deg_pre => break true,
                    Some(&d) => {
                        staleness += deg_pre - d;
                        r += 1;
                    }
                }
            };
            BurstMetrics {
                leave_round: *leave_round,
                rejoin_round,
                deg_pre,
                rediscovery_rounds: (r as u64).saturating_sub(rejoin_round),
                staleness_edge_rounds: staleness,
                recovered,
            }
        })
        .collect()
}

/// E18: churn bursts — re-discovery, staleness, determinism, memory.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E18-churn");
    let rss_floor = peak_rss_bytes();
    // The 2^22 row is the acceptance run (1 GiB RSS ceiling) and goes
    // FIRST: peak RSS is process-wide and monotone, and the allocator
    // holds freed pages, so running a smaller size beforehand would
    // pollute the high-water mark with its leftovers. Quick keeps one
    // small size so CI smoke exercises every code path in seconds.
    let sizes: Vec<usize> = if args.quick {
        vec![1 << 14]
    } else {
        vec![1 << 22, 1 << 20]
    };

    let mut deficit = Table::new([
        "n",
        "burst",
        "cohort",
        "leave@",
        "rejoin@",
        "deg before",
        "re-discovery rounds",
        "staleness (edge-rounds)",
        "recovered",
    ]);
    let mut invariance = Table::new([
        "n",
        "run",
        "rounds",
        "final m",
        "leaves",
        "joins",
        "edges removed",
        "bootstrap edges",
        "matches S=1",
    ]);
    let mut wallclock = Table::new([
        "n",
        "round ms (S=8)",
        "membership ms/round",
        "graph MiB",
        "peak RSS MiB",
    ]);

    for &n in &sizes {
        let cfg = churn_cfg(n, args.seed);
        // The acceptance size trades horizon for memory (ACCEPT_HORIZON's
        // doc has the arithmetic); every smaller size runs the full window.
        let horizon = if n >= 1 << 22 {
            ACCEPT_HORIZON
        } else {
            HORIZON
        };
        let base = sharded_run(n, 1, args.seed, horizon);
        let s8 = sharded_run(n, SHARDS, args.seed, horizon);

        // Sharded-vs-sequential determinism under churn, measured at full
        // scale (the test suites pin it at property scale).
        let sharded_agree = s8.traj == base.traj
            && s8.checksum == base.checksum
            && s8.stats == base.stats
            && s8.final_m == base.final_m;
        assert!(sharded_agree, "S={SHARDS} diverged from S=1 at n={n}");
        // The plain sequential engine is the third witness; its run doubles
        // the largest size's cost, so it stops at 2^20 (full) / 2^14 (quick).
        let seq_agree = if n <= 1 << 20 {
            let seq = sequential_run(n, args.seed, horizon);
            let ok =
                seq.traj == base.traj && seq.checksum == base.checksum && seq.stats == base.stats;
            assert!(ok, "sequential arena engine diverged at n={n}");
            Some(ok)
        } else {
            None
        };
        report.measure_scalar(
            "sharded_matches_sequential",
            "pull",
            "churn",
            n as u64,
            sharded_agree as u64 as f64,
        );

        // Served-under-churn == batch-under-churn: the resident service
        // applies the same plan on its worker thread and must not perturb
        // the trajectory while publishing per-round snapshots. The service
        // holds the latest snapshot alongside the live graph — two full
        // copies once every segment is dirtied — so, like the sequential
        // oracle, the served witness stops at 2^20 and leaves the
        // acceptance size within its RSS ceiling.
        let served = if n <= 1 << 20 {
            let (served_m, served_checksum, served_final) = served_run(n, args.seed, horizon);
            let ok = served_m == base.traj.m
                && served_checksum == base.checksum
                && served_final == base.final_m;
            assert!(ok, "served churn run diverged from batch at n={n}");
            report.measure_scalar(
                "served_matches_batch",
                "pull",
                "churn",
                n as u64,
                ok as u64 as f64,
            );
            Some((served_final, ok))
        } else {
            None
        };

        // The headline metrics, from the (identical) trajectories.
        for (b, m) in burst_metrics(&cfg, &base.traj).iter().enumerate() {
            report.measure_scalar(
                "rediscovery_rounds",
                "pull",
                format!("burst-{b}"),
                n as u64,
                m.rediscovery_rounds as f64,
            );
            report.measure_scalar(
                "staleness_edge_rounds",
                "pull",
                format!("burst-{b}"),
                n as u64,
                m.staleness_edge_rounds as f64,
            );
            deficit.push_row([
                n.to_string(),
                b.to_string(),
                cfg.nodes_per_burst.to_string(),
                m.leave_round.to_string(),
                m.rejoin_round.to_string(),
                m.deg_pre.to_string(),
                m.rediscovery_rounds.to_string(),
                m.staleness_edge_rounds.to_string(),
                if m.recovered { "yes" } else { "no" }.into(),
            ]);
        }
        report.measure_scalar(
            "edges_removed_by_leaves",
            "pull",
            "churn",
            n as u64,
            base.stats.edges_removed as f64,
        );
        report.measure_scalar(
            "bootstrap_edges_added",
            "pull",
            "churn",
            n as u64,
            base.stats.edges_added as f64,
        );
        report.measure_scalar(
            "mem_bytes",
            "sharded-arena",
            "churn",
            n as u64,
            s8.mem_bytes as f64,
        );

        for (label, run, matches) in [
            ("sharded S=1", &base, true),
            ("sharded S=8", &s8, sharded_agree),
        ] {
            invariance.push_row([
                n.to_string(),
                label.into(),
                horizon.to_string(),
                run.final_m.to_string(),
                run.stats.leaves.to_string(),
                run.stats.joins.to_string(),
                run.stats.edges_removed.to_string(),
                run.stats.edges_added.to_string(),
                if matches { "yes" } else { "NO" }.into(),
            ]);
        }
        if let Some((served_final, served_agree)) = served {
            invariance.push_row([
                n.to_string(),
                "served S=8".into(),
                horizon.to_string(),
                served_final.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                if served_agree { "yes" } else { "NO" }.into(),
            ]);
        }
        if let Some(ok) = seq_agree {
            invariance.push_row([
                n.to_string(),
                "sequential arena".into(),
                horizon.to_string(),
                base.final_m.to_string(),
                base.stats.leaves.to_string(),
                base.stats.joins.to_string(),
                base.stats.edges_removed.to_string(),
                base.stats.edges_added.to_string(),
                if ok { "yes" } else { "NO" }.into(),
            ]);
        }

        // Machine-dependent rows.
        report.measure_wallclock_scalar(
            "round_ms_under_churn",
            "pull",
            format!("shards-{SHARDS}"),
            n as u64,
            s8.wall_ns_per_round / 1e6,
        );
        report.measure_wallclock_scalar(
            "membership_ms_per_round",
            "pull",
            format!("shards-{SHARDS}"),
            n as u64,
            s8.membership_ms_per_round,
        );
        let rss = peak_rss_bytes();
        wallclock.push_row([
            n.to_string(),
            format!("{:.2}", s8.wall_ns_per_round / 1e6),
            format!("{:.3}", s8.membership_ms_per_round),
            fmt_mib(s8.mem_bytes as u64),
            rss.map_or("-".into(), fmt_mib),
        ]);

        // Acceptance: the 2^22 churn sweep fits 1 GiB peak RSS. VmHWM is
        // process-wide and monotone — inside run_all the floor is set by
        // earlier experiments (E16 also allocates 2^22 graphs), so the
        // ceiling is enforced only when this experiment owns the
        // high-water mark: run exp_churn standalone for the clean reading.
        if n == 1 << 22 {
            if let (Some(floor), Some(peak)) = (rss_floor, rss) {
                const GIB: u64 = 1 << 30;
                if floor < GIB / 4 {
                    assert!(
                        peak <= GIB,
                        "E18 churn sweep at n=2^22 exceeded 1 GiB peak RSS: {} MiB",
                        fmt_mib(peak)
                    );
                }
                report.measure_wallclock_scalar(
                    "peak_rss_mib",
                    "pull",
                    format!("shards-{SHARDS}"),
                    n as u64,
                    peak as f64 / (1024.0 * 1024.0),
                );
            }
        }
    }

    report.note(format!(
        "membership bursts ({} bursts of n/64 nodes, 1 round away, 3 bootstrap \
         contacts) ran through the lifecycle seam at every size; sharded (S ∈ \
         {{1, {SHARDS}}}), sequential, and served runs stayed bit-identical under \
         the same plan — determinism under churn, measured (the sequential and \
         served witnesses run through n = 2^20; the 2^22 row pins S=1 vs S={SHARDS} \
         over a {ACCEPT_HORIZON}-round window to stay inside the RSS ceiling). \
         Sizes: {}.",
        churn_cfg(1 << 14, 0).bursts,
        if args.quick {
            "quick (2^14)"
        } else {
            "full (2^20, 2^22)"
        }
    ));
    report.note(
        "re-discovery counts rounds from a cohort's rejoin until its total degree \
         regains the pre-leave value; staleness integrates the deficit (edge-rounds) \
         from the leave until recovery. Departed nodes are scrubbed from every row, \
         so both metrics are exact functions of the plan — no failure detector is \
         modeled. Peak RSS is process-wide and monotone; the standalone exp_churn \
         run is the clean 1-GiB acceptance reading.",
    );
    report.table("churn bursts: re-discovery and staleness (pull)", deficit);
    report.table(
        "determinism under churn (trajectory invariance)",
        invariance,
    );
    report.table("wall-clock + memory (appendix)", wallclock);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_runs_agree_across_shard_counts_under_churn() {
        let n = 2048;
        let a = sharded_run(n, 1, 7, HORIZON);
        let b = sharded_run(n, 8, 7, HORIZON);
        assert_eq!(a.traj, b.traj);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.leaves > 0 && a.stats.joins > 0, "{:?}", a.stats);
    }

    #[test]
    fn sequential_engine_matches_sharded_under_churn() {
        let n = 1024;
        let seq = sequential_run(n, 11, HORIZON);
        let sharded = sharded_run(n, 4, 11, HORIZON);
        assert_eq!(seq.traj, sharded.traj);
        assert_eq!(seq.checksum, sharded.checksum);
        assert_eq!(seq.stats, sharded.stats);
    }

    #[test]
    fn served_matches_batch_under_churn_at_test_scale() {
        let n = 4096;
        let batch = sharded_run(n, SHARDS, 3, HORIZON);
        let (served_m, served_checksum, served_final) = served_run(n, 3, HORIZON);
        assert_eq!(served_m, batch.traj.m);
        assert_eq!(served_checksum, batch.checksum);
        assert_eq!(served_final, batch.final_m);
    }

    #[test]
    fn burst_metrics_track_departure_and_recovery() {
        let n = 1024;
        let seed = 5;
        let cfg = churn_cfg(n, seed);
        let run = sharded_run(n, 1, seed, HORIZON);
        let metrics = burst_metrics(&cfg, &run.traj);
        assert_eq!(metrics.len(), cfg.bursts);
        for (b, m) in metrics.iter().enumerate() {
            // The cohort had real knowledge before departing ...
            assert!(m.deg_pre > 0, "burst {b}: empty pre-leave cohort");
            // ... is fully scrubbed while away (event at round R is
            // visible at trajectory index R; rejoin lands one round later)
            assert_eq!(
                run.traj.cohort_deg[b][m.leave_round as usize], 0,
                "burst {b}: cohort degree not scrubbed on leave"
            );
            // ... and the deficit window is non-trivial: at least the
            // absent round's full baseline is integrated.
            assert!(
                m.staleness_edge_rounds >= m.deg_pre,
                "burst {b}: staleness {} < baseline {}",
                m.staleness_edge_rounds,
                m.deg_pre
            );
            assert!(m.recovered, "burst {b}: cohort never recovered");
        }
    }

    #[test]
    fn arena_checksum_matches_sharded_checksum_on_equal_rows() {
        let n = 2048;
        let a = crate::experiments::scale::sparse_arena(n, 2 * n as u64, 7);
        let s = sparse_sharded(n, 2 * n as u64, 7, 4);
        assert_eq!(arena_checksum(&a), row_checksum(&s));
    }
}
