//! E9 — §1's social-group corollary: a connected k-member subgroup running
//! the process restricted to its induced subgraph completes in
//! `O(k log² k)` rounds — independent of the host network's size.

use crate::harness::{mean, Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{convergence_rounds, OnlySubset, Push, SubsetComplete, TrialConfig};
use gossip_graph::traversal::bfs_distances;
use gossip_graph::{generators, NodeId, UndirectedGraph};

fn club(host: &UndirectedGraph, k: usize, anchor: usize) -> Vec<NodeId> {
    // A BFS ball induces a connected subgraph.
    let dist = bfs_distances(host, NodeId::new(anchor % host.n()));
    let mut members: Vec<NodeId> = (0..host.n())
        .map(NodeId::new)
        .filter(|u| dist[u.index()] != u32::MAX)
        .collect();
    members.sort_by_key(|u| (dist[u.index()], u.0));
    members.truncate(k);
    members
}

/// E9.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E9-subgroup-discovery");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };
    let host_sizes: Vec<usize> = if args.quick {
        vec![256, 1024]
    } else {
        vec![512, 4096]
    };
    let ks: Vec<usize> = if args.quick {
        vec![16, 32, 64]
    } else {
        vec![16, 32, 64, 128, 256]
    };

    let mut table = Table::new([
        "host n",
        "k",
        "mean rounds",
        "k log² k",
        "rounds / k log² k",
    ]);
    for &host_n in &host_sizes {
        let mut rng = gossip_core::rng::stream_rng(args.seed, 0x50C, host_n as u64);
        let host = generators::watts_strogatz(host_n, 4, 0.05, &mut rng);
        for &k in &ks {
            let members = club(&host, k, 17);
            let rule = OnlySubset::new(Push, host.n(), &members);
            let cfg = TrialConfig {
                trials,
                base_seed: args.seed ^ ((host_n as u64) << 20) ^ k as u64,
                max_rounds: 100_000_000,
                parallel: true,
            };
            let members_for_check = members.clone();
            let rounds = convergence_rounds(
                &host,
                rule,
                move |_g: &UndirectedGraph| SubsetComplete::new(host_n, &members_for_check),
                &cfg,
            );
            report.measure_rounds("push-subset", format!("host-{host_n}"), k as u64, &rounds);
            let m = mean(&rounds);
            let kf = k as f64;
            let bound = kf * kf.ln() * kf.ln();
            table.push_row([
                host_n.to_string(),
                k.to_string(),
                fmt_f64(m),
                fmt_f64(bound),
                fmt_f64(m / bound),
            ]);
        }
    }
    report.note(
        "paper (§1): restricted to a connected k-node induced subgraph, convergence is \
         O(k log² k) w.h.p. — the host size must not matter.",
    );
    report.note(
        "expectation: for fixed k, rows agree across host sizes; the ratio column stays bounded in k.",
    );
    report.table("subgroup completion rounds", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_cells() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables[0].1.len(), 6); // 2 hosts x 3 ks
    }
}
