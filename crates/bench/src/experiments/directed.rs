//! E5 / E6 — Section 5: the directed two-hop walk.
//!
//! * Upper bound (Thm 14): `O(n² log n)` on any digraph — checked on
//!   directed cycles and strongly connected G(n, p).
//! * Weakly connected lower bound (Thm 14): the paper's explicit family
//!   needs `Ω(n² log n)`.
//! * Strongly connected lower bound (Thm 15): the Figure 3 family needs
//!   expected `Ω(n²)`.

use crate::harness::{mean, Args, Report};
use gossip_analysis::{fmt_f64, loglog_exponent, Table};
use gossip_core::{convergence_rounds, ClosureReached, DirectedPull, TrialConfig};
use gossip_graph::{generators, DirectedGraph};

fn sample_rounds(g: &DirectedGraph, trials: usize, seed: u64) -> Vec<u64> {
    let cfg = TrialConfig {
        trials,
        base_seed: seed,
        max_rounds: 2_000_000_000,
        parallel: true,
    };
    convergence_rounds(g, DirectedPull, ClosureReached::for_graph, &cfg)
}

/// E5 + E6.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E5-E6-directed");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };
    let sizes: Vec<usize> = if args.quick {
        vec![8, 16, 32]
    } else {
        vec![16, 32, 64, 128]
    };

    let mut table = Table::new([
        "family",
        "n",
        "mean rounds",
        "n²",
        "n² ln n",
        "rounds/n²",
        "rounds/(n² ln n)",
    ]);
    let mut exponents = Table::new(["family", "log-log slope", "r²"]);

    #[allow(clippy::type_complexity)] // one-off harness table
    let families: Vec<(&str, Box<dyn Fn(usize) -> DirectedGraph>)> = vec![
        ("directed-cycle", Box::new(generators::directed_cycle)),
        (
            "gnp-strong(8/n)",
            Box::new(move |n| {
                let p = (8.0 / n as f64).min(0.9);
                generators::directed_gnp_strong(
                    n,
                    p,
                    &mut gossip_core::rng::stream_rng(7, 0xD1, n as u64),
                )
            }),
        ),
        ("thm15-strong", Box::new(generators::theorem15_graph)),
        (
            "thm14-weak",
            Box::new(|n| generators::theorem14_graph(n.next_multiple_of(4))),
        ),
    ];

    for (name, make) in &families {
        let mut ns = Vec::new();
        let mut ts = Vec::new();
        for &n in &sizes {
            let g = make(n);
            let n_actual = g.n();
            let rounds = sample_rounds(&g, trials, args.seed ^ (n as u64) << 4);
            report.measure_rounds("directed-pull", *name, n_actual as u64, &rounds);
            let r = mean(&rounds);
            let nf = n_actual as f64;
            table.push_row([
                name.to_string(),
                n_actual.to_string(),
                fmt_f64(r),
                fmt_f64(nf * nf),
                fmt_f64(nf * nf * nf.ln()),
                fmt_f64(r / (nf * nf)),
                fmt_f64(r / (nf * nf * nf.ln())),
            ]);
            ns.push(nf);
            ts.push(r);
        }
        let fit = loglog_exponent(&ns, &ts);
        exponents.push_row([
            name.to_string(),
            fmt_f64(fit.slope),
            format!("{:.4}", fit.r2),
        ]);
    }

    report.note(
        "paper: O(n² log n) upper bound on any digraph; Ω(n² log n) weakly connected \
                 and Ω(n²) strongly connected lower-bound families (Theorems 14/15).",
    );
    report.note(
        "expectation: the adversarial families show the quadratic law — thm15 at \
                 log-log slope ≈ 2.0 with rounds/n² ≈ 0.8 flat, thm14 at slope ≈ 2.1 \
                 (the extra log shows as a mild upward drift in rounds/n²). Benign strongly \
                 connected digraphs (cycles, dense G(n,p)) converge far below the worst case, \
                 as the upper bound permits.",
    );
    report.table("directed two-hop walk: rounds to transitive closure", table);
    report.table("empirical growth exponents", exponents);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_families() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables[0].1.len(), 12); // 4 families x 3 sizes
        assert_eq!(r.tables[1].1.len(), 4);
    }
}
