//! E1 / E3 — Theorems 8 and 12: both processes complete any connected graph
//! in `O(n log² n)` rounds. We sweep `n` across topologies, report mean
//! convergence rounds, and fit the paper's candidate growth models.

use crate::harness::{geometric_sizes, Args, Report};
use gossip_analysis::{fmt_f64, loglog_exponent, rank_models, GrowthModel, Summary, Table};
use gossip_core::{
    convergence_rounds, ComponentwiseComplete, ProposalRule, Pull, Push, TrialConfig,
};
use gossip_graph::{generators, UndirectedGraph};

/// The topology sweep shared by E1/E3.
fn family(name: &str, n: usize, seed: u64) -> UndirectedGraph {
    let mut rng = gossip_core::rng::stream_rng(seed, 0xFA, n as u64);
    match name {
        "path" => generators::path(n),
        "cycle" => generators::cycle(n),
        "star" => generators::star(n),
        "random-tree" => generators::random_tree(n, &mut rng),
        "sparse-2n" => generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng),
        "hypercube" => generators::hypercube(n.ilog2()),
        other => panic!("unknown family {other}"),
    }
}

const FAMILIES: [&str; 6] = [
    "path",
    "cycle",
    "star",
    "random-tree",
    "sparse-2n",
    "hypercube",
];

fn run_process<R: ProposalRule<UndirectedGraph> + Clone>(id: &str, rule: R, args: &Args) -> Report {
    let mut report = Report::new(id);
    let algorithm = if id.starts_with("E1") { "push" } else { "pull" };
    let sizes = if args.quick {
        geometric_sizes(32, 3)
    } else {
        geometric_sizes(64, 5) // 64 .. 1024
    };
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };

    let mut table = Table::new([
        "family",
        "n",
        "mean rounds",
        "ci95",
        "n log² n",
        "rounds / n log² n",
    ]);
    let mut fit_table = Table::new([
        "family",
        "best model",
        "c (best)",
        "c for n log² n",
        "log-log slope",
    ]);

    for fam in FAMILIES {
        let mut ns = Vec::new();
        let mut ts = Vec::new();
        for &n in &sizes {
            let g = family(fam, n, args.seed);
            let n_actual = g.n(); // hypercube rounds n to a power of two
            let cfg = TrialConfig {
                trials,
                base_seed: args.seed ^ (n as u64) << 8,
                max_rounds: 100_000_000,
                parallel: true,
            };
            let rounds =
                convergence_rounds(&g, rule.clone(), ComponentwiseComplete::for_graph, &cfg);
            report.measure_rounds(algorithm, fam, n_actual as u64, &rounds);
            let s = Summary::of_rounds(&rounds);
            let nf = n_actual as f64;
            let bound = nf * nf.ln() * nf.ln();
            table.push_row([
                fam.to_string(),
                n_actual.to_string(),
                fmt_f64(s.mean),
                fmt_f64(s.ci95),
                fmt_f64(bound),
                fmt_f64(s.mean / bound),
            ]);
            ns.push(nf);
            ts.push(s.mean);
        }
        let ranked = rank_models(&ns, &ts);
        let best = ranked[0];
        let nlog2 = ranked
            .iter()
            .find(|f| f.model == GrowthModel::NLog2N)
            .unwrap();
        let slope = loglog_exponent(&ns, &ts);
        fit_table.push_row([
            fam.to_string(),
            best.model.label().to_string(),
            fmt_f64(best.c),
            fmt_f64(nlog2.c),
            format!("{:.3} (r²={:.4})", slope.slope, slope.r2),
        ]);
    }

    report.note(format!(
        "paper: O(n log² n) w.h.p. for any connected graph (Theorem {}).",
        if id.starts_with("E1") {
            "8, push"
        } else {
            "12, pull"
        }
    ));
    report.note(
        "expectation: rounds / n log² n stays bounded (typically drifting down — \
         the theorem's envelope is loose by up to a log factor; the lower bound is Ω(n log n)).",
    );
    report.table("convergence rounds", table);
    report.table("model fits per family", fit_table);
    report
}

/// E1: push / triangulation scaling.
pub fn run_push(args: &Args) -> Report {
    run_process("E1-push-scaling", Push, args)
}

/// E3: pull / two-hop-walk scaling.
pub fn run_pull(args: &Args) -> Report {
    run_process("E3-pull-scaling", Pull, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_tables() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run_push(&args);
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].1.len(), FAMILIES.len() * 3);
        assert_eq!(r.tables[1].1.len(), FAMILIES.len());
        assert_eq!(r.measurements.len(), FAMILIES.len() * 3);
        assert!(r.measurements.iter().all(|m| m.algorithm == "push"));
    }
}
