//! E11 — §6's robustness variants: connection failures and partial
//! participation. A proposal that fails with probability `p` should stretch
//! convergence by roughly `1/(1-p)`; participation `α` by roughly `1/α` —
//! the processes are stateless, so thinning time is all that can happen.

use crate::harness::{mean, Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{
    convergence_rounds, ComponentwiseComplete, Faulty, Partial, Pull, Push, TrialConfig,
};
use gossip_graph::generators;

/// E11.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E11-robustness");
    let trials = if args.trials > 0 {
        args.trials
    } else if args.quick {
        4
    } else {
        8
    };
    let n = if args.quick { 64 } else { 256 };
    let mut rng = gossip_core::rng::stream_rng(args.seed, 0x0B, n as u64);
    let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);
    let cfg = TrialConfig {
        trials,
        base_seed: args.seed,
        max_rounds: 1_000_000_000,
        parallel: true,
    };

    let n64 = n as u64;
    let base_push_rounds = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
    report.measure_rounds("push", "baseline", n64, &base_push_rounds);
    let base_push = mean(&base_push_rounds);
    let base_pull_rounds = convergence_rounds(&g, Pull, ComponentwiseComplete::for_graph, &cfg);
    report.measure_rounds("pull", "baseline", n64, &base_pull_rounds);
    let base_pull = mean(&base_pull_rounds);

    let mut fail_table = Table::new(["process", "failure p", "mean rounds", "slowdown", "1/(1-p)"]);
    for &p in &[0.0, 0.25, 0.5, 0.75, 0.9] {
        let rounds = convergence_rounds(
            &g,
            Faulty::new(Push, p),
            ComponentwiseComplete::for_graph,
            &cfg,
        );
        report.measure_rounds("push", format!("failure-p{p}"), n64, &rounds);
        let push = mean(&rounds);
        fail_table.push_row([
            "push".to_string(),
            format!("{p}"),
            fmt_f64(push),
            fmt_f64(push / base_push),
            fmt_f64(1.0 / (1.0 - p)),
        ]);
        let rounds = convergence_rounds(
            &g,
            Faulty::new(Pull, p),
            ComponentwiseComplete::for_graph,
            &cfg,
        );
        report.measure_rounds("pull", format!("failure-p{p}"), n64, &rounds);
        let pull = mean(&rounds);
        fail_table.push_row([
            "pull".to_string(),
            format!("{p}"),
            fmt_f64(pull),
            fmt_f64(pull / base_pull),
            fmt_f64(1.0 / (1.0 - p)),
        ]);
    }

    let mut part_table = Table::new([
        "process",
        "participation α",
        "mean rounds",
        "slowdown",
        "1/α",
    ]);
    for &a in &[1.0, 0.5, 0.25, 0.1] {
        let rounds = convergence_rounds(
            &g,
            Partial::new(Push, a),
            ComponentwiseComplete::for_graph,
            &cfg,
        );
        report.measure_rounds("push", format!("participation-a{a}"), n64, &rounds);
        let push = mean(&rounds);
        part_table.push_row([
            "push".to_string(),
            format!("{a}"),
            fmt_f64(push),
            fmt_f64(push / base_push),
            fmt_f64(1.0 / a),
        ]);
        let rounds = convergence_rounds(
            &g,
            Partial::new(Pull, a),
            ComponentwiseComplete::for_graph,
            &cfg,
        );
        report.measure_rounds("pull", format!("participation-a{a}"), n64, &rounds);
        let pull = mean(&rounds);
        part_table.push_row([
            "pull".to_string(),
            format!("{a}"),
            fmt_f64(pull),
            fmt_f64(pull / base_pull),
            fmt_f64(1.0 / a),
        ]);
    }

    report.note(
        "paper (§6, future work): variants with connection failures and partial participation. \
         Statelessness predicts multiplicative slowdowns ≈ 1/(1-p) and ≈ 1/α; the tables \
         confirm both within sampling noise — the processes degrade gracefully, never stall.",
    );
    report.table(format!("connection failures (G(n={n}, m=2n))"), fail_table);
    report.table("partial participation", part_table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].1.len(), 10);
        assert_eq!(r.tables[1].1.len(), 8);
    }
}
