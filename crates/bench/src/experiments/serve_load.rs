//! E17 — the serving surface under load: a live engine behind epoch
//! snapshots, measured.
//!
//! The batch experiments (E15/E16) established that the engines scale;
//! this experiment establishes that they can be *served* — rounds
//! advancing continuously on a worker thread while reader threads sustain
//! a query mix (aggregate stats + point adjacency reads) against published
//! snapshots — without perturbing the trajectory or paying O(m) per
//! snapshot.
//!
//! Three claims, three kinds of rows:
//!
//! 1. **Serving is observation, not perturbation** (reproducible): the
//!    served run's per-round edge counts and final row checksum equal a
//!    batch run of the same `(graph, rule, seed)`, with readers hammering
//!    the snapshot surface the whole time.
//! 2. **Snapshot acquisition is O(S), not O(m)** (reproducible fact +
//!    wall-clock ratio): a fresh clone shares all `S` copy-on-write
//!    segments with the live graph (the O(S) mechanism, asserted), and the
//!    measured clone time is orders of magnitude under a forced deep copy
//!    of the same graph.
//! 3. **Sustained QPS × round latency** (wall-clock appendix): queries per
//!    second served while the engine advances, and the round latency paid
//!    under that load.

use crate::experiments::shard::{row_checksum, sparse_sharded};
use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{EngineBuilder, ListenerSet, Pull};
use gossip_graph::{NodeId, ShardedArenaGraph};
use gossip_serve::{GossipService, ServeConfig, TrajectoryRecorder};
use gossip_shard::{BuildSharded, ShardedEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 8;
const READERS: usize = 2;

/// Batch reference: same engine, no service, no readers. Returns the
/// per-round edge counts and the final row checksum.
fn batch_reference(g: ShardedArenaGraph, seed: u64, horizon: u64) -> (Vec<u64>, u64, u64) {
    let mut e = ShardedEngine::new(g, Pull, seed);
    let mut edges_per_round = Vec::with_capacity(horizon as usize);
    for _ in 0..horizon {
        e.step();
        edges_per_round.push(e.graph().m());
    }
    let m = e.graph().m();
    (edges_per_round, row_checksum(e.graph()), m)
}

/// One reader thread's share of the query mix: grab the current snapshot,
/// do a handful of point reads plus a periodic aggregate pass, repeat.
/// Returns the number of queries answered.
fn query_load(
    handle: gossip_serve::ServiceHandle<ShardedArenaGraph>,
    done: Arc<AtomicBool>,
    reader: usize,
) -> u64 {
    let mut queries = 0u64;
    let mut i = 0u64;
    while !done.load(Ordering::Acquire) {
        let snap = handle.snapshot();
        let n = snap.node_count();
        // Point reads: who-knows-whom and membership.
        for k in 0..16u64 {
            let u = NodeId::new(((i * 131 + k * 31 + reader as u64 * 17) % n as u64) as usize);
            let nbrs = snap.neighbors(u);
            assert_eq!(nbrs.len(), snap.degree(u));
            if let Some(&v) = nbrs.first() {
                assert!(snap.knows(u, v));
            }
            queries += 2; // one adjacency-list read, one membership probe
        }
        // Periodic aggregate: degree/coverage/convergence stats.
        if i.is_multiple_of(64) {
            let stats = snap.stats();
            assert!(stats.coverage <= 1.0 + f64::EPSILON);
            queries += 1;
        }
        i += 1;
        std::thread::yield_now();
    }
    queries
}

struct ServeRun {
    edges_per_round: Vec<u64>,
    checksum: u64,
    final_m: u64,
    wall_secs: f64,
    queries: u64,
    epochs: u64,
}

/// The measured configuration: serve `horizon` rounds with `READERS`
/// query threads live the whole time.
fn serve_under_load(g: ShardedArenaGraph, seed: u64, horizon: u64) -> ServeRun {
    let (trajectory_listener, trajectory) = TrajectoryRecorder::new(1);
    let engine = EngineBuilder::new(g, Pull, seed).build_sharded();
    let t = Instant::now();
    let svc = GossipService::spawn_with(
        engine,
        ServeConfig {
            snapshot_every: 1,
            budget: horizon,
        },
        ListenerSet::new().with(trajectory_listener),
    );
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let handle = svc.handle();
            let done = done.clone();
            std::thread::spawn(move || query_load(handle, done, r))
        })
        .collect();
    let (engine, out) = svc.join();
    done.store(true, Ordering::Release);
    let queries: u64 = readers
        .into_iter()
        .map(|h| h.join().expect("reader thread panicked"))
        .sum();
    let wall_secs = t.elapsed().as_secs_f64();
    let trajectory = trajectory.lock().expect("trajectory lock");
    ServeRun {
        edges_per_round: trajectory.iter().map(|p| p.edges).collect(),
        checksum: row_checksum(engine.graph()),
        final_m: engine.graph().m(),
        wall_secs,
        queries,
        epochs: out.epochs,
    }
}

/// Snapshot-acquisition microbenchmark on the post-run graph: CoW clone
/// (what the publisher pays per epoch) vs a forced deep copy (what a
/// whole-state snapshot would pay). Returns `(clone_ns, deep_ns, shares)`.
fn snapshot_cost(g: &ShardedArenaGraph) -> (f64, f64, bool) {
    const REPS: usize = 8;
    let t = Instant::now();
    let mut keep = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        keep.push(g.clone());
    }
    let clone_ns = t.elapsed().as_nanos() as f64 / REPS as f64;
    let shares = (0..g.shard_count()).all(|s| g.shares_segment(&keep[0], s));
    let t = Instant::now();
    for _ in 0..REPS {
        let mut deep = g.clone();
        // `segments_mut` is the CoW commit point: materializing every
        // segment of a shared clone IS the deep copy.
        let segs = deep.segments_mut();
        std::hint::black_box(segs.len());
    }
    let deep_ns = t.elapsed().as_nanos() as f64 / REPS as f64;
    (clone_ns, deep_ns, shares)
}

/// E17.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E17-serve-load");
    let sizes: Vec<usize> = if args.quick {
        vec![1 << 14]
    } else {
        vec![1 << 17, 1 << 20] // 2^20 is the acceptance row
    };
    let horizon_of = |n: usize| -> u64 {
        match (n, args.quick) {
            (_, true) => 4,
            (n, false) if n >= 1 << 20 => 6,
            _ => 10,
        }
    };

    let mut table = Table::new([
        "n",
        "S",
        "rounds",
        "epochs",
        "queries",
        "QPS",
        "round ms (under load)",
        "snapshot ns (CoW)",
        "deep copy ns",
        "copy ratio",
    ]);

    for &n in &sizes {
        let horizon = horizon_of(n);
        let g = sparse_sharded(n, 2 * n as u64, args.seed, SHARDS);

        let (batch_edges, batch_checksum, batch_m) =
            batch_reference(g.clone(), args.seed ^ 0x5EF7, horizon);
        let served = serve_under_load(g, args.seed ^ 0x5EF7, horizon);

        // Claim 1: serving is observation, not perturbation.
        let matches = served.edges_per_round == batch_edges
            && served.checksum == batch_checksum
            && served.final_m == batch_m;
        assert!(
            matches,
            "served trajectory diverged from batch at n={n}: \
             served m={} batch m={batch_m}",
            served.final_m
        );
        report.measure_scalar(
            "served_matches_batch",
            "pull",
            format!("shards-{SHARDS}"),
            n as u64,
            matches as u64 as f64,
        );
        report.measure_scalar(
            "edges_added",
            "pull",
            format!("shards-{SHARDS}"),
            n as u64,
            (served.final_m - (n as u64 - 1 + 2 * n as u64)) as f64,
        );

        // Claim 2: snapshots are O(S). The sharing fact is deterministic;
        // the measured times go to the wall-clock appendix.
        let (clone_ns, deep_ns, shares) = {
            let g_after = sparse_sharded(n, 2 * n as u64, args.seed, SHARDS);
            let mut e = ShardedEngine::new(g_after, Pull, args.seed ^ 0x5EF7);
            for _ in 0..horizon {
                e.step();
            }
            snapshot_cost(e.graph())
        };
        assert!(shares, "fresh clone must share all segments at n={n}");
        report.measure_scalar(
            "snapshot_shares_all_segments",
            "sharded-arena",
            format!("shards-{SHARDS}"),
            n as u64,
            shares as u64 as f64,
        );
        report.measure_wallclock_scalar(
            "snapshot_clone_ns",
            "sharded-arena",
            format!("shards-{SHARDS}"),
            n as u64,
            clone_ns,
        );
        report.measure_wallclock_scalar(
            "deep_copy_ns",
            "sharded-arena",
            format!("shards-{SHARDS}"),
            n as u64,
            deep_ns,
        );
        report.measure_wallclock_scalar(
            "snapshot_speedup_vs_deep_copy",
            "sharded-arena",
            format!("shards-{SHARDS}"),
            n as u64,
            deep_ns / clone_ns.max(1.0),
        );

        // Claim 3: sustained query throughput × round latency.
        let qps = served.queries as f64 / served.wall_secs;
        let round_ms = served.wall_secs * 1e3 / horizon as f64;
        report.measure_wallclock_scalar("qps", "pull", format!("shards-{SHARDS}"), n as u64, qps);
        report.measure_wallclock_scalar(
            "round_ms_under_load",
            "pull",
            format!("shards-{SHARDS}"),
            n as u64,
            round_ms,
        );

        table.push_row([
            n.to_string(),
            SHARDS.to_string(),
            horizon.to_string(),
            served.epochs.to_string(),
            served.queries.to_string(),
            fmt_f64(qps),
            format!("{round_ms:.2}"),
            fmt_f64(clone_ns),
            fmt_f64(deep_ns),
            format!("{:.0}x", deep_ns / clone_ns.max(1.0)),
        ]);
    }

    report.note(format!(
        "a live sharded engine served {READERS} concurrent readers a sustained \
         who-knows-whom / membership / coverage query mix from epoch snapshots while \
         advancing rounds; trajectories stayed bit-identical to batch runs, and \
         snapshot acquisition is an O(S) copy-on-write clone (all segments shared \
         on publish), not an O(m) deep copy. Sizes: {}.",
        if args.quick {
            "quick (2^14)"
        } else {
            "full (2^17, 2^20)"
        }
    ));
    report.table("serving under load (pull, S = 8)", table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_reference_is_deterministic() {
        let g = sparse_sharded(2048, 4096, 7, SHARDS);
        let a = batch_reference(g.clone(), 7, 4);
        let b = batch_reference(g, 7, 4);
        assert_eq!(a, b);
        assert_eq!(a.0.len(), 4);
        assert!(a.0.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn serve_under_load_matches_batch_at_test_scale() {
        let n = 4096;
        let g = sparse_sharded(n, 2 * n as u64, 11, SHARDS);
        let (batch_edges, batch_checksum, batch_m) = batch_reference(g.clone(), 11, 3);
        let served = serve_under_load(g, 11, 3);
        assert_eq!(served.edges_per_round, batch_edges);
        assert_eq!(served.checksum, batch_checksum);
        assert_eq!(served.final_m, batch_m);
        assert!(served.queries > 0);
        assert_eq!(served.epochs, 3 + 2); // initial + 3 rounds + final
    }

    #[test]
    fn snapshot_cost_reports_sharing() {
        let g = sparse_sharded(4096, 8192, 3, SHARDS);
        let (_, _, shares) = snapshot_cost(&g);
        assert!(shares);
    }
}
