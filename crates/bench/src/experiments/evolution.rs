//! E13 — the social-network evolution questions the paper's introduction
//! raises ("how and when do clusters emerge? how does the diameter change
//! with time?") plus the broker question its LinkedIn story implies (who
//! performs the introductions?). Not a theorem — a characterization the
//! paper motivates and this library makes one-command reproducible.

use crate::harness::{Args, Report};
use gossip_analysis::{fmt_f64, Table};
use gossip_core::{ComponentwiseComplete, ConvergenceCheck, DiscoveryTrace, Engine, Push};
use gossip_graph::metrics::average_clustering;
use gossip_graph::traversal::diameter;
use gossip_graph::{generators, metrics};

/// E13.
pub fn run(args: &Args) -> Report {
    let mut report = Report::new("E13-network-evolution");
    let n = if args.quick { 128 } else { 256 };

    let mut rng = gossip_core::rng::stream_rng(args.seed, 0xE13, n as u64);
    let g0 = generators::watts_strogatz(n, 3, 0.05, &mut rng);
    let mut check = ComponentwiseComplete::for_graph(&g0);
    let mut engine = Engine::new(g0.clone(), Push, args.seed);
    let mut trace = DiscoveryTrace::default();

    let mut table = Table::new([
        "round",
        "edges",
        "density",
        "min deg",
        "max deg",
        "diameter",
        "avg clustering",
    ]);
    let snapshot = |t: &mut Table, round: u64, g: &gossip_graph::UndirectedGraph| {
        let s = metrics::summarize(g);
        t.push_row([
            round.to_string(),
            s.m.to_string(),
            fmt_f64(s.density),
            s.min_degree.to_string(),
            s.max_degree.to_string(),
            diameter(g).map_or("-".into(), |d| d.to_string()),
            fmt_f64(average_clustering(g)),
        ]);
    };

    snapshot(&mut table, 0, engine.graph());
    let stride = (n as u64) / 2;
    let mut rounds = 0u64;
    while !check.is_converged(engine.graph()) {
        for _ in 0..stride {
            engine.step_traced(&mut trace);
            rounds += 1;
        }
        snapshot(&mut table, rounds, engine.graph());
        assert!(rounds < 100_000_000, "evolution run exceeded budget");
        if table.len() > 40 {
            // Coarsen late-stage sampling: the interesting structure is early.
            for _ in 0..stride * 8 {
                engine.step_traced(&mut trace);
                rounds += 1;
                if check.is_converged(engine.graph()) {
                    break;
                }
            }
        }
    }
    snapshot(&mut table, rounds, engine.graph());
    report.measure_scalar("rounds", "push", "watts-strogatz", n as u64, rounds as f64);
    report.note(format!(
        "small-world start (Watts–Strogatz n = {n}): diameter collapses to 2 within the \
         first ~n rounds, clustering climbs monotonically to 1, and the degree spread \
         narrows as the min-degree doubling mechanism catches the laggards."
    ));
    report.table("structural evolution under push", table);

    // Broker concentration: how unequal is introduction credit?
    let per_node = trace.introductions_per_node(n);
    let mut sorted: Vec<u64> = per_node.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let top_decile: u64 = sorted.iter().take(n / 10).sum();
    let zero_brokers = sorted.iter().filter(|&&c| c == 0).count();
    report.measure_scalar(
        "total_introductions",
        "push",
        "watts-strogatz",
        n as u64,
        total as f64,
    );
    let mut broker = Table::new(["statistic", "value"]);
    broker.push_row(["total introductions", &total.to_string()]);
    broker.push_row(["busiest broker", &sorted[0].to_string()]);
    broker.push_row([
        "top 10% of nodes brokered",
        &format!("{:.1}%", 100.0 * top_decile as f64 / total.max(1) as f64),
    ]);
    broker.push_row(["nodes that never brokered", &zero_brokers.to_string()]);
    report.note(
        "brokerage is mildly concentrated early (hubs introduce more) but evens out as the \
         graph densifies — consistent with every node's degree growing at the same rate.",
    );
    report.table("introduction brokerage (full run)", broker);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_structure() {
        let args = Args {
            quick: true,
            trials: 2,
            ..Args::default()
        };
        let r = run(&args);
        assert_eq!(r.tables.len(), 2);
        assert!(r.tables[0].1.len() >= 3);
    }
}
