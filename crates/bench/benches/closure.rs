//! Transitive-closure cost: the directed experiments recompute closures per
//! trial graph, so the bitset-BFS implementation must stay cheap at sweep
//! sizes. Word-parallel rows give O(n·m/64)-ish behavior.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_graph::closure::Closure;
use gossip_graph::generators;
use std::time::Duration;

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    group
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    for n in [128usize, 512] {
        let thm15 = generators::theorem15_graph(n);
        group.bench_with_input(BenchmarkId::new("thm15", n), &thm15, |b, g| {
            b.iter(|| std::hint::black_box(Closure::of(g).pair_count()))
        });
        let cycle = generators::directed_cycle(n);
        group.bench_with_input(BenchmarkId::new("cycle", n), &cycle, |b, g| {
            b.iter(|| std::hint::black_box(Closure::of(g).pair_count()))
        });
        let mut rng = gossip_core::rng::stream_rng(6, 0, n as u64);
        let gnp = generators::directed_gnp_strong(n, (8.0 / n as f64).min(0.5), &mut rng);
        group.bench_with_input(BenchmarkId::new("gnp", n), &gnp, |b, g| {
            b.iter(|| std::hint::black_box(Closure::of(g).pair_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
