//! Per-round cost of the processes — the number that decides how large an
//! `n` the experiment battery can sweep. One round is Θ(n) proposals plus
//! Θ(n) O(1) insertions, so rounds/sec should scale as 1/n.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use gossip_core::{Engine, Parallelism, Pull, Push};
use gossip_graph::generators;
use std::time::Duration;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [1024usize, 4096, 16384] {
        let mut rng = gossip_core::rng::stream_rng(1, 0, n as u64);
        let g = generators::tree_plus_random_edges(n, 4 * n as u64, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push", n), &g, |b, g| {
            b.iter_batched(
                || Engine::new(g.clone(), Push, 7).with_parallelism(Parallelism::Sequential),
                |mut engine| {
                    for _ in 0..8 {
                        std::hint::black_box(engine.step());
                    }
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("pull", n), &g, |b, g| {
            b.iter_batched(
                || Engine::new(g.clone(), Pull, 7).with_parallelism(Parallelism::Sequential),
                |mut engine| {
                    for _ in 0..8 {
                        std::hint::black_box(engine.step());
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Full convergence at a small n: end-to-end sanity number.
    let mut group = c.benchmark_group("full_convergence");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let g = generators::star(256);
    group.bench_function("push_star_256", |b| {
        b.iter_batched(
            || {
                (
                    gossip_core::ComponentwiseComplete::for_graph(&g),
                    Engine::new(g.clone(), Push, 11),
                )
            },
            |(mut check, mut engine)| {
                let out = engine.run_until(&mut check, 100_000_000);
                assert!(out.converged);
                out.rounds
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
