//! Per-round cost of the processes — the number that decides how large an
//! `n` the experiment battery can sweep. One round is Θ(n) proposals plus
//! Θ(n) O(1) insertions, so rounds/sec should scale as 1/n sequentially;
//! the `*_pool` rows run the propose phase on the rayon shim's persistent
//! worker pool (zero thread spawns per round after warm-up — asserted at
//! the end) and should beat sequential from a few thousand nodes on
//! multi-core hosts, with n = 65_536 the headline acceptance point.

use criterion::{
    criterion_group, criterion_main, BatchSize, Bencher, BenchmarkId, Criterion, Throughput,
};
use gossip_core::{
    run_engine_listened, Engine, GossipGraph, NullListener, Parallelism, ProposalRule, Pull, Push,
};
use gossip_graph::{generators, ArenaGraph, ShardedArenaGraph};
use gossip_shard::ShardedEngine;
use std::time::Duration;

/// Eight engine rounds per iteration from a fresh engine clone.
fn eight_rounds<G: GossipGraph, R: ProposalRule<G> + Clone>(
    b: &mut Bencher,
    g: &G,
    rule: R,
    par: Parallelism,
) {
    b.iter_batched(
        || Engine::new(g.clone(), rule.clone(), 7).with_parallelism(par),
        |mut engine| {
            for _ in 0..8 {
                std::hint::black_box(engine.step());
            }
        },
        BatchSize::LargeInput,
    )
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [1024usize, 4096, 16384, 65536] {
        let mut rng = gossip_core::rng::stream_rng(1, 0, n as u64);
        let g = generators::tree_plus_random_edges(n, 4 * n as u64, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        for (par_label, par) in [
            ("seq", Parallelism::Sequential),
            ("pool", Parallelism::Parallel),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("push_{par_label}"), n),
                &g,
                |b, g| eight_rounds(b, g, Push, par),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("pull_{par_label}"), n),
                &g,
                |b, g| eight_rounds(b, g, Pull, par),
            );
        }
    }
    group.finish();

    // The arena backend through the same engine: one end-to-end row per
    // process at the headline size, watched by the CI perf ratchet.
    let mut group = c.benchmark_group("round_arena");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [4096usize, 65536] {
        let mut rng = gossip_core::rng::stream_rng(1, 0, n as u64);
        let g = ArenaGraph::from_undirected(&generators::tree_plus_random_edges(
            n,
            4 * n as u64,
            &mut rng,
        ));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_seq", n), &g, |b, g| {
            eight_rounds(b, g, Push, Parallelism::Sequential)
        });
        group.bench_with_input(BenchmarkId::new("pull_seq", n), &g, |b, g| {
            eight_rounds(b, g, Pull, Parallelism::Sequential)
        });
    }
    group.finish();

    // The sharded engine end-to-end at the same sizes (S = 8): mailbox
    // routing + shard-parallel apply against the single-arena rows above.
    // The n = 4096 rows join the CI perf ratchet via its existing filter.
    let mut group = c.benchmark_group("round_sharded");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [4096usize, 65536] {
        let mut rng = gossip_core::rng::stream_rng(1, 0, n as u64);
        let g = ShardedArenaGraph::from_undirected(
            &generators::tree_plus_random_edges(n, 4 * n as u64, &mut rng),
            8,
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_s8", n), &g, |b, g| {
            b.iter_batched(
                || ShardedEngine::new(g.clone(), Push, 7),
                |mut engine| {
                    for _ in 0..8 {
                        std::hint::black_box(engine.step());
                    }
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("pull_s8", n), &g, |b, g| {
            b.iter_batched(
                || ShardedEngine::new(g.clone(), Pull, 7),
                |mut engine| {
                    for _ in 0..8 {
                        std::hint::black_box(engine.step());
                    }
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // The listener seam with no listeners registered against the raw step
    // loop, same engine and graph: these two rows must stay within noise of
    // each other — the seam's per-round cost is one no-op dynamic call. The
    // n = 4096 IDs put both rows under the CI perf ratchet.
    let mut group = c.benchmark_group("round_listened");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    {
        let n = 4096usize;
        let mut rng = gossip_core::rng::stream_rng(1, 0, n as u64);
        let g = ArenaGraph::from_undirected(&generators::tree_plus_random_edges(
            n,
            4 * n as u64,
            &mut rng,
        ));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pull_direct", n), &g, |b, g| {
            eight_rounds(b, g, Pull, Parallelism::Sequential)
        });
        group.bench_with_input(BenchmarkId::new("pull_seam_null", n), &g, |b, g| {
            b.iter_batched(
                || Engine::new(g.clone(), Pull, 7),
                |mut engine| {
                    std::hint::black_box(run_engine_listened(&mut engine, &mut NullListener, 8));
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Thousands of pool-parallel rounds just ran: the pool's worker count
    // must still be bounded by its size (zero spawns per round).
    assert!(
        rayon::global_pool_threads_started() <= rayon::current_num_threads().saturating_sub(1),
        "pool spawned threads per round"
    );

    // Full convergence at a small n: end-to-end sanity number.
    let mut group = c.benchmark_group("full_convergence");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let g = generators::star(256);
    group.bench_function("push_star_256", |b| {
        b.iter_batched(
            || {
                (
                    gossip_core::ComponentwiseComplete::for_graph(&g),
                    Engine::new(g.clone(), Push, 11),
                )
            },
            |(mut check, mut engine)| {
                let out = engine.run_until(&mut check, 100_000_000);
                assert!(out.converged);
                out.rounds
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
