//! Cost of baseline rounds: Name Dropper moves Θ(known) addresses per node
//! per round, so its round cost grows as knowledge accumulates — the
//! bandwidth story of E10, seen from the CPU side.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gossip_baselines::{DiscoveryAlgorithm, Knowledge, NameDropper, PointerJump};
use gossip_graph::generators;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_round");
    group
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);

    for n in [256usize, 1024] {
        let mut rng = gossip_core::rng::stream_rng(3, 0, n as u64);
        let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut rng);
        let sparse = Knowledge::from_undirected(&g);
        let dense = Knowledge::from_undirected(&generators::complete(n));

        group.bench_with_input(BenchmarkId::new("nd_sparse", n), &sparse, |b, k| {
            b.iter_batched(
                || NameDropper::new(k.clone(), 5),
                |mut nd| std::hint::black_box(nd.step()),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("nd_dense", n), &dense, |b, k| {
            b.iter_batched(
                || NameDropper::new(k.clone(), 5),
                |mut nd| std::hint::black_box(nd.step()),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("pointer_jump_sparse", n),
            &sparse,
            |b, k| {
                b.iter_batched(
                    || PointerJump::new(k.clone(), 5),
                    |mut pj| std::hint::black_box(pj.step()),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();

    // End-to-end: Name Dropper full completion (the O(log² n) round story).
    let mut group = c.benchmark_group("baseline_full");
    group
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let mut rng = gossip_core::rng::stream_rng(4, 0, 0);
    let g = generators::tree_plus_random_edges(256, 512, &mut rng);
    let k0 = Knowledge::from_undirected(&g);
    group.bench_function("nd_complete_256", |b| {
        b.iter_batched(
            || NameDropper::new(k0.clone(), 9),
            |mut nd| {
                let out = nd.run_to_completion(100_000);
                assert!(out.complete);
                out.rounds
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
