//! The parallelism ablations from DESIGN.md:
//!
//! 1. within-round rayon vs sequential proposal generation (pays off only
//!    for large `n` — this bench shows where the crossover sits),
//! 2. trial-level parallelism, the workhorse of every experiment sweep,
//! 3. the persistent pool vs the retired spawn-per-call fan-out on an
//!    identical propose-like kernel (the PR-2 acceptance number: pool ≥ 2×
//!    spawn at n = 65_536 on ≥ 4 cores), and
//! 4. an imbalanced batch — one heavy item among many light ones — where
//!    dynamic chunk claiming beats static one-chunk-per-core splitting.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use gossip_core::{
    convergence_rounds, ComponentwiseComplete, Engine, Parallelism, Push, TrialConfig,
};
use gossip_graph::generators;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Propose-shaped kernel: per index, derive a counter-based RNG stream and
/// store one draw into a pre-sized slot — the same work pattern as the
/// engine's parallel propose phase, minus the graph.
fn propose_like_kernel(slots: &[AtomicU64], i: usize) {
    let mut rng = gossip_core::rng::stream_rng(0xA5, 0, i as u64);
    slots[i].store(rng.random::<u64>(), Ordering::Relaxed);
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_parallelism");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    for n in [4096usize, 65536] {
        let mut rng = gossip_core::rng::stream_rng(5, 0, n as u64);
        let g = generators::tree_plus_random_edges(n, 4 * n as u64, &mut rng);
        for (label, par) in [
            ("seq", Parallelism::Sequential),
            ("pool", Parallelism::Parallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                b.iter_batched(
                    || Engine::new(g.clone(), Push, 7).with_parallelism(par),
                    |mut engine| {
                        for _ in 0..4 {
                            std::hint::black_box(engine.step());
                        }
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();

    // Pool (persistent workers, dynamic chunk claiming) vs the seed's
    // spawn-per-call one-chunk-per-core fan-out, identical kernel.
    let mut group = c.benchmark_group("pool_vs_spawn");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let threads = rayon::current_num_threads();
    for n in [1024usize, 4096, 16384, 65536] {
        let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pool", n), &slots, |b, slots| {
            b.iter(|| rayon::fan_out(slots.len(), |i| propose_like_kernel(slots, i)))
        });
        group.bench_with_input(BenchmarkId::new("spawn", n), &slots, |b, slots| {
            b.iter(|| rayon::fan_out_with(threads, slots.len(), |i| propose_like_kernel(slots, i)))
        });
    }
    group.finish();
    // Steady state reached: the pool must not have spawned per call.
    assert!(
        rayon::global_pool_threads_started() <= threads.saturating_sub(1),
        "pool spawned threads during benchmarking"
    );

    // Imbalanced batch: item 0 costs ~64x the rest (a heavy-tailed Monte
    // Carlo trial). Static splitting strands the heavy item's neighbors on
    // one thread; chunk claiming lets idle executors drain the light items.
    let mut group = c.benchmark_group("imbalanced_batch");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let items = 16usize;
    let spin = |i: usize| {
        let iters = if i == 0 { 1 << 18 } else { 1 << 12 };
        let mut rng = gossip_core::rng::stream_rng(9, 1, i as u64);
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(rng.random::<u64>());
        }
        std::hint::black_box(acc);
    };
    group.bench_function(BenchmarkId::new("pool", "1_heavy_15_light"), |b| {
        b.iter(|| rayon::fan_out(items, spin))
    });
    group.bench_function(BenchmarkId::new("spawn", "1_heavy_15_light"), |b| {
        b.iter(|| rayon::fan_out_with(threads, items, spin))
    });
    group.finish();

    let mut group = c.benchmark_group("trial_parallelism");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let g = generators::star(128);
    for (label, parallel) in [("seq", false), ("pool", true)] {
        group.bench_function(BenchmarkId::new(label, "16_trials_star128"), |b| {
            b.iter(|| {
                let cfg = TrialConfig {
                    trials: 16,
                    base_seed: 1,
                    max_rounds: 100_000_000,
                    parallel,
                };
                std::hint::black_box(convergence_rounds(
                    &g,
                    Push,
                    ComponentwiseComplete::for_graph,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
