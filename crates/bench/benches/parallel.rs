//! The parallelism ablations from DESIGN.md:
//!
//! 1. within-round rayon vs sequential proposal generation (pays off only
//!    for large `n` — this bench shows where the crossover sits), and
//! 2. trial-level parallelism, the workhorse of every experiment sweep.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gossip_core::{
    convergence_rounds, ComponentwiseComplete, Engine, Parallelism, Push, TrialConfig,
};
use gossip_graph::generators;
use std::time::Duration;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_parallelism");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    for n in [4096usize, 65536] {
        let mut rng = gossip_core::rng::stream_rng(5, 0, n as u64);
        let g = generators::tree_plus_random_edges(n, 4 * n as u64, &mut rng);
        for (label, par) in [
            ("seq", Parallelism::Sequential),
            ("rayon", Parallelism::Parallel),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                b.iter_batched(
                    || Engine::new(g.clone(), Push, 7).with_parallelism(par),
                    |mut engine| {
                        for _ in 0..4 {
                            std::hint::black_box(engine.step());
                        }
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("trial_parallelism");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let g = generators::star(128);
    for (label, parallel) in [("seq", false), ("rayon", true)] {
        group.bench_function(BenchmarkId::new(label, "16_trials_star128"), |b| {
            b.iter(|| {
                let cfg = TrialConfig {
                    trials: 16,
                    base_seed: 1,
                    max_rounds: 100_000_000,
                    parallel,
                };
                std::hint::black_box(convergence_rounds(
                    &g,
                    Push,
                    ComponentwiseComplete::for_graph,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
