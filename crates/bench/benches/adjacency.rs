//! The substrate ablation from DESIGN.md: AdjSet (vec + bitset) against the
//! std HashSet alternative on the three hot operations. Sampling is the one
//! a HashSet fundamentally can't do in O(1), which is why AdjSet exists.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gossip_graph::{AdjSet, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

const N: usize = 4096;

fn filled_adjset(k: usize) -> AdjSet {
    let mut s = AdjSet::new(N);
    let mut rng = SmallRng::seed_from_u64(1);
    while s.len() < k {
        s.insert(NodeId(rng.random_range(0..N as u32)));
    }
    s
}

fn bench_adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacency");
    group
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    // Insert 1k ids.
    group.bench_function("insert_1k/adjset", |b| {
        b.iter_batched(
            || AdjSet::new(N),
            |mut s| {
                for i in 0..1000u32 {
                    s.insert(NodeId((i * 37) % N as u32));
                }
                s.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("insert_1k/hashset", |b| {
        b.iter_batched(
            HashSet::<u32>::new,
            |mut s| {
                for i in 0..1000u32 {
                    s.insert((i * 37) % N as u32);
                }
                s.len()
            },
            BatchSize::SmallInput,
        )
    });

    // Membership.
    let adj = filled_adjset(1024);
    let hash: HashSet<u32> = adj.iter().map(|v| v.0).collect();
    group.bench_function("contains/adjset", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 761) % N as u32;
            std::hint::black_box(adj.contains(NodeId(i)))
        })
    });
    group.bench_function("contains/hashset", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 761) % N as u32;
            std::hint::black_box(hash.contains(&i))
        })
    });

    // Uniform sampling: AdjSet O(1); a HashSet needs an O(len) walk.
    let mut rng = SmallRng::seed_from_u64(9);
    group.bench_function("sample/adjset", |b| {
        b.iter(|| std::hint::black_box(adj.sample(&mut rng)))
    });
    group.bench_function("sample/hashset_nth_walk", |b| {
        b.iter(|| {
            let k = rng.random_range(0..hash.len());
            std::hint::black_box(hash.iter().nth(k))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_adjacency);
criterion_main!(benches);
