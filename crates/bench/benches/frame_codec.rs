//! Frame-codec hot path: encode/decode cost of the transport's mailbox
//! frames. Every proposal a shard ships crosses this codec twice (once
//! serialized, once parsed — more under lossy retransmit), so its
//! per-entry cost bounds how much the serialized seam can add on top of
//! the in-process round. The decode rows exercise the fully-checked
//! parser (count validation, exact-remainder, trailing-garbage scan),
//! which is the part with regression potential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_graph::{HalfEdge, NodeId};
use gossip_shard::wire::{fragment_frames, mailbox_frames, Defragmenter, Frame};
use gossip_shard::MAX_FRAME_ENTRIES;
use std::time::Duration;

fn entries(count: usize) -> Vec<HalfEdge> {
    (0..count as u32)
        .map(|i| {
            (
                i % 1024,
                NodeId(i.wrapping_mul(2654435761) >> 16),
                NodeId(i),
            )
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);

    for count in [64usize, MAX_FRAME_ENTRIES] {
        let payload = entries(count);
        group.throughput(Throughput::Elements(count as u64));

        group.bench_with_input(BenchmarkId::new("encode_mail", count), &payload, |b, p| {
            let frames = mailbox_frames(3, 1, 2, p, MAX_FRAME_ENTRIES);
            let mut buf = bytes::BytesMut::new();
            b.iter(|| {
                buf.clear();
                for f in &frames {
                    Frame::Mail(f.clone()).encode(&mut buf);
                }
                std::hint::black_box(buf.len())
            })
        });

        group.bench_with_input(BenchmarkId::new("decode_mail", count), &payload, |b, p| {
            let frames = mailbox_frames(3, 1, 2, p, MAX_FRAME_ENTRIES);
            let mut buf = bytes::BytesMut::new();
            for f in &frames {
                Frame::Mail(f.clone()).encode(&mut buf);
            }
            let wire = buf.to_vec();
            b.iter(|| {
                let mut at = 0;
                while at < wire.len() {
                    let len = u32::from_le_bytes(wire[at..at + 4].try_into().unwrap()) as usize;
                    let frame = Frame::decode(&wire[at + 4..at + 4 + len]).unwrap();
                    std::hint::black_box(&frame);
                    at += 4 + len;
                }
            })
        });
    }

    // The datagram path (gossip-cluster) splits every oversized frame
    // into MTU-sized fragments and reassembles them on receipt; under
    // loss each retransmitted fragment crosses the reassembler again, so
    // both directions sit on the cluster transport's hot path.
    let payload = entries(MAX_FRAME_ENTRIES);
    let mut buf = bytes::BytesMut::new();
    for f in mailbox_frames(3, 1, 2, &payload, MAX_FRAME_ENTRIES) {
        Frame::Mail(f).encode(&mut buf);
    }
    let frame_bytes = buf.to_vec();
    for mtu in [256usize, 1400] {
        group.throughput(Throughput::Elements(MAX_FRAME_ENTRIES as u64));

        group.bench_with_input(
            BenchmarkId::new("fragment_encode", mtu),
            &frame_bytes,
            |b, bytes| b.iter(|| std::hint::black_box(fragment_frames(7, bytes, mtu).len())),
        );

        group.bench_with_input(
            BenchmarkId::new("fragment_reassemble", mtu),
            &frame_bytes,
            |b, bytes| {
                let frags = fragment_frames(7, bytes, mtu);
                b.iter(|| {
                    let mut d = Defragmenter::new();
                    let mut out = None;
                    for f in &frags {
                        if let Some(whole) = d.accept(f).unwrap() {
                            out = Some(whole);
                        }
                    }
                    std::hint::black_box(out.unwrap().len())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
