//! The Name Dropper algorithm of Harchol-Balter, Leighton, and Lewin
//! (PODC 1999) — the paper's primary point of comparison (reference \[16\]).
//!
//! "In each round, each node chooses a random neighbor and sends all the IP
//! addresses it knows." Convergence is polylogarithmic (`O(log² n)` rounds)
//! but a single message can carry `Θ(n)` addresses — exactly the bandwidth
//! cost the gossip processes avoid.

use crate::algorithm::{id_bits, DiscoveryAlgorithm, RoundIO};
use crate::knowledge::Knowledge;
use gossip_core::rng::stream_rng;
use gossip_core::{Effects, LocalView, NameDropperKernel, NodeState, ProtocolKernel, RngChooser};
use gossip_graph::NodeId;

/// Name Dropper state.
#[derive(Clone, Debug)]
pub struct NameDropper {
    knowledge: Knowledge,
    seed: u64,
    round: u64,
    id_bits: u64,
    /// Buffered (sender, receiver) picks for the synchronous round.
    picks: Vec<Option<NodeId>>,
}

impl NameDropper {
    /// Starts from the given knowledge state.
    pub fn new(knowledge: Knowledge, seed: u64) -> Self {
        let n = knowledge.n();
        NameDropper {
            knowledge,
            seed,
            round: 0,
            id_bits: id_bits(n),
            picks: vec![None; n],
        }
    }
}

impl DiscoveryAlgorithm for NameDropper {
    fn step(&mut self) -> RoundIO {
        let n = self.knowledge.n();
        // Phase 1: every node picks its receiver against round-start state.
        // The decision is the kernel's; the pick is `shares[0]`'s target.
        let mut effects = Effects::default();
        for u in 0..n {
            let mut rng = stream_rng(self.seed, self.round, u as u64);
            effects.clear();
            NameDropperKernel.on_round(
                &mut NodeState::Stateless,
                &LocalView {
                    me: NodeId::new(u),
                    contacts: self.knowledge.contacts(NodeId::new(u)),
                },
                &mut RngChooser(&mut rng),
                &mut effects,
            );
            self.picks[u] = effects.shares.first().map(|&(v, _)| v);
        }
        // Phase 2: deliver. Contents are the round-start contact lists, so
        // we snapshot the sorted arena before merging (synchronous
        // semantics: nobody forwards addresses learned this same round).
        // One O(pairs) clone replaces the old per-node bitmap snapshots,
        // which cost n²/8 bytes a round.
        let snapshot = self.knowledge.sorted_snapshot();
        let mut io = RoundIO::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            if let Some(v) = self.picks[u] {
                let payload = snapshot.slice(u);
                // The message carries the sender's whole list plus itself.
                let msg_bits = (payload.len() as u64 + 1) * self.id_bits;
                io.messages += 1;
                io.bits += msg_bits;
                io.max_message_bits = io.max_message_bits.max(msg_bits);
                io.learned += self.knowledge.absorb(v, NodeId::new(u), payload);
            }
        }
        self.round += 1;
        io
    }

    fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn name(&self) -> &'static str {
        "name-dropper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::DiscoveryAlgorithm;
    use gossip_graph::generators;

    #[test]
    fn completes_star_quickly() {
        let g = generators::star(32);
        let mut nd = NameDropper::new(Knowledge::from_undirected(&g), 1);
        let out = nd.run_to_completion(10_000);
        assert!(out.complete);
        // Polylog: a 32-node star should complete in well under 60 rounds.
        assert!(out.rounds < 60, "rounds = {}", out.rounds);
        nd.knowledge().validate().unwrap();
    }

    #[test]
    fn completes_path() {
        let g = generators::path(24);
        let mut nd = NameDropper::new(Knowledge::from_undirected(&g), 3);
        let out = nd.run_to_completion(10_000);
        assert!(out.complete);
        assert!(out.rounds < 200, "rounds = {}", out.rounds);
    }

    #[test]
    fn messages_grow_to_linear_size() {
        let n = 64;
        let g =
            generators::tree_plus_random_edges(n, 128, &mut gossip_core::rng::stream_rng(7, 0, 0));
        let mut nd = NameDropper::new(Knowledge::from_undirected(&g), 7);
        let out = nd.run_to_completion(10_000);
        assert!(out.complete);
        // Near the end someone ships (almost) the full directory: Θ(n log n) bits.
        let full_list_bits = (n as u64) * id_bits(n);
        assert!(
            out.max_message_bits >= full_list_bits / 2,
            "max message {} bits, full list {} bits",
            out.max_message_bits,
            full_list_bits
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::cycle(20);
        let k = Knowledge::from_undirected(&g);
        let out1 = NameDropper::new(k.clone(), 11).run_to_completion(10_000);
        let out2 = NameDropper::new(k, 11).run_to_completion(10_000);
        assert_eq!(out1, out2);
    }

    #[test]
    fn synchronous_no_same_round_forwarding() {
        // Directed-knowledge chain 0->1: after one round, 1 might learn 0
        // (if 0 sends to 1... but 0 only knows 1, so 0 sends {0,1} to 1 ->
        // 1 learns 0). 2 can't learn anything about 0 in the same round.
        let mut k = Knowledge::new(3);
        k.learn(NodeId(0), NodeId(1));
        k.learn(NodeId(1), NodeId(2));
        let mut nd = NameDropper::new(k, 5);
        nd.step();
        // Whatever happened, node 2 cannot know node 0 after one round:
        // the only path 0 -> 1 -> 2 needs two rounds.
        assert!(!nd.knowledge().knows(NodeId(2), NodeId(0)));
    }
}
