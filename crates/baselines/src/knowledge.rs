//! The knowledge graph: who knows whose address.
//!
//! Resource-discovery baselines operate on *directed knowledge*: `u` knowing
//! `v`'s address does not imply the converse (the paper's processes keep
//! knowledge symmetric; Name Dropper and Random Pointer Jump do not).
//!
//! Storage is **arena-backed** ([`SliceArena`]): every node's contacts live
//! as two slices inside two shared contiguous buffers —
//!
//! * an **arrival-ordered** list, the O(1) sampling surface and the stable
//!   prefix the throttled sender's cursors index into (entries only
//!   append, so a cursor never sees its history shift), and
//! * a **sorted** companion, giving O(log deg) membership for dedup and
//!   letting [`Knowledge::absorb`] merge a whole payload in ascending-id
//!   order.
//!
//! Memory is `O(pairs + n)` — 8 bytes per known pair — where the previous
//! `AdjSet`-row layout paid an `n`-bit bitmap *per node* (`n²/8` bytes
//! before anything is learned), the term that capped baseline experiments
//! in the tens of thousands of nodes. Trajectories are unchanged from that
//! layout: sampling draws from the same arrival order, and absorbing
//! iterates payloads in the same ascending id order the bitmap scan used.

use gossip_graph::{DirectedGraph, NodeId, SliceArena, UndirectedGraph};
use rand::Rng;

/// Directed "who-knows-whom" state for `n` nodes.
///
/// ```
/// use gossip_baselines::Knowledge;
/// use gossip_graph::{generators, NodeId};
/// let k = Knowledge::from_undirected(&generators::path(3));
/// assert!(k.knows(NodeId(0), NodeId(1)));
/// assert!(!k.knows(NodeId(0), NodeId(2)));
/// assert_eq!(k.known_pairs(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Knowledge {
    /// Arrival-ordered contact lists (sampling + stable prefixes).
    arrival: SliceArena,
    /// Sorted contact lists (membership + merge payloads).
    sorted: SliceArena,
    pairs: u64,
}

impl Knowledge {
    /// Empty knowledge (nobody knows anybody) over `n` nodes.
    pub fn new(n: usize) -> Self {
        Knowledge {
            arrival: SliceArena::new(n),
            sorted: SliceArena::new(n),
            pairs: 0,
        }
    }

    /// Initializes from an undirected graph: knowledge is symmetric.
    pub fn from_undirected(g: &UndirectedGraph) -> Self {
        let mut k = Knowledge::new(g.n());
        for e in g.edges() {
            k.learn(e.a, e.b);
            k.learn(e.b, e.a);
        }
        k
    }

    /// Initializes from a digraph: `u -> v` means `u` knows `v`.
    pub fn from_directed(g: &DirectedGraph) -> Self {
        let mut k = Knowledge::new(g.n());
        for a in g.arcs() {
            k.learn(a.from, a.to);
        }
        k
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.arrival.lists()
    }

    /// `u` learns `v`'s address. Returns `true` if it was news.
    /// Learning one's own address is a no-op.
    #[inline]
    pub fn learn(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if self.sorted.insert_sorted(u.index(), v) {
            self.arrival.push(u.index(), v);
            self.pairs += 1;
            true
        } else {
            false
        }
    }

    /// Whether `u` knows `v` (binary search in the sorted companion).
    #[inline]
    pub fn knows(&self, u: NodeId, v: NodeId) -> bool {
        self.sorted.contains_sorted(u.index(), v)
    }

    /// `u`'s contact list in arrival order — a stable prefix: existing
    /// entries never move, new ones only append.
    #[inline]
    pub fn contacts(&self, u: NodeId) -> &[NodeId] {
        self.arrival.slice(u.index())
    }

    /// `u`'s contact list in ascending id order — the payload shape
    /// [`Knowledge::absorb`] consumes.
    #[inline]
    pub fn sorted_contacts(&self, u: NodeId) -> &[NodeId] {
        self.sorted.slice(u.index())
    }

    /// Round-start snapshot of every node's sorted contact list, for the
    /// synchronous baselines (payloads must be what existed at round
    /// start, not what was learned this round). One `O(pairs)` copy of
    /// just the sorted arena — the arrival lists are never read from a
    /// snapshot, so cloning the whole `Knowledge` would double the cost.
    pub fn sorted_snapshot(&self) -> SliceArena {
        self.sorted.clone()
    }

    /// Number of contacts `u` knows.
    #[inline]
    pub fn count(&self, u: NodeId) -> usize {
        self.arrival.len(u.index())
    }

    /// Uniformly random contact of `u` (arrival-order sampling surface).
    #[inline]
    pub fn random_contact<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        let row = self.contacts(u);
        if row.is_empty() {
            None
        } else {
            Some(row[rng.random_range(0..row.len())])
        }
    }

    /// Total ordered known pairs (target: `n * (n-1)`).
    #[inline]
    pub fn known_pairs(&self) -> u64 {
        self.pairs
    }

    /// Whether every node knows every other node.
    #[inline]
    pub fn is_complete(&self) -> bool {
        let n = self.n() as u64;
        self.pairs == n * n.saturating_sub(1)
    }

    /// Merges an entire contact list (ascending id order, as produced by
    /// [`Knowledge::sorted_contacts`]) plus the sender's own address into
    /// `dst`'s knowledge. Returns how many addresses were new.
    pub fn absorb(&mut self, dst: NodeId, sender: NodeId, addresses: &[NodeId]) -> u64 {
        debug_assert!(
            addresses.windows(2).all(|w| w[0] < w[1]),
            "absorb payload must be sorted"
        );
        let mut gained = 0;
        for &v in addresses {
            gained += self.learn(dst, v) as u64;
        }
        gained += self.learn(dst, sender) as u64;
        gained
    }

    /// Removes member `u` from the knowledge state (a churn *leave*):
    /// `u`'s own rows are tombstoned through the arena reclamation path
    /// ([`SliceArena::clear`], so the epoch compaction reclaims their
    /// storage) and every node that knew `u` forgets it. Returns the
    /// number of ordered known pairs dropped. The id stays addressable —
    /// [`Knowledge::admit_member`] re-bootstraps it.
    ///
    /// Forgetting is order-preserving in the arrival lists (linear
    /// remove): surviving entries keep their relative order, so a
    /// throttled sender's cursor still indexes a valid boundary — it
    /// merely never re-sends the entry that vanished, which is exactly
    /// the departed node.
    pub fn drop_member(&mut self, u: NodeId) -> u64 {
        self.sorted.clear(u.index());
        let mut dropped = self.arrival.clear(u.index()) as u64;
        for v in 0..self.n() {
            if self.sorted.remove_sorted(v, u) {
                let removed = self.arrival.remove(v, u);
                debug_assert!(removed, "arrival/sorted out of sync at node {v}");
                dropped += 1;
            }
        }
        self.pairs -= dropped;
        dropped
    }

    /// (Re-)admits member `u` with symmetric bootstrap knowledge: `u`
    /// learns every contact and every contact learns `u` — matching the
    /// engines' bootstrap-edge semantics, where a new edge makes both
    /// endpoints visible to each other. Returns the ordered pairs gained.
    pub fn admit_member(&mut self, u: NodeId, contacts: &[NodeId]) -> u64 {
        let mut gained = 0;
        for &c in contacts {
            gained += self.learn(u, c) as u64;
            gained += self.learn(c, u) as u64;
        }
        gained
    }

    /// Bytes held by the contact storage (length-based, deterministic) —
    /// `O(pairs + n)`, with no quadratic bitmap term.
    pub fn memory_bytes(&self) -> usize {
        self.arrival.memory_bytes() + self.sorted.memory_bytes() + std::mem::size_of::<u64>()
    }

    /// Structural check for tests: pair counter consistent with rows, no
    /// self-knowledge, and the two layouts describe the same sets.
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0u64;
        for u in 0..self.n() {
            let arrival = self.arrival.slice(u);
            let sorted = self.sorted.slice(u);
            if arrival.len() != sorted.len() {
                return Err(format!("node {u}: arrival/sorted length mismatch"));
            }
            if !sorted.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("node {u}: companion not strictly sorted"));
            }
            let mut check: Vec<NodeId> = arrival.to_vec();
            check.sort_unstable();
            if check != sorted {
                return Err(format!("node {u}: arrival and sorted sets differ"));
            }
            if sorted.binary_search(&NodeId::new(u)).is_ok() {
                return Err(format!("node {u} knows itself"));
            }
            total += arrival.len() as u64;
        }
        if total != self.pairs {
            return Err(format!("pair counter {} != row total {total}", self.pairs));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn from_undirected_is_symmetric() {
        let g = generators::path(4);
        let k = Knowledge::from_undirected(&g);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(k.knows(NodeId(1), NodeId(0)));
        assert_eq!(k.known_pairs(), 6);
        k.validate().unwrap();
    }

    #[test]
    fn from_directed_is_asymmetric() {
        let g = generators::directed_path(3);
        let k = Knowledge::from_directed(&g);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(!k.knows(NodeId(1), NodeId(0)));
        assert_eq!(k.known_pairs(), 2);
    }

    #[test]
    fn learn_dedup_and_self() {
        let mut k = Knowledge::new(3);
        assert!(k.learn(NodeId(0), NodeId(1)));
        assert!(!k.learn(NodeId(0), NodeId(1)));
        assert!(!k.learn(NodeId(0), NodeId(0)));
        assert_eq!(k.known_pairs(), 1);
    }

    #[test]
    fn completeness() {
        let g = generators::complete(4);
        let k = Knowledge::from_undirected(&g);
        assert!(k.is_complete());
        let p = Knowledge::from_undirected(&generators::path(4));
        assert!(!p.is_complete());
    }

    #[test]
    fn arrival_order_is_a_stable_prefix() {
        // The throttled sender indexes cursors into this order; it must be
        // append-only even when learned ids are out of order.
        let mut k = Knowledge::new(6);
        for v in [5u32, 2, 4, 1] {
            k.learn(NodeId(0), NodeId(v));
        }
        assert_eq!(
            k.contacts(NodeId(0)),
            &[NodeId(5), NodeId(2), NodeId(4), NodeId(1)]
        );
        assert_eq!(
            k.sorted_contacts(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(4), NodeId(5)]
        );
        k.validate().unwrap();
    }

    #[test]
    fn absorb_merges_and_counts() {
        let mut k = Knowledge::new(5);
        k.learn(NodeId(1), NodeId(2));
        k.learn(NodeId(1), NodeId(3));
        // Node 0 absorbs node 1's contacts {2, 3} + sender 1 itself.
        let payload = k.sorted_contacts(NodeId(1)).to_vec();
        let gained = k.absorb(NodeId(0), NodeId(1), &payload);
        assert_eq!(gained, 3);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(k.knows(NodeId(0), NodeId(2)));
        assert!(k.knows(NodeId(0), NodeId(3)));
        // Absorbing again gains nothing.
        let payload = k.sorted_contacts(NodeId(1)).to_vec();
        assert_eq!(k.absorb(NodeId(0), NodeId(1), &payload), 0);
        k.validate().unwrap();
    }

    #[test]
    fn absorb_skips_own_address() {
        let mut k = Knowledge::new(3);
        k.learn(NodeId(1), NodeId(0)); // sender knows the destination
        let payload = k.sorted_contacts(NodeId(1)).to_vec();
        let gained = k.absorb(NodeId(0), NodeId(1), &payload);
        // 0 must not "learn" 0; only the sender 1 is news.
        assert_eq!(gained, 1);
        assert!(!k.knows(NodeId(0), NodeId(0)));
        k.validate().unwrap();
    }

    #[test]
    fn drop_member_forgets_in_both_directions() {
        // Asymmetric setup: 0 knows 2, 2 knows nothing of 0; 1 knows 2 and
        // 2 knows 1. Dropping 2 must erase its row AND every mention.
        let mut k = Knowledge::new(4);
        k.learn(NodeId(0), NodeId(2));
        k.learn(NodeId(1), NodeId(2));
        k.learn(NodeId(2), NodeId(1));
        k.learn(NodeId(2), NodeId(3));
        k.learn(NodeId(0), NodeId(1));
        assert_eq!(k.drop_member(NodeId(2)), 4);
        assert_eq!(k.known_pairs(), 1);
        assert!(!k.knows(NodeId(0), NodeId(2)));
        assert!(!k.knows(NodeId(1), NodeId(2)));
        assert!(k.count(NodeId(2)) == 0);
        assert!(k.knows(NodeId(0), NodeId(1)), "unrelated pair survives");
        k.validate().unwrap();
        // Arrival order of survivors is preserved (stable prefix).
        assert_eq!(k.contacts(NodeId(0)), &[NodeId(1)]);
        // Re-admission bootstraps symmetrically.
        assert_eq!(k.admit_member(NodeId(2), &[NodeId(0), NodeId(3)]), 4);
        assert!(k.knows(NodeId(2), NodeId(0)) && k.knows(NodeId(0), NodeId(2)));
        assert!(k.knows(NodeId(2), NodeId(3)) && k.knows(NodeId(3), NodeId(2)));
        k.validate().unwrap();
    }

    #[test]
    fn drop_member_degenerate_sizes() {
        let mut k1 = Knowledge::new(1);
        assert_eq!(k1.drop_member(NodeId(0)), 0);
        assert_eq!(
            k1.admit_member(NodeId(0), &[NodeId(0)]),
            0,
            "self-contact no-op"
        );
        k1.validate().unwrap();
        let mut k = Knowledge::from_undirected(&generators::complete(3));
        assert_eq!(k.drop_member(NodeId(1)), 4);
        assert_eq!(k.drop_member(NodeId(1)), 0, "double drop is a no-op");
        k.validate().unwrap();
    }

    #[test]
    fn memory_is_linear_in_pairs_not_quadratic_in_n() {
        // At n = 4096 the old per-node-bitmap layout held n²/8 = 2 MiB
        // before the first pair; the arena with a path's knowledge must be
        // orders of magnitude below that.
        let n = 4096;
        let k = Knowledge::from_undirected(&generators::path(n));
        assert!(
            k.memory_bytes() < n * n / 8 / 4,
            "knowledge uses {} bytes",
            k.memory_bytes()
        );
    }
}
