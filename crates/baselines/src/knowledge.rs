//! The knowledge graph: who knows whose address.
//!
//! Resource-discovery baselines operate on *directed knowledge*: `u` knowing
//! `v`'s address does not imply the converse (the paper's processes keep
//! knowledge symmetric; Name Dropper and Random Pointer Jump do not). Rows
//! reuse [`AdjSet`] so senders can sample uniform contacts in O(1) and
//! merges run word-parallel over the membership bitmaps.

use gossip_graph::{AdjSet, BitSet, DirectedGraph, NodeId, UndirectedGraph};
use rand::Rng;

/// Directed "who-knows-whom" state for `n` nodes.
///
/// ```
/// use gossip_baselines::Knowledge;
/// use gossip_graph::{generators, NodeId};
/// let k = Knowledge::from_undirected(&generators::path(3));
/// assert!(k.knows(NodeId(0), NodeId(1)));
/// assert!(!k.knows(NodeId(0), NodeId(2)));
/// assert_eq!(k.known_pairs(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Knowledge {
    contacts: Vec<AdjSet>,
    pairs: u64,
}

impl Knowledge {
    /// Empty knowledge (nobody knows anybody) over `n` nodes.
    pub fn new(n: usize) -> Self {
        Knowledge {
            contacts: (0..n).map(|_| AdjSet::new(n)).collect(),
            pairs: 0,
        }
    }

    /// Initializes from an undirected graph: knowledge is symmetric.
    pub fn from_undirected(g: &UndirectedGraph) -> Self {
        let mut k = Knowledge::new(g.n());
        for e in g.edges() {
            k.learn(e.a, e.b);
            k.learn(e.b, e.a);
        }
        k
    }

    /// Initializes from a digraph: `u -> v` means `u` knows `v`.
    pub fn from_directed(g: &DirectedGraph) -> Self {
        let mut k = Knowledge::new(g.n());
        for a in g.arcs() {
            k.learn(a.from, a.to);
        }
        k
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.contacts.len()
    }

    /// `u` learns `v`'s address. Returns `true` if it was news.
    /// Learning one's own address is a no-op.
    #[inline]
    pub fn learn(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if self.contacts[u.index()].insert(v) {
            self.pairs += 1;
            true
        } else {
            false
        }
    }

    /// Whether `u` knows `v`.
    #[inline]
    pub fn knows(&self, u: NodeId, v: NodeId) -> bool {
        self.contacts[u.index()].contains(v)
    }

    /// `u`'s contact list.
    #[inline]
    pub fn contacts(&self, u: NodeId) -> &AdjSet {
        &self.contacts[u.index()]
    }

    /// Number of contacts `u` knows.
    #[inline]
    pub fn count(&self, u: NodeId) -> usize {
        self.contacts[u.index()].len()
    }

    /// Uniformly random contact of `u`.
    #[inline]
    pub fn random_contact<R: Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        self.contacts[u.index()].sample(rng)
    }

    /// Total ordered known pairs (target: `n * (n-1)`).
    #[inline]
    pub fn known_pairs(&self) -> u64 {
        self.pairs
    }

    /// Whether every node knows every other node.
    #[inline]
    pub fn is_complete(&self) -> bool {
        let n = self.n() as u64;
        self.pairs == n * n.saturating_sub(1)
    }

    /// Merges an entire contact set (given as a bitmap) plus the sender's own
    /// address into `dst`'s knowledge. Returns how many addresses were new.
    pub fn absorb(&mut self, dst: NodeId, sender: NodeId, addresses: &BitSet) -> u64 {
        let mut gained = 0;
        // Learning proceeds bit-by-bit because the AdjSet's sampling vector
        // must stay in sync with its bitmap; the scan is still word-driven.
        for v in addresses.iter() {
            gained += self.learn(dst, NodeId::new(v)) as u64;
        }
        gained += self.learn(dst, sender) as u64;
        gained
    }

    /// Structural check for tests: pair counter consistent with rows.
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.contacts.iter().map(|c| c.len() as u64).sum();
        if total != self.pairs {
            return Err(format!("pair counter {} != row total {total}", self.pairs));
        }
        for (u, c) in self.contacts.iter().enumerate() {
            if c.contains(NodeId::new(u)) {
                return Err(format!("node {u} knows itself"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn from_undirected_is_symmetric() {
        let g = generators::path(4);
        let k = Knowledge::from_undirected(&g);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(k.knows(NodeId(1), NodeId(0)));
        assert_eq!(k.known_pairs(), 6);
        k.validate().unwrap();
    }

    #[test]
    fn from_directed_is_asymmetric() {
        let g = generators::directed_path(3);
        let k = Knowledge::from_directed(&g);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(!k.knows(NodeId(1), NodeId(0)));
        assert_eq!(k.known_pairs(), 2);
    }

    #[test]
    fn learn_dedup_and_self() {
        let mut k = Knowledge::new(3);
        assert!(k.learn(NodeId(0), NodeId(1)));
        assert!(!k.learn(NodeId(0), NodeId(1)));
        assert!(!k.learn(NodeId(0), NodeId(0)));
        assert_eq!(k.known_pairs(), 1);
    }

    #[test]
    fn completeness() {
        let g = generators::complete(4);
        let k = Knowledge::from_undirected(&g);
        assert!(k.is_complete());
        let p = Knowledge::from_undirected(&generators::path(4));
        assert!(!p.is_complete());
    }

    #[test]
    fn absorb_merges_and_counts() {
        let mut k = Knowledge::new(5);
        k.learn(NodeId(1), NodeId(2));
        k.learn(NodeId(1), NodeId(3));
        // Node 0 absorbs node 1's contacts {2, 3} + sender 1 itself.
        let bits = k.contacts(NodeId(1)).membership().clone();
        let gained = k.absorb(NodeId(0), NodeId(1), &bits);
        assert_eq!(gained, 3);
        assert!(k.knows(NodeId(0), NodeId(1)));
        assert!(k.knows(NodeId(0), NodeId(2)));
        assert!(k.knows(NodeId(0), NodeId(3)));
        // Absorbing again gains nothing.
        let bits = k.contacts(NodeId(1)).membership().clone();
        assert_eq!(k.absorb(NodeId(0), NodeId(1), &bits), 0);
        k.validate().unwrap();
    }

    #[test]
    fn absorb_skips_own_address() {
        let mut k = Knowledge::new(3);
        k.learn(NodeId(1), NodeId(0)); // sender knows the destination
        let bits = k.contacts(NodeId(1)).membership().clone();
        let gained = k.absorb(NodeId(0), NodeId(1), &bits);
        // 0 must not "learn" 0; only the sender 1 is news.
        assert_eq!(gained, 1);
        assert!(!k.knows(NodeId(0), NodeId(0)));
        k.validate().unwrap();
    }
}
