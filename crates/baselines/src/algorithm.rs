//! The common harness interface for discovery baselines.

use crate::knowledge::Knowledge;

/// Per-round message accounting. `bits` assume each address costs
/// `id_bits = ceil(log2 n)` bits, the paper's `O(log n)` unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundIO {
    /// Messages sent this round.
    pub messages: u64,
    /// Total bits across all messages.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Addresses newly learned this round (progress measure).
    pub learned: u64,
}

/// Aggregate outcome of running an algorithm to completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiscoveryOutcome {
    /// Rounds executed.
    pub rounds: u64,
    /// Whether full discovery was reached within the budget.
    pub complete: bool,
    /// Total bits sent over the whole run.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u64,
    /// Total messages sent.
    pub total_messages: u64,
}

/// A synchronous-round discovery algorithm over a [`Knowledge`] state.
pub trait DiscoveryAlgorithm {
    /// Executes one synchronous round.
    fn step(&mut self) -> RoundIO;

    /// Current knowledge state.
    fn knowledge(&self) -> &Knowledge;

    /// Rounds executed so far.
    fn round(&self) -> u64;

    /// Algorithm name for result tables.
    fn name(&self) -> &'static str;

    /// Whether discovery is complete.
    fn is_complete(&self) -> bool {
        self.knowledge().is_complete()
    }

    /// Runs until complete or `max_rounds`, accumulating message accounting.
    fn run_to_completion(&mut self, max_rounds: u64) -> DiscoveryOutcome {
        let mut total_bits = 0;
        let mut total_messages = 0;
        let mut max_message = 0;
        let start = self.round();
        while !self.is_complete() && self.round() - start < max_rounds {
            let io = self.step();
            total_bits += io.bits;
            total_messages += io.messages;
            max_message = max_message.max(io.max_message_bits);
        }
        DiscoveryOutcome {
            rounds: self.round() - start,
            complete: self.is_complete(),
            total_bits,
            max_message_bits: max_message,
            total_messages,
        }
    }
}

/// Bits needed to name one node among `n`: `ceil(log2 n)`, minimum 1.
pub fn id_bits(n: usize) -> u64 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1024), 10);
        assert_eq!(id_bits(1025), 11);
    }
}
