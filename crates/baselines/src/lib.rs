//! # gossip-baselines
//!
//! The resource-discovery algorithms the paper positions itself against,
//! implemented over a shared directed [`knowledge::Knowledge`] state with
//! byte-honest message accounting:
//!
//! * [`NameDropper`] — Harchol-Balter–Leighton–Lewin (PODC 1999): random
//!   neighbor gets your whole contact list. `O(log² n)` rounds, `Θ(n log n)`
//!   bits per message.
//! * [`PointerJump`] — pull variant from the same lineage: learn all
//!   contacts of a random contact.
//! * [`ThrottledNameDropper`] — Name Dropper under the paper's
//!   `O(log n)`-bits-per-message constraint, with the per-destination cursor
//!   state the paper says such an adaptation requires.
//! * [`Flooding`] — deterministic diameter-round completion at maximum
//!   bandwidth; the round-complexity envelope.
//!
//! The push/pull processes themselves live in `gossip-core`; experiment
//! `exp_baselines` puts all of them in one table (rounds vs message size vs
//! total traffic).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod flooding;
pub mod knowledge;
pub mod name_dropper;
pub mod pointer_jump;
pub mod throttled;

pub use algorithm::{id_bits, DiscoveryAlgorithm, DiscoveryOutcome, RoundIO};
pub use flooding::Flooding;
pub use knowledge::Knowledge;
pub use name_dropper::NameDropper;
pub use pointer_jump::PointerJump;
pub use throttled::ThrottledNameDropper;
