//! The Random Pointer Jump algorithm — the pull-flavored baseline the paper
//! cites from reference \[16\]: "each node gets to know all the neighbors of a random
//! neighbor in each step."

use crate::algorithm::{id_bits, DiscoveryAlgorithm, RoundIO};
use crate::knowledge::Knowledge;
use gossip_core::rng::stream_rng;
use gossip_core::{Effects, LocalView, NodeState, PointerJumpKernel, ProtocolKernel, RngChooser};
use gossip_graph::NodeId;

/// Random Pointer Jump state.
#[derive(Clone, Debug)]
pub struct PointerJump {
    knowledge: Knowledge,
    seed: u64,
    round: u64,
    id_bits: u64,
}

impl PointerJump {
    /// Starts from the given knowledge state.
    pub fn new(knowledge: Knowledge, seed: u64) -> Self {
        let n = knowledge.n();
        PointerJump {
            knowledge,
            seed,
            round: 0,
            id_bits: id_bits(n),
        }
    }
}

impl DiscoveryAlgorithm for PointerJump {
    fn step(&mut self) -> RoundIO {
        let n = self.knowledge.n();
        // Phase 1: the kernel picks the contact to pull from (a
        // `Share::PullRequest` aimed at the pick); snapshot payloads.
        let mut pulls: Vec<Option<NodeId>> = vec![None; n];
        let mut effects = Effects::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            let mut rng = stream_rng(self.seed, self.round, u as u64);
            effects.clear();
            PointerJumpKernel.on_round(
                &mut NodeState::Stateless,
                &LocalView {
                    me: NodeId::new(u),
                    contacts: self.knowledge.contacts(NodeId::new(u)),
                },
                &mut RngChooser(&mut rng),
                &mut effects,
            );
            pulls[u] = effects.shares.first().map(|&(v, _)| v);
        }
        // Round-start snapshot: one O(pairs) clone of the sorted arena,
        // not n bitmap copies.
        let snapshot = self.knowledge.sorted_snapshot();
        // Phase 2: each u absorbs its target's round-start list. A pull
        // costs one request message (one id) plus the reply.
        let mut io = RoundIO::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            if let Some(v) = pulls[u] {
                let payload = snapshot.slice(v.index());
                let reply_bits = (payload.len() as u64 + 1) * self.id_bits;
                let request_bits = self.id_bits;
                io.messages += 2;
                io.bits += request_bits + reply_bits;
                io.max_message_bits = io.max_message_bits.max(reply_bits);
                io.learned += self.knowledge.absorb(NodeId::new(u), v, payload);
            }
        }
        self.round += 1;
        io
    }

    fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn name(&self) -> &'static str {
        "pointer-jump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn completes_connected_graphs() {
        for (g, budget) in [
            (generators::star(24), 2_000u64),
            (generators::path(24), 5_000),
            (generators::cycle(24), 5_000),
        ] {
            let mut pj = PointerJump::new(Knowledge::from_undirected(&g), 2);
            let out = pj.run_to_completion(budget);
            assert!(out.complete, "{} rounds insufficient", budget);
            pj.knowledge().validate().unwrap();
        }
    }

    #[test]
    fn pull_direction_is_correct() {
        // Knowledge 0 -> 1 only. Node 0 pulls 1's (empty) list and learns
        // nothing new beyond 1 (already known). Node 1 knows nobody, pulls
        // nothing. After one round: 1 still ignorant of 0 (pull, not push).
        let mut k = Knowledge::new(2);
        k.learn(NodeId(0), NodeId(1));
        let mut pj = PointerJump::new(k, 9);
        pj.step();
        assert!(!pj.knowledge().knows(NodeId(1), NodeId(0)));
        assert!(pj.knowledge().knows(NodeId(0), NodeId(1)));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::cycle(16);
        let k = Knowledge::from_undirected(&g);
        let a = PointerJump::new(k.clone(), 4).run_to_completion(10_000);
        let b = PointerJump::new(k, 4).run_to_completion(10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn reply_messages_account_bits() {
        let g = generators::complete(8);
        let mut pj = PointerJump::new(Knowledge::from_undirected(&g), 1);
        let io = pj.step();
        // Complete: every node pulls; 16 messages (8 requests + 8 replies).
        assert_eq!(io.messages, 16);
        // Each reply carries 7 contacts + sender = 8 ids of 3 bits.
        assert_eq!(io.max_message_bits, 8 * 3);
        assert_eq!(io.learned, 0); // everyone already knows everyone
    }
}
