//! Deterministic flooding: every node sends everything it knows to *all* of
//! its **original** neighbors each round. Completes in `diameter(G_0)`
//! rounds — the round-complexity lower envelope for any local algorithm —
//! at the maximum possible bandwidth. Used as the reference point in the
//! baseline comparison table.

use crate::algorithm::{id_bits, DiscoveryAlgorithm, RoundIO};
use crate::knowledge::Knowledge;
use gossip_core::{Effects, FloodingKernel, LocalView, NoDraws, NodeState, ProtocolKernel};
use gossip_graph::{NodeId, UndirectedGraph};

/// Flooding state. Floods along the fixed initial topology (flooding over
/// the growing knowledge graph would trivially finish in O(1) rounds while
/// sending Θ(n²) messages — not a meaningful baseline).
#[derive(Clone, Debug)]
pub struct Flooding {
    knowledge: Knowledge,
    topology: UndirectedGraph,
    round: u64,
    id_bits: u64,
}

impl Flooding {
    /// Floods over `g0`, starting from its adjacency as initial knowledge.
    pub fn new(g0: &UndirectedGraph) -> Self {
        Flooding {
            knowledge: Knowledge::from_undirected(g0),
            topology: g0.clone(),
            round: 0,
            id_bits: id_bits(g0.n()),
        }
    }
}

impl DiscoveryAlgorithm for Flooding {
    fn step(&mut self) -> RoundIO {
        let n = self.knowledge.n();
        // Round-start snapshot: one O(pairs) clone of the sorted arena,
        // not n bitmap copies.
        let snapshot = self.knowledge.sorted_snapshot();
        let mut io = RoundIO::default();
        let mut effects = Effects::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            let payload = snapshot.slice(u);
            let msg_bits = (payload.len() as u64 + 1) * self.id_bits;
            // The kernel decides the fan-out (every topology neighbor, in
            // row order); the runtime materializes each `KnownList` share
            // as the round-start payload.
            effects.clear();
            FloodingKernel.on_round(
                &mut NodeState::Stateless,
                &LocalView {
                    me: NodeId::new(u),
                    contacts: self.topology.neighbors(NodeId::new(u)).as_slice(),
                },
                &mut NoDraws,
                &mut effects,
            );
            for &(v, _) in &effects.shares {
                io.messages += 1;
                io.bits += msg_bits;
                io.max_message_bits = io.max_message_bits.max(msg_bits);
                io.learned += self.knowledge.absorb(v, NodeId::new(u), payload);
            }
        }
        self.round += 1;
        io
    }

    fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn name(&self) -> &'static str {
        "flooding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;
    use gossip_graph::traversal::diameter;

    #[test]
    fn completes_in_diameter_minus_one_rounds() {
        // After round t, u knows everything within distance t+1 of u
        // (initial knowledge already covers distance 1).
        for g in [
            generators::path(17),
            generators::cycle(16),
            generators::binary_tree(31),
        ] {
            let d = diameter(&g).unwrap() as u64;
            let mut f = Flooding::new(&g);
            let out = f.run_to_completion(10_000);
            assert!(out.complete);
            assert_eq!(out.rounds, d.saturating_sub(1), "diameter {d}");
        }
    }

    #[test]
    fn complete_graph_needs_zero_rounds() {
        let g = generators::complete(8);
        let mut f = Flooding::new(&g);
        let out = f.run_to_completion(10);
        assert!(out.complete);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn floods_only_along_initial_edges() {
        let g = generators::path(5);
        let mut f = Flooding::new(&g);
        f.step();
        // Node 0 learns distance-2 node but cannot have received anything
        // from beyond its single neighbor's reach.
        assert!(f.knowledge().knows(NodeId(0), NodeId(2)));
        assert!(!f.knowledge().knows(NodeId(0), NodeId(4)));
    }
}
