//! Bandwidth-throttled Name Dropper.
//!
//! The paper (§1, Applications) notes that Θ(n)-address messages can be
//! "spread ... over a linear number of rounds, but this requires coordination
//! and maintaining state". This implements that approach so the trade-off is
//! measurable: each node sends at most `budget` addresses per round to a
//! random contact, tracking per-destination cursors so it never re-sends an
//! address to the same destination (the "state" the paper is referring to).

use crate::algorithm::{id_bits, DiscoveryAlgorithm, RoundIO};
use crate::knowledge::Knowledge;
use gossip_core::rng::stream_rng;
use gossip_core::{
    Effects, LocalView, NodeState, ProtocolKernel, RngChooser, Share, ThrottledKernel,
};
use gossip_graph::NodeId;

/// Throttled Name Dropper state.
#[derive(Clone, Debug)]
pub struct ThrottledNameDropper {
    knowledge: Knowledge,
    seed: u64,
    round: u64,
    id_bits: u64,
    kernel: ThrottledKernel,
    /// Per-node kernel state: `NodeState::Cursors`, where node `u`'s entry
    /// `v` counts how many of `u`'s contacts (in arrival order, a stable
    /// prefix because knowledge rows only append) have been shipped to `v`.
    /// O(n²) u32s of state — the cost of coordination the paper mentions.
    states: Vec<NodeState>,
}

impl ThrottledNameDropper {
    /// Starts from the given knowledge; each message carries at most
    /// `budget` addresses (plus the implicit sender address).
    pub fn new(knowledge: Knowledge, budget: usize, seed: u64) -> Self {
        assert!(budget >= 1, "budget must be >= 1");
        let n = knowledge.n();
        ThrottledNameDropper {
            knowledge,
            seed,
            round: 0,
            id_bits: id_bits(n),
            kernel: ThrottledKernel { budget },
            states: vec![NodeState::Cursors(vec![0; n]); n],
        }
    }
}

impl DiscoveryAlgorithm for ThrottledNameDropper {
    fn step(&mut self) -> RoundIO {
        let n = self.knowledge.n();
        // Phase 1: each node's kernel picks a destination and the next
        // cursor window of its *round-start* list (the row it sees is the
        // pre-round prefix, so the clamp is synchronous by construction),
        // advancing its per-destination cursor.
        let mut sends: Vec<Option<(NodeId, Share)>> = vec![None; n];
        let mut effects = Effects::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            let mut rng = stream_rng(self.seed, self.round, u as u64);
            effects.clear();
            self.kernel.on_round(
                &mut self.states[u],
                &LocalView {
                    me: NodeId::new(u),
                    contacts: self.knowledge.contacts(NodeId::new(u)),
                },
                &mut RngChooser(&mut rng),
                &mut effects,
            );
            sends[u] = effects.shares.first().copied();
        }
        // Phase 2: materialize each window against the arrival-ordered
        // lists (stable prefixes: entries only append, so the phase-1
        // window still denotes the same contacts) and deliver.
        let mut io = RoundIO::default();
        #[allow(clippy::needless_range_loop)] // u is simultaneously a NodeId
        for u in 0..n {
            let Some((v, Share::Slice { start, len })) = sends[u] else {
                continue;
            };
            let (start, len) = (start as usize, len as usize);
            // Copy the slice out to appease the borrow checker; at most
            // `budget` ids.
            let chunk: Vec<NodeId> =
                self.knowledge.contacts(NodeId::new(u))[start..start + len].to_vec();
            let msg_bits = (chunk.len() as u64 + 1) * self.id_bits;
            io.messages += 1;
            io.bits += msg_bits;
            io.max_message_bits = io.max_message_bits.max(msg_bits);
            io.learned += self.knowledge.learn(v, NodeId::new(u)) as u64;
            for w in chunk {
                io.learned += self.knowledge.learn(v, w) as u64;
            }
        }
        self.round += 1;
        io
    }

    fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn name(&self) -> &'static str {
        "throttled-nd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn message_size_respects_budget() {
        let g = generators::complete(32);
        let mut t = ThrottledNameDropper::new(Knowledge::from_undirected(&g), 2, 1);
        for _ in 0..20 {
            let io = t.step();
            // At most budget + 1 (sender) addresses per message.
            assert!(io.max_message_bits <= 3 * id_bits(32));
        }
    }

    #[test]
    fn completes_eventually() {
        let g = generators::star(16);
        let mut t = ThrottledNameDropper::new(Knowledge::from_undirected(&g), 1, 2);
        let out = t.run_to_completion(100_000);
        assert!(out.complete);
        t.knowledge().validate().unwrap();
    }

    #[test]
    fn slower_than_unthrottled() {
        use crate::name_dropper::NameDropper;
        let g = generators::gnm_connected(48, 96, &mut gossip_core::rng::stream_rng(3, 0, 0));
        let k = Knowledge::from_undirected(&g);
        let full = NameDropper::new(k.clone(), 5).run_to_completion(100_000);
        let thin = ThrottledNameDropper::new(k, 1, 5).run_to_completion(100_000);
        assert!(full.complete && thin.complete);
        assert!(
            thin.rounds > full.rounds,
            "throttled {} rounds vs full {}",
            thin.rounds,
            full.rounds
        );
        // ... but with far smaller messages.
        assert!(thin.max_message_bits < full.max_message_bits);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn rejects_zero_budget() {
        let _ = ThrottledNameDropper::new(Knowledge::new(4), 0, 1);
    }
}
