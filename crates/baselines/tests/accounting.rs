//! Cross-algorithm accounting invariants: the RoundIO ledger must agree
//! with the knowledge state it claims to describe.

use gossip_baselines::{
    id_bits, DiscoveryAlgorithm, Flooding, Knowledge, NameDropper, PointerJump,
    ThrottledNameDropper,
};
use gossip_graph::generators;
use proptest::prelude::*;

fn algos(
    k: &Knowledge,
    g: &gossip_graph::UndirectedGraph,
    seed: u64,
) -> Vec<Box<dyn DiscoveryAlgorithm>> {
    vec![
        Box::new(NameDropper::new(k.clone(), seed)),
        Box::new(PointerJump::new(k.clone(), seed)),
        Box::new(ThrottledNameDropper::new(k.clone(), 2, seed)),
        Box::new(Flooding::new(g)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sum of per-round `learned` equals the growth in known pairs, for
    /// every algorithm, on random connected graphs.
    #[test]
    fn learned_ledger_matches_knowledge_growth(seed in any::<u64>(), n in 4usize..24) {
        let mut rng = gossip_core::rng::stream_rng(seed, 0, 0);
        let g = generators::random_tree(n, &mut rng);
        let k0 = Knowledge::from_undirected(&g);
        let before = k0.known_pairs();
        for mut algo in algos(&k0, &g, seed) {
            let mut learned_total = 0;
            for _ in 0..30 {
                learned_total += algo.step().learned;
                algo.knowledge().validate().unwrap();
            }
            prop_assert_eq!(
                learned_total,
                algo.knowledge().known_pairs() - before,
                "{} ledger mismatch",
                algo.name()
            );
        }
    }

    /// Message bits are always at least one id per message and never exceed
    /// the full-directory payload.
    #[test]
    fn message_bits_bounded(seed in any::<u64>(), n in 4usize..24) {
        let mut rng = gossip_core::rng::stream_rng(seed, 1, 0);
        let g = generators::random_tree(n, &mut rng);
        let k0 = Knowledge::from_undirected(&g);
        let full = (n as u64 + 1) * id_bits(n);
        for mut algo in algos(&k0, &g, seed) {
            for _ in 0..20 {
                let io = algo.step();
                if io.messages > 0 {
                    prop_assert!(io.max_message_bits >= id_bits(n));
                    prop_assert!(io.max_message_bits <= full);
                    prop_assert!(io.bits >= io.messages * id_bits(n));
                }
            }
        }
    }

    /// All algorithms reach the same fixed point (complete knowledge) on
    /// random connected graphs.
    #[test]
    fn shared_fixed_point(seed in any::<u64>(), n in 4usize..16) {
        let mut rng = gossip_core::rng::stream_rng(seed, 2, 0);
        let g = generators::random_tree(n, &mut rng);
        let k0 = Knowledge::from_undirected(&g);
        for mut algo in algos(&k0, &g, seed) {
            let out = algo.run_to_completion(1_000_000);
            prop_assert!(out.complete, "{} incomplete", algo.name());
            prop_assert!(algo.knowledge().is_complete());
        }
    }
}
