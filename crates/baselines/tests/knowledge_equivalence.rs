//! The arena-backed [`Knowledge`] store against an `AdjSet`-backed
//! reference model: identical contact sets, identical arrival order, and
//! identical `known_pairs()` under random learn/absorb sequences.
//! Seeded — failures print `PROPTEST_SEED=<n>` for replay.

use gossip_baselines::Knowledge;
use gossip_graph::{AdjSet, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The previous storage layout, kept as the test oracle: one `AdjSet` row
/// per node (insertion-ordered list + bitmap membership).
struct AdjSetModel {
    rows: Vec<AdjSet>,
    pairs: u64,
}

impl AdjSetModel {
    fn new(n: usize) -> Self {
        AdjSetModel {
            rows: (0..n).map(|_| AdjSet::new(n)).collect(),
            pairs: 0,
        }
    }

    fn learn(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        if self.rows[u.index()].insert(v) {
            self.pairs += 1;
            true
        } else {
            false
        }
    }

    /// The old absorb: iterate the sender's bitmap ascending, then the
    /// sender itself — the order the arena port must reproduce.
    fn absorb(&mut self, dst: NodeId, sender: NodeId) -> u64 {
        let payload: Vec<usize> = self.rows[sender.index()].membership().iter().collect();
        let mut gained = 0;
        for v in payload {
            gained += self.learn(dst, NodeId::new(v)) as u64;
        }
        gained += self.learn(dst, sender) as u64;
        gained
    }
}

proptest! {
    /// Random interleavings of `learn` and `absorb` leave both stores with
    /// the same pair count, the same membership, and the same
    /// arrival-ordered contact lists (the sampling surface — equality here
    /// means bit-identical baseline trajectories across the port).
    #[test]
    fn arena_knowledge_matches_adjset_model(
        seed in any::<u64>(),
        n in 2usize..40,
        ops in 1usize..300,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = Knowledge::new(n);
        let mut model = AdjSetModel::new(n);
        for _ in 0..ops {
            let u = NodeId(rng.random_range(0..n as u32));
            let v = NodeId(rng.random_range(0..n as u32));
            if rng.random_range(0..4u32) == 0 {
                // Absorb u's whole list into v, the way the baselines do:
                // sorted payload + sender address.
                let payload = arena.sorted_contacts(u).to_vec();
                let got = arena.absorb(v, u, &payload);
                let want = model.absorb(v, u);
                prop_assert_eq!(got, want, "absorb({:?} <- {:?})", v, u);
            } else {
                prop_assert_eq!(arena.learn(u, v), model.learn(u, v));
            }
        }
        prop_assert_eq!(arena.known_pairs(), model.pairs);
        for u in 0..n {
            let u = NodeId::new(u);
            let model_row: Vec<NodeId> = model.rows[u.index()].iter().collect();
            prop_assert_eq!(arena.contacts(u), &model_row[..], "arrival order at {:?}", u);
            for v in 0..n {
                let v = NodeId::new(v);
                prop_assert_eq!(arena.knows(u, v), model.rows[u.index()].contains(v));
            }
        }
        arena.validate().unwrap();
    }
}
