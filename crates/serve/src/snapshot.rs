//! Epoch snapshots: immutable views of a live engine's graph.
//!
//! The service never lets readers touch the engine's working graph — every
//! read goes through the most recently *published* [`Snapshot`], an
//! immutable clone taken between rounds. Cheapness is the whole design:
//! for [`ShardedArenaGraph`](gossip_graph::ShardedArenaGraph) a clone is
//! O(S) Arc bumps (copy-on-write segments, see `gossip-graph`'s sharded
//! module docs), so publishing a snapshot of a million-node graph costs
//! nanoseconds-per-shard, not a deep copy of every adjacency slab. Readers
//! hold an `Arc<Snapshot<G>>`, so a snapshot stays valid for as long as any
//! query still references it, regardless of how many epochs the engine has
//! advanced since.

use crate::query::GraphQuery;
use gossip_core::GossipGraph;
use gossip_graph::NodeId;

/// One published epoch: the graph as it stood after `round` rounds.
#[derive(Clone, Debug)]
pub struct Snapshot<G> {
    /// Publish counter — strictly increasing, starting at 0 for the
    /// pre-round snapshot of the initial graph.
    pub epoch: u64,
    /// Engine quanta executed when this snapshot was taken.
    pub round: u64,
    /// The graph at that instant. For CoW backends this shares storage
    /// with the live graph until the engine next writes.
    pub graph: G,
}

/// Aggregate statistics computed from one snapshot — the "how far along is
/// discovery" read, O(n) per call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverageStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: u64,
    /// Minimum degree across nodes.
    pub min_degree: usize,
    /// Maximum degree across nodes.
    pub max_degree: usize,
    /// Mean degree (`2m / n`).
    pub mean_degree: f64,
    /// Fraction of the complete graph discovered, in `[0, 1]`.
    pub coverage: f64,
    /// Whether the discovery process has converged.
    pub complete: bool,
}

impl<G: GossipGraph> Snapshot<G> {
    /// Nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Edges in the snapshot.
    pub fn edge_count(&self) -> u64 {
        self.graph.edge_count()
    }
}

impl<G: GraphQuery> Snapshot<G> {
    /// Who-knows-whom: the neighbor list of `u` at this epoch.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.graph.neighbors(u)
    }

    /// Whether `u` had discovered `v` by this epoch.
    pub fn knows(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }

    /// Degree of `u` at this epoch.
    pub fn degree(&self, u: NodeId) -> usize {
        self.graph.degree(u)
    }

    /// Degree / coverage / convergence aggregates. Walks every node once.
    pub fn stats(&self) -> CoverageStats {
        let n = self.graph.node_count();
        let m = self.graph.edge_count();
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for u in 0..n {
            let d = self.graph.degree(NodeId::new(u));
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if n == 0 {
            lo = 0;
        }
        let target = self.graph.complete_edge_target();
        CoverageStats {
            nodes: n,
            edges: m,
            min_degree: lo,
            max_degree: hi,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            coverage: if target == 0 {
                1.0
            } else {
                m as f64 / target as f64
            },
            complete: self.graph.is_complete(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn stats_on_a_star() {
        let g = generators::star(8);
        let snap = Snapshot {
            epoch: 0,
            round: 0,
            graph: g,
        };
        let s = snap.stats();
        assert_eq!(s.nodes, 8);
        assert_eq!(s.edges, 7);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 7);
        assert!(!s.complete);
        assert!((s.coverage - 7.0 / 28.0).abs() < 1e-12);
        assert!(snap.knows(NodeId(0), NodeId(5)) && !snap.knows(NodeId(1), NodeId(2)));
        assert_eq!(snap.degree(NodeId(0)), 7);
    }
}
