//! Stock listeners for the serve loop.
//!
//! Each plugin is an ordinary [`RoundListener`] plus a thread-safe handle
//! to its output: the listener rides the worker thread inside the
//! service's [`ListenerSet`](gossip_core::ListenerSet), the handle stays
//! with the caller. Three are provided — live counters
//! ([`MetricsCounters`]), a growth-curve recorder
//! ([`TrajectoryRecorder`]), and a JSON-lines replay log ([`ReplayLog`]) —
//! and anything else that implements [`RoundListener`] plugs in the same
//! way via [`GossipService::spawn_with`](crate::GossipService::spawn_with).

use gossip_core::listener::{RoundControl, RoundEvent, RoundListener};
use gossip_core::GossipGraph;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Live counters updated once per round; read them from any thread while
/// the engine runs.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Rounds executed.
    pub rounds: AtomicU64,
    /// Edges proposed, cumulative (duplicates included).
    pub proposed: AtomicU64,
    /// Edges actually added, cumulative.
    pub added: AtomicU64,
    /// Current edge count.
    pub edges: AtomicU64,
}

/// Listener half of the metrics plugin.
pub struct MetricsCounters {
    out: Arc<ServiceMetrics>,
}

impl MetricsCounters {
    /// Creates the listener and the shared counters it updates.
    pub fn new() -> (Self, Arc<ServiceMetrics>) {
        let out = Arc::new(ServiceMetrics::default());
        (MetricsCounters { out: out.clone() }, out)
    }
}

impl<G: GossipGraph> RoundListener<G> for MetricsCounters {
    fn on_round(&mut self, ev: &RoundEvent<'_, G>) -> RoundControl {
        self.out.rounds.store(ev.round, Ordering::Release);
        self.out
            .proposed
            .fetch_add(ev.stats.proposed, Ordering::Relaxed);
        self.out.added.fetch_add(ev.stats.added, Ordering::Relaxed);
        self.out
            .edges
            .store(ev.graph.edge_count(), Ordering::Release);
        RoundControl::Continue
    }
}

/// One point on the discovery growth curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Round the sample was taken after.
    pub round: u64,
    /// Edge count at that round.
    pub edges: u64,
    /// Edges added in that round.
    pub added: u64,
}

/// Records `(round, edges, added)` every `every` rounds — the serve-side
/// equivalent of the batch `SeriesRecorder`, but backend-agnostic and
/// readable mid-run through its handle.
pub struct TrajectoryRecorder {
    out: Arc<Mutex<Vec<TrajectoryPoint>>>,
    every: u64,
}

impl TrajectoryRecorder {
    /// Creates the listener and the shared series it appends to.
    /// `every` is clamped to ≥ 1.
    pub fn new(every: u64) -> (Self, Arc<Mutex<Vec<TrajectoryPoint>>>) {
        let out = Arc::new(Mutex::new(Vec::new()));
        (
            TrajectoryRecorder {
                out: out.clone(),
                every: every.max(1),
            },
            out,
        )
    }
}

impl<G: GossipGraph> RoundListener<G> for TrajectoryRecorder {
    fn on_round(&mut self, ev: &RoundEvent<'_, G>) -> RoundControl {
        if ev.round.is_multiple_of(self.every) {
            self.out
                .lock()
                .expect("trajectory lock poisoned")
                .push(TrajectoryPoint {
                    round: ev.round,
                    edges: ev.graph.edge_count(),
                    added: ev.stats.added,
                });
        }
        RoundControl::Continue
    }
}

/// Appends one JSON object per round to a shared string buffer —
/// `{"round":..,"proposed":..,"added":..,"edges":..}` — enough to audit or
/// replay a served run round by round.
pub struct ReplayLog {
    out: Arc<Mutex<String>>,
}

impl ReplayLog {
    /// Creates the listener and the shared JSON-lines buffer.
    pub fn new() -> (Self, Arc<Mutex<String>>) {
        let out = Arc::new(Mutex::new(String::new()));
        (ReplayLog { out: out.clone() }, out)
    }
}

impl<G: GossipGraph> RoundListener<G> for ReplayLog {
    fn on_round(&mut self, ev: &RoundEvent<'_, G>) -> RoundControl {
        let mut log = self.out.lock().expect("replay lock poisoned");
        writeln!(
            log,
            "{{\"round\":{},\"proposed\":{},\"added\":{},\"edges\":{}}}",
            ev.round,
            ev.stats.proposed,
            ev.stats.added,
            ev.graph.edge_count()
        )
        .expect("write to in-memory replay log");
        RoundControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{GossipService, ServeConfig};
    use gossip_core::{EngineBuilder, ListenerSet, Push};
    use gossip_graph::generators;

    #[test]
    fn plugins_ride_the_serve_loop() {
        let g = generators::star(32);
        let engine = EngineBuilder::new(g, Push, 17).build();
        let (metrics_l, metrics) = MetricsCounters::new();
        let (traj_l, traj) = TrajectoryRecorder::new(5);
        let (log_l, log) = ReplayLog::new();
        let listeners = ListenerSet::new().with(metrics_l).with(traj_l).with(log_l);
        let svc = GossipService::spawn_with(
            engine,
            ServeConfig {
                snapshot_every: 10,
                budget: 20,
            },
            listeners,
        );
        let (engine, out) = svc.join();
        assert_eq!(out.rounds, 20);
        assert_eq!(metrics.rounds.load(Ordering::Acquire), 20);
        assert_eq!(
            metrics.edges.load(Ordering::Acquire),
            engine.graph().edge_count()
        );
        let traj = traj.lock().unwrap();
        assert_eq!(traj.len(), 4); // rounds 5, 10, 15, 20
        assert!(traj.windows(2).all(|w| w[0].edges <= w[1].edges));
        let log = log.lock().unwrap();
        assert_eq!(log.lines().count(), 20);
        assert!(log.lines().next().unwrap().starts_with("{\"round\":1,"));
    }
}
