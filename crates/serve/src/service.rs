//! The resident service: one worker thread advancing an engine, any number
//! of reader threads querying published snapshots.
//!
//! ## The loop
//!
//! [`GossipService::spawn`] takes ownership of any [`RoundEngine`] — the
//! sequential engine, the async engine, the sharded engine, or a boxed
//! runtime choice from `EngineBuilder::build_boxed` — and drives it on a
//! dedicated thread through the same [`run_engine_listened`] loop every
//! batch experiment uses. Serving adds exactly one listener to that loop: a
//! snapshot publisher that, every `snapshot_every` rounds, clones the graph
//! and swaps it into an `RwLock<Arc<Snapshot>>`. Because the engine's
//! trajectory is a pure function of `(graph, rule, seed)` and the publisher
//! only *reads* the graph between rounds, a served run is bit-identical to
//! the same configuration run in batch — the determinism suite pins this.
//!
//! ## Readers
//!
//! [`ServiceHandle`] is `Clone + Send`; any thread holding one can grab the
//! current snapshot (`Arc` clone under a read lock — no copying), then
//! query it for as long as it likes while the engine races ahead. Writers
//! never block readers for longer than one pointer swap.

use crate::snapshot::Snapshot;
use gossip_core::listener::{ListenerSet, RoundControl, RoundEvent, RoundListener};
use gossip_core::seam::{run_engine_listened, RoundEngine};
use gossip_core::{Chain, GossipGraph, RunOutcome};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Publish a snapshot every this-many rounds (clamped to ≥ 1). The
    /// initial graph is always published as epoch 0, and the final graph
    /// is always published when the run ends.
    pub snapshot_every: u64,
    /// Round budget for the run; `u64::MAX` serves until
    /// [`GossipService::stop`] or a listener votes stop.
    pub budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            snapshot_every: 1,
            budget: u64::MAX,
        }
    }
}

/// Why and where the serve loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Total quanta the engine had executed when the loop ended.
    pub rounds: u64,
    /// `true` if a listener (convergence check, stop request) ended the
    /// run; `false` if the budget ran out.
    pub listener_stopped: bool,
    /// Snapshots published over the service's lifetime (≥ 2: initial +
    /// final, unless the run never started).
    pub epochs: u64,
}

struct Shared<G> {
    snap: RwLock<Arc<Snapshot<G>>>,
    epoch: AtomicU64,
    rounds: AtomicU64,
    stop: AtomicBool,
}

/// Cloneable, thread-safe read handle onto a running (or stopped) service.
pub struct ServiceHandle<G> {
    shared: Arc<Shared<G>>,
}

impl<G> Clone for ServiceHandle<G> {
    fn clone(&self) -> Self {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }
}

impl<G> ServiceHandle<G> {
    /// The most recently published snapshot. One `Arc` clone under a read
    /// lock; the returned snapshot stays valid indefinitely.
    pub fn snapshot(&self) -> Arc<Snapshot<G>> {
        self.shared
            .snap
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    /// Epoch of the most recently published snapshot (lock-free).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Rounds the engine has executed so far (lock-free; may be ahead of
    /// the published snapshot's round).
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Acquire)
    }

    /// Asks the worker to stop at the next round boundary without joining
    /// it. [`GossipService::stop`] is the usual entry point; this exists
    /// for readers that don't own the service.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }
}

/// The snapshot publisher the service rides on the listener seam.
struct Publisher<G: GossipGraph> {
    shared: Arc<Shared<G>>,
    every: u64,
    next_epoch: u64,
}

impl<G: GossipGraph> Publisher<G> {
    fn publish(&mut self, round: u64, graph: &G) {
        let snap = Arc::new(Snapshot {
            epoch: self.next_epoch,
            round,
            graph: graph.clone(),
        });
        *self.shared.snap.write().expect("snapshot lock poisoned") = snap;
        self.shared.epoch.store(self.next_epoch, Ordering::Release);
        self.next_epoch += 1;
    }
}

impl<G: GossipGraph> RoundListener<G> for Publisher<G> {
    fn on_start(&mut self, _graph: &G) -> RoundControl {
        if self.shared.stop.load(Ordering::Acquire) {
            RoundControl::Stop
        } else {
            RoundControl::Continue
        }
    }

    fn on_round(&mut self, ev: &RoundEvent<'_, G>) -> RoundControl {
        self.shared.rounds.store(ev.round, Ordering::Release);
        if ev.round.is_multiple_of(self.every) {
            self.publish(ev.round, ev.graph);
        }
        if self.shared.stop.load(Ordering::Acquire) {
            RoundControl::Stop
        } else {
            RoundControl::Continue
        }
    }
}

/// A live gossip engine behind a query surface. See the [module
/// docs](self) for the architecture.
pub struct GossipService<E: RoundEngine> {
    shared: Arc<Shared<E::Graph>>,
    worker: JoinHandle<(E, RunOutcome)>,
}

impl<E> GossipService<E>
where
    E: RoundEngine + Send + 'static,
    E::Graph: 'static,
{
    /// Spawns the worker with no extra listeners.
    pub fn spawn(engine: E, cfg: ServeConfig) -> Self {
        Self::spawn_with(engine, cfg, ListenerSet::new())
    }

    /// Spawns the worker with caller-supplied listeners (metrics counters,
    /// trajectory recorders, replay logs, convergence stoppers — anything
    /// implementing [`RoundListener`]) riding the same loop. A listener
    /// voting stop ends the serve run exactly as it would a batch run.
    pub fn spawn_with(engine: E, cfg: ServeConfig, listeners: ListenerSet<E::Graph>) -> Self {
        // Publish the initial graph as epoch 0 before the thread exists,
        // so a handle can never observe an empty service.
        let initial = Arc::new(Snapshot {
            epoch: 0,
            round: engine.quanta(),
            graph: engine.graph().clone(),
        });
        let shared = Arc::new(Shared {
            snap: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            rounds: AtomicU64::new(engine.quanta()),
            stop: AtomicBool::new(false),
        });
        let mut publisher = Publisher {
            shared: shared.clone(),
            every: cfg.snapshot_every.max(1),
            next_epoch: 1,
        };
        let budget = cfg.budget;
        let mut engine = engine;
        let mut listeners = listeners;
        let worker = thread::Builder::new()
            .name("gossip-serve".into())
            .spawn(move || {
                let out = run_engine_listened(
                    &mut engine,
                    &mut Chain(&mut publisher, &mut listeners),
                    budget,
                );
                // Final state is always visible, whatever the cadence.
                publisher.publish(engine.quanta(), engine.graph());
                (engine, out)
            })
            .expect("failed to spawn gossip-serve worker thread");
        GossipService { shared, worker }
    }

    /// A read handle; clone freely across threads.
    pub fn handle(&self) -> ServiceHandle<E::Graph> {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }

    /// Whether the worker has finished (budget exhausted, listener stop,
    /// or a prior [`ServiceHandle::request_stop`]).
    pub fn is_finished(&self) -> bool {
        self.worker.is_finished()
    }

    /// Requests a stop at the next round boundary and joins, returning the
    /// engine (for trajectory comparison against batch runs) and the
    /// outcome.
    pub fn stop(self) -> (E, ServeOutcome) {
        self.shared.stop.store(true, Ordering::Release);
        self.join()
    }

    /// Joins without requesting a stop — use when the budget or a
    /// convergence listener bounds the run.
    pub fn join(self) -> (E, ServeOutcome) {
        let (engine, out) = self.worker.join().expect("gossip-serve worker panicked");
        let outcome = ServeOutcome {
            rounds: out.rounds,
            listener_stopped: out.converged,
            epochs: self.shared.epoch.load(Ordering::Acquire) + 1,
        };
        (engine, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::{EngineBuilder, Push};
    use gossip_graph::generators;

    #[test]
    fn serves_snapshots_while_running_and_returns_engine() {
        let g = generators::star(64);
        let engine = EngineBuilder::new(g, Push, 21).build();
        let svc = GossipService::spawn(
            engine,
            ServeConfig {
                snapshot_every: 1,
                budget: 50,
            },
        );
        let h = svc.handle();
        let early = h.snapshot();
        let (engine, out) = svc.join();
        assert_eq!(out.rounds, 50);
        assert!(!out.listener_stopped);
        // initial + one per round + final
        assert_eq!(out.epochs, 52);
        let last = h.snapshot();
        assert_eq!(last.round, 50);
        assert_eq!(last.edge_count(), engine.graph().edge_count());
        // The early snapshot we grabbed is still a valid, frozen view.
        assert!(early.round <= last.round);
        assert!(early.edge_count() <= last.edge_count());
    }

    #[test]
    fn stop_is_prompt_and_final_snapshot_published() {
        let g = generators::cycle(256);
        let engine = EngineBuilder::new(g, Push, 3).build();
        let svc = GossipService::spawn(engine, ServeConfig::default());
        let h = svc.handle();
        // Let it run a little, then stop from the handle side.
        while h.rounds() < 5 {
            std::thread::yield_now();
        }
        let (engine, out) = svc.stop();
        assert!(out.listener_stopped);
        assert_eq!(h.epoch(), out.epochs - 1);
        assert_eq!(h.snapshot().round, engine.quanta());
    }

    #[test]
    fn budget_zero_publishes_initial_and_final_only() {
        let g = generators::star(8);
        let engine = EngineBuilder::new(g, Push, 1).build();
        let svc = GossipService::spawn(
            engine,
            ServeConfig {
                snapshot_every: 4,
                budget: 0,
            },
        );
        let (_, out) = svc.join();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.epochs, 2);
    }
}
