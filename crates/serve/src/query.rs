//! The read surface a snapshot serves.
//!
//! [`GossipGraph`] is the *engine-facing* contract — it only promises what
//! the round loop needs (counts plus proposal application). A service
//! answering "who does node `u` know?" needs adjacency reads, and every
//! backend in the repository already has them as inherent methods with
//! identical shapes. [`GraphQuery`] lifts that shared shape into a trait so
//! [`Snapshot`](crate::Snapshot) can expose one query API regardless of
//! which engine variant is running underneath.

use gossip_core::GossipGraph;
use gossip_graph::{ArenaGraph, NodeId, ShardedArenaGraph, UndirectedGraph};

/// Read-only adjacency queries over a gossip graph — the per-node surface
/// a resident service answers from its snapshots.
pub trait GraphQuery: GossipGraph {
    /// Degree of `u`.
    fn degree(&self, u: NodeId) -> usize;

    /// Neighbors of `u`. For canonical-layout backends the slice is
    /// ascending; for insertion-ordered backends it is insertion order.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// Whether the edge `{u, v}` is present.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Edge count of the complete graph on this node set — the
    /// discovery-process convergence target `n(n-1)/2`.
    fn complete_edge_target(&self) -> u64;

    /// Whether discovery has converged (the graph is complete).
    fn is_complete(&self) -> bool {
        self.edge_count() >= self.complete_edge_target()
    }
}

impl GraphQuery for UndirectedGraph {
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        UndirectedGraph::degree(self, u)
    }
    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        UndirectedGraph::neighbors(self, u).as_slice()
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        UndirectedGraph::has_edge(self, u, v)
    }
    #[inline]
    fn complete_edge_target(&self) -> u64 {
        self.complete_m()
    }
}

impl GraphQuery for ArenaGraph {
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        ArenaGraph::degree(self, u)
    }
    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        ArenaGraph::neighbors(self, u)
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        ArenaGraph::has_edge(self, u, v)
    }
    #[inline]
    fn complete_edge_target(&self) -> u64 {
        self.complete_m()
    }
}

impl GraphQuery for ShardedArenaGraph {
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        ShardedArenaGraph::degree(self, u)
    }
    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        ShardedArenaGraph::neighbors(self, u)
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        ShardedArenaGraph::has_edge(self, u, v)
    }
    #[inline]
    fn complete_edge_target(&self) -> u64 {
        self.complete_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn query_surface_agrees_across_backends() {
        let g = generators::tree_plus_random_edges(
            200,
            400,
            &mut gossip_core::rng::stream_rng(9, 0, 0),
        );
        let arena = ArenaGraph::from_undirected(&g);
        let sharded = ShardedArenaGraph::from_undirected(&g, 4);
        for u in (0..g.n()).map(NodeId::new) {
            assert_eq!(GraphQuery::degree(&g, u), GraphQuery::degree(&arena, u));
            assert_eq!(GraphQuery::degree(&g, u), GraphQuery::degree(&sharded, u));
            // Canonical backends agree element-wise; the insertion-ordered
            // backend agrees as a set.
            assert_eq!(
                GraphQuery::neighbors(&arena, u),
                GraphQuery::neighbors(&sharded, u)
            );
            let mut ins: Vec<NodeId> = GraphQuery::neighbors(&g, u).to_vec();
            ins.sort_unstable();
            assert_eq!(ins.as_slice(), GraphQuery::neighbors(&arena, u));
            for &v in GraphQuery::neighbors(&g, u) {
                assert!(GraphQuery::has_edge(&arena, u, v));
                assert!(GraphQuery::has_edge(&sharded, u, v));
            }
        }
        assert_eq!(g.complete_m(), arena.complete_edge_target());
        assert_eq!(g.complete_m(), sharded.complete_edge_target());
    }
}
