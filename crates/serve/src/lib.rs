//! # gossip-serve
//!
//! A **resident gossip service**: the repository's engines were built for
//! batch experiments — construct, run to convergence, read the answer.
//! This crate keeps an engine *alive*, advancing rounds continuously on a
//! worker thread while concurrent readers ask who-knows-whom, membership,
//! degree/coverage/convergence questions against **epoch snapshots** —
//! immutable, cheaply-cloned views published between rounds.
//!
//! Three pieces:
//!
//! - [`GossipService`] owns any [`RoundEngine`](gossip_core::RoundEngine)
//!   (sequential, async, sharded, or boxed) and drives it through the same
//!   listener-seam run loop batch experiments use, so a served trajectory
//!   is bit-identical to a batch run of the same `(graph, rule, seed)`.
//! - [`Snapshot`] is one published epoch. For the sharded backend a
//!   snapshot is O(shards) thanks to copy-on-write segments — publishing a
//!   view of a million-node graph does not copy the graph.
//! - [`RoundListener`](gossip_core::RoundListener) plugins —
//!   [`MetricsCounters`], [`TrajectoryRecorder`], [`ReplayLog`], or
//!   anything caller-written — ride the worker loop via
//!   [`GossipService::spawn_with`].
//!
//! ## Quickstart
//!
//! ```
//! use gossip_core::{EngineBuilder, GossipGraph, Push};
//! use gossip_graph::{generators, NodeId};
//! use gossip_serve::{GossipService, ServeConfig};
//!
//! let engine = EngineBuilder::new(generators::star(64), Push, 7).build();
//! let svc = GossipService::spawn(engine, ServeConfig { snapshot_every: 1, budget: 40 });
//! let reader = svc.handle();          // Clone + Send: query from anywhere
//! let snap = reader.snapshot();       // frozen view, engine races ahead
//! let _ = (snap.degree(NodeId(0)), snap.knows(NodeId(0), NodeId(5)), snap.stats().coverage);
//! let (engine, outcome) = svc.join(); // engine comes back for inspection
//! assert_eq!(outcome.rounds, 40);
//! assert_eq!(engine.graph().edge_count(), reader.snapshot().edge_count());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plugins;
pub mod query;
pub mod service;
pub mod snapshot;

pub use plugins::{
    MetricsCounters, ReplayLog, ServiceMetrics, TrajectoryPoint, TrajectoryRecorder,
};
pub use query::GraphQuery;
pub use service::{GossipService, ServeConfig, ServeOutcome, ServiceHandle};
pub use snapshot::{CoverageStats, Snapshot};
