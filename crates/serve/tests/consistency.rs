//! Snapshot consistency: what a live service publishes is exactly what a
//! batch run would have produced.
//!
//! Three pins, per the serving contract:
//!
//! 1. A snapshot taken between rounds `k` and `k+1` is bit-identical to a
//!    **sequential** engine over the same start graph stopped at round `k`
//!    — for shard counts S ∈ {1, 2, 8}.
//! 2. That equivalence holds under concurrent query load: reader threads
//!    hammering the snapshot surface observe only exact round-`k` states,
//!    never a torn or mid-round view.
//! 3. A served engine's full trajectory is bit-identical to the same
//!    configuration run in batch — serving is observation, not
//!    perturbation.

use gossip_core::rng::stream_rng;
use gossip_core::{Engine, EngineBuilder, Parallelism, Pull};
use gossip_graph::{generators, ArenaGraph, NodeId, ShardedArenaGraph};
use gossip_serve::{GossipService, ServeConfig, Snapshot};
use gossip_shard::{BuildSharded, ShardedEngine};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const N: usize = 3000; // deliberately not chunk-aligned
const SEED: u64 = 77;

fn start_graphs(shards: usize) -> (ArenaGraph, ShardedArenaGraph) {
    let und = generators::tree_plus_random_edges(N, 2 * N as u64, &mut stream_rng(4, 0, 0));
    (
        ArenaGraph::from_undirected(&und),
        ShardedArenaGraph::from_undirected(&und, shards),
    )
}

/// Asserts `snap` is exactly the reference sequential engine's graph at
/// `snap.round` (the reference must already be stepped there).
fn assert_rows_equal(snap: &Snapshot<ShardedArenaGraph>, reference: &ArenaGraph, ctx: &str) {
    assert_eq!(snap.edge_count(), reference.m(), "{ctx}: edge count");
    for u in reference.nodes() {
        assert_eq!(
            reference.neighbors(u),
            snap.neighbors(u),
            "{ctx}: row {u:?}"
        );
    }
}

/// Pin 1: every round boundary, every shard count, deterministically.
#[test]
fn snapshot_at_round_k_matches_sequential_engine_stopped_at_k() {
    for shards in [1usize, 2, 8] {
        let (arena, sharded) = start_graphs(shards);
        let mut reference =
            Engine::new(arena, Pull, SEED).with_parallelism(Parallelism::Sequential);
        for k in 0..6u64 {
            let engine = EngineBuilder::new(sharded.clone(), Pull, SEED).build_sharded();
            let svc = GossipService::spawn(
                engine,
                ServeConfig {
                    snapshot_every: 1,
                    budget: k,
                },
            );
            let handle = svc.handle();
            let (_, out) = svc.join();
            assert_eq!(out.rounds, k);
            let snap = handle.snapshot();
            assert_eq!(snap.round, k);
            while reference.round() < k {
                reference.step();
            }
            assert_rows_equal(&snap, reference.graph(), &format!("S={shards} k={k}"));
        }
    }
}

/// Pin 2: the same equivalence under concurrent query load. Readers
/// collect every epoch they can catch while the engine runs free; each
/// caught snapshot must be an exact round state.
#[test]
fn concurrent_readers_only_ever_see_exact_round_states() {
    const BUDGET: u64 = 10;
    for shards in [2usize, 8] {
        let (arena, sharded) = start_graphs(shards);
        let engine = EngineBuilder::new(sharded, Pull, SEED).build_sharded();
        let svc = GossipService::spawn(
            engine,
            ServeConfig {
                snapshot_every: 1,
                budget: BUDGET,
            },
        );
        let caught: Arc<Mutex<BTreeMap<u64, Arc<Snapshot<ShardedArenaGraph>>>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let mut readers = Vec::new();
        for r in 0..3 {
            let h = svc.handle();
            let caught = caught.clone();
            readers.push(std::thread::spawn(move || {
                let mut polls = 0u64;
                loop {
                    let snap = h.snapshot();
                    // Query load: aggregate stats plus point reads.
                    let stats = snap.stats();
                    assert_eq!(stats.nodes, N);
                    let u = NodeId::new((polls as usize * 131 + r * 17) % N);
                    let nbrs = snap.neighbors(u);
                    assert_eq!(nbrs.len(), snap.degree(u));
                    for &v in nbrs.iter().take(4) {
                        assert!(snap.knows(u, v));
                    }
                    let done = snap.round >= BUDGET;
                    caught.lock().unwrap().entry(snap.epoch).or_insert(snap);
                    polls += 1;
                    if done {
                        break;
                    }
                    std::thread::yield_now();
                }
            }));
        }
        let (engine, out) = svc.join();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(out.rounds, BUDGET);
        let caught = caught.lock().unwrap();
        // Final epoch is always caught (readers exit only once they see it).
        assert!(caught.values().any(|s| s.round == BUDGET));
        let mut reference =
            Engine::new(arena, Pull, SEED).with_parallelism(Parallelism::Sequential);
        for snap in caught.values() {
            while reference.round() < snap.round {
                reference.step();
            }
            assert_eq!(
                reference.round(),
                snap.round,
                "snapshot at a non-round state"
            );
            assert_rows_equal(
                snap,
                reference.graph(),
                &format!("S={shards} epoch={} round={}", snap.epoch, snap.round),
            );
        }
        // And the returned engine agrees with the last published epoch.
        assert_eq!(
            engine.graph().m(),
            caught.values().last().unwrap().edge_count()
        );
    }
}

/// Pin 3: serving does not perturb the trajectory — a served run's final
/// graph is bit-identical to the same engine run in batch.
#[test]
fn served_trajectory_is_bit_identical_to_batch() {
    const BUDGET: u64 = 8;
    let (_, sharded) = start_graphs(4);

    let mut batch = ShardedEngine::new(sharded.clone(), Pull, SEED);
    for _ in 0..BUDGET {
        batch.step();
    }

    let engine = EngineBuilder::new(sharded, Pull, SEED).build_sharded();
    let svc = GossipService::spawn(
        engine,
        ServeConfig {
            snapshot_every: 3, // deliberately not a divisor of the budget
            budget: BUDGET,
        },
    );
    let handle = svc.handle();
    let (served, out) = svc.join();
    assert_eq!(out.rounds, BUDGET);

    assert_eq!(served.graph().m(), batch.graph().m());
    for u in batch.graph().nodes() {
        assert_eq!(batch.graph().neighbors(u), served.graph().neighbors(u));
    }
    // The final published snapshot equals the engine state even though the
    // cadence (every 3) never landed on round 8 naturally.
    let snap = handle.snapshot();
    assert_eq!(snap.round, BUDGET);
    assert_eq!(snap.edge_count(), served.graph().m());
}
