//! Shrinking property suite for the datagram cluster transport.
//!
//! The centerpiece claim, as a property: for any (graph, shard count,
//! rule, seed, loss rate, MTU), the cluster engine's trajectory and
//! final state are **bit-identical** to the sequential in-process
//! engine. On failure proptest shrinks toward the smallest
//! configuration that still diverges — a far better bug report than a
//! failing 2^20-node experiment.
//!
//! Thread mode only: proptest cases run inside the libtest harness,
//! where re-exec process workers are off limits.

use gossip_cluster::{ClusterBuilder, DatagramLoss};
use gossip_core::rng::stream_rng;
use gossip_core::RuleId;
use gossip_graph::{generators, ShardedArenaGraph};
use gossip_shard::ShardedEngine;
use proptest::prelude::*;

fn sharded(n: usize, extra: u64, seed: u64, shards: usize) -> ShardedArenaGraph {
    let und = generators::tree_plus_random_edges(n, extra, &mut stream_rng(seed, 0, 0));
    ShardedArenaGraph::from_undirected(&und, shards)
}

fn rule_strategy() -> impl Strategy<Value = RuleId> {
    (0usize..3).prop_map(|i| RuleId::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Lossless clusters replay the sequential trajectory exactly, for
    /// any shard count the arena supports.
    #[test]
    fn cluster_trajectory_equals_sequential(
        n in 64usize..500,
        extra_frac in 0u64..3,
        graph_seed in 0u64..1_000,
        engine_seed in 0u64..1_000,
        shards in 1usize..5,
        rule in rule_strategy(),
        rounds in 1u64..5,
    ) {
        let g = sharded(n, (n as u64 - 1) + extra_frac * n as u64, graph_seed, shards);
        let (seq_stats, seq_g) = gossip_core::with_rule!(rule, |r| {
            let mut seq = ShardedEngine::new(g.clone(), r, engine_seed);
            let stats: Vec<_> = (0..rounds).map(|_| seq.step()).collect();
            (stats, seq.graph().clone())
        });
        let mut cluster = ClusterBuilder::new(g, rule, engine_seed)
            .spawn()
            .expect("spawn cluster");
        let cluster_stats: Vec<_> = (0..rounds).map(|_| cluster.step()).collect();
        prop_assert_eq!(seq_stats, cluster_stats, "trajectory diverged");
        prop_assert_eq!(seq_g.m(), cluster.graph().m());
        for u in seq_g.nodes() {
            prop_assert_eq!(
                seq_g.neighbors(u),
                cluster.graph().neighbors(u),
                "row {:?} diverged", u
            );
        }
        cluster.shutdown().expect("clean shutdown");
    }

    /// Seeded datagram loss (drops + duplicates) never changes the
    /// result — the window layer repairs everything before the round
    /// barrier — and the injected-fault counters themselves reproduce.
    #[test]
    fn lossy_cluster_still_matches_and_injects_deterministically(
        n in 64usize..400,
        graph_seed in 0u64..1_000,
        engine_seed in 0u64..1_000,
        shards in 2usize..4,
        loss_seed in 0u64..1_000,
        drop_per_mille in (0usize..2).prop_map(|i| [50u16, 200][i]),
        dup_per_mille in 0u16..100,
        rounds in 1u64..4,
    ) {
        let g = sharded(n, n as u64, graph_seed, shards);
        let loss = DatagramLoss { seed: loss_seed, drop_per_mille, dup_per_mille };
        let run = |g: ShardedArenaGraph| {
            let mut cluster = ClusterBuilder::new(g, RuleId::Pull, engine_seed)
                .with_loss(loss)
                .spawn()
                .expect("spawn lossy cluster");
            let stats: Vec<_> = (0..rounds).map(|_| cluster.step()).collect();
            let injected = (
                cluster.stats().endpoint.injected_drops,
                cluster.stats().endpoint.injected_dups,
            );
            cluster.shutdown().expect("clean shutdown");
            (stats, injected)
        };
        let mut seq = ShardedEngine::new(g.clone(), gossip_core::Pull, engine_seed);
        let seq_stats: Vec<_> = (0..rounds).map(|_| seq.step()).collect();
        let (a_stats, a_injected) = run(g.clone());
        let (b_stats, b_injected) = run(g);
        prop_assert_eq!(&a_stats, &seq_stats, "lossy cluster diverged from sequential");
        prop_assert_eq!(a_stats, b_stats, "two identical lossy runs diverged");
        prop_assert_eq!(a_injected, b_injected, "fault injection not reproducible");
    }

    /// MTU is a pure transport knob: any positive budget (forcing
    /// anywhere from zero to heavy fragmentation) yields the same
    /// rounds.
    #[test]
    fn mtu_never_affects_results(
        n in 64usize..300,
        graph_seed in 0u64..1_000,
        engine_seed in 0u64..1_000,
        mtu in (0usize..4).prop_map(|i| [64usize, 200, 700, 9000][i]),
        rounds in 1u64..4,
    ) {
        let g = sharded(n, n as u64, graph_seed, 2);
        let mut seq = ShardedEngine::new(g.clone(), gossip_core::Push, engine_seed);
        let mut cluster = ClusterBuilder::new(g, RuleId::Push, engine_seed)
            .with_mtu(mtu)
            .spawn()
            .expect("spawn cluster");
        for r in 0..rounds {
            prop_assert_eq!(seq.step(), cluster.step(), "round {} diverged at mtu {}", r, mtu);
        }
        cluster.shutdown().expect("clean shutdown");
    }
}
