//! Process-mode cluster transport tests.
//!
//! `harness = false`: process-mode workers re-exec the current
//! executable, and the default libtest harness would re-run the whole
//! test suite in each child. A plain `main` lets
//! [`gossip_cluster::maybe_run_cluster_shard`] intercept worker
//! re-execs before any test code runs.

use gossip_cluster::{ClusterBuilder, DatagramLoss};
use gossip_core::rng::stream_rng;
use gossip_core::{Pull, Push, RuleId};
use gossip_graph::{generators, NodeId, ShardedArenaGraph};
use gossip_shard::{ShardedEngine, TransportMode};
use std::net::SocketAddr;

fn sharded(n: usize, extra: u64, seed: u64, shards: usize) -> ShardedArenaGraph {
    let und = generators::tree_plus_random_edges(n, extra, &mut stream_rng(seed, 0, 0));
    ShardedArenaGraph::from_undirected(&und, shards)
}

fn assert_graphs_equal(a: &ShardedArenaGraph, b: &ShardedArenaGraph, what: &str) {
    assert_eq!(a.m(), b.m(), "{what}: edge count diverged");
    for u in a.nodes() {
        assert_eq!(a.neighbors(u), b.neighbors(u), "{what}: row {u:?} diverged");
    }
}

/// Two worker processes (plus the in-process coordinator) track the
/// sequential engine bit-for-bit over real UDP sockets.
fn process_cluster_matches_in_process_engine() {
    let n = 4000;
    let g = sharded(n, 2 * n as u64, 17, 3);
    let mut inproc = ShardedEngine::new(g.clone(), Pull, 23);
    let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 23)
        .with_mode(TransportMode::Process)
        .spawn()
        .expect("spawn process cluster");
    for round in 0..5 {
        assert_eq!(inproc.step(), cluster.step(), "round {round}");
    }
    assert_graphs_equal(inproc.graph(), cluster.graph(), "process cluster");
    cluster.graph().validate().unwrap();
    cluster.shutdown().expect("clean shutdown");
    println!("  ok: process_cluster_matches_in_process_engine");
}

/// Seeded datagram loss across real process boundaries: the windows
/// repair every drop and the result stays bit-identical.
fn lossy_process_cluster_recovers() {
    let n = 2500;
    let g = sharded(n, n as u64, 29, 2);
    let mut inproc = ShardedEngine::new(g.clone(), Push, 31);
    let mut cluster = ClusterBuilder::new(g, RuleId::Push, 31)
        .with_mode(TransportMode::Process)
        .with_loss(DatagramLoss {
            seed: 0xD06,
            drop_per_mille: 80,
            dup_per_mille: 40,
        })
        .spawn()
        .expect("spawn lossy process cluster");
    for round in 0..4 {
        assert_eq!(inproc.step(), cluster.step(), "round {round}");
    }
    assert_graphs_equal(inproc.graph(), cluster.graph(), "lossy process cluster");
    let stats = cluster.stats();
    assert!(
        stats.endpoint.injected_drops > 0,
        "loss shim never fired: {stats:?}"
    );
    cluster.shutdown().expect("clean shutdown");
    println!("  ok: lossy_process_cluster_recovers");
}

/// The E20 topology in miniature: shards 0–1 on 127.0.0.1 and shards
/// 2–3 on 127.0.0.2 (two loopback "hosts", two shard processes each),
/// via an explicit static peer table.
fn two_host_loopback_grid_is_bit_identical() {
    let host_b_works = std::net::UdpSocket::bind("127.0.0.2:0").is_ok();
    let host_b = if host_b_works {
        "127.0.0.2"
    } else {
        "127.0.0.1"
    };

    let n = 3000;
    let g = sharded(n, n as u64, 41, 4);
    let mut inproc = ShardedEngine::new(g.clone(), Pull, 43);

    // Reserve three concrete worker ports across the two "hosts"
    // (shard 1 shares host A with the coordinator).
    let reserve = |host: &str| -> SocketAddr {
        let s = std::net::UdpSocket::bind(format!("{host}:0")).expect("reserve port");
        let addr = s.local_addr().unwrap();
        drop(s);
        addr
    };
    let peers = vec![reserve("127.0.0.1"), reserve(host_b), reserve(host_b)];
    let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 43)
        .with_mode(TransportMode::Process)
        .with_bind("127.0.0.1:0".parse().unwrap())
        .with_peers(peers.clone())
        .spawn()
        .expect("spawn two-host grid");
    assert_eq!(&cluster.peer_table()[1..], peers.as_slice());
    for round in 0..4 {
        assert_eq!(inproc.step(), cluster.step(), "round {round}");
    }
    assert_graphs_equal(inproc.graph(), cluster.graph(), "two-host grid");
    cluster.shutdown().expect("clean shutdown");
    println!("  ok: two_host_loopback_grid_is_bit_identical (host B = {host_b})");
}

/// A smoke query after convergence, proving the engine+graph stay
/// usable after `shutdown`.
fn converged_cluster_answers_queries() {
    let und = generators::star(512);
    let g = ShardedArenaGraph::from_undirected(&und, 2);
    let mut check = gossip_core::ComponentwiseComplete::for_graph(&und);
    let mut cluster = ClusterBuilder::new(g, RuleId::Push, 47)
        .with_mode(TransportMode::Process)
        .spawn()
        .expect("spawn");
    let out = cluster.run_until(&mut check, 1_000_000);
    assert!(out.converged);
    cluster.shutdown().expect("clean shutdown");
    assert!(cluster.graph().is_complete());
    assert!(cluster.graph().neighbors(NodeId(0)).contains(&NodeId(511)));
    println!("  ok: converged_cluster_answers_queries");
}

fn main() {
    // Worker re-execs enter here and never return.
    gossip_cluster::maybe_run_cluster_shard();

    println!("udp_process: process-mode cluster transport");
    process_cluster_matches_in_process_engine();
    lossy_process_cluster_recovers();
    two_host_loopback_grid_is_bit_identical();
    converged_cluster_answers_queries();
    println!("udp_process: all tests passed");
}
