//! Per-peer reliability windows over one UDP socket: sequencing, ack /
//! nak, timeout + exponential-backoff retransmit, duplicate suppression,
//! and in-order delivery — the layer that turns a lossy datagram socket
//! into the FIFO frame channel the round protocol assumes.
//!
//! # Datagram format
//!
//! Every datagram is `[u32 sender shard][u64 seq][frame bytes]`, where
//! the frame bytes are one length-prefixed [`Frame`] exactly as a stream
//! transport would write it ([`parse_framed`] decodes both). `seq == 0`
//! marks an *unsequenced control datagram* — [`Frame::Ack`] and
//! [`Frame::NakRange`] ride outside the window (they are idempotent and
//! self-superseding, so losing one costs only time). Data datagrams are
//! numbered `1, 2, …` per directed link.
//!
//! # The window invariants
//!
//! * **Send side**: at most [`SEND_WINDOW`] datagrams in flight per link;
//!   the rest wait in a FIFO outbox. Each in-flight datagram carries a
//!   deadline; expiry retransmits it and doubles its RTO (capped). A
//!   received `Ack { cumulative, selective }` clears everything `≤
//!   cumulative` plus the named stragglers; a `NakRange` retransmits the
//!   still-unacked part of the range immediately.
//! * **Receive side**: per-link cumulative counter plus an out-of-order
//!   buffer. A datagram at or below the cumulative mark (or already
//!   buffered) is a duplicate — dropped, but re-acked, since a duplicate
//!   usually means the peer lost our ack. Frames are handed up **only in
//!   send order**: out-of-order arrivals are held until the gap closes.
//!   Whenever the buffer is non-empty after an advance, seq
//!   `cumulative + 1` is provably missing; a rate-limited `NakRange`
//!   names the hole so recovery does not wait out the full RTO.
//!
//! # Seeded loss, and why termination survives it
//!
//! [`DatagramLoss`] injects drops and duplicates as a **pure function of
//! `(seed, directed link, seq)`** — applied only to the *first*
//! transmission of a data datagram, never to retransmits and never to
//! control datagrams. Injected counts are therefore exactly reproducible
//! for a given run shape, while the retransmit machinery that repairs
//! them is free to be timing-dependent: every dropped datagram sits in
//! the send window until acked, so it is retransmitted clean and the
//! round always completes.
//!
//! # Fragmentation
//!
//! A frame larger than the MTU budget is split by
//! [`gossip_shard::wire::fragment_frames`] into `Fragment` frames, each
//! sent as its own sequenced datagram. Because delivery is in-order per
//! link, the receiving [`Defragmenter`] sees fragments contiguously and
//! the reassembled bytes re-enter [`parse_framed`] like any other frame.

use gossip_core::rng::stream_rng;
use gossip_shard::framed::parse_framed;
use gossip_shard::wire::{fragment_frames, AckFrame, Defragmenter, Frame};
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// Default datagram payload budget, in bytes. Frames over this are
/// fragmented. Chosen under the classic 1500-byte Ethernet MTU so a
/// datagram (12-byte header included) survives real links unfragmented;
/// loopback would take 64 KiB, but the tests should exercise the same
/// fragmentation the cross-host deployment needs.
pub const DEFAULT_MTU: usize = 1400;

/// Maximum unacked data datagrams per directed link. Kept modest so a
/// fan-in of several links cannot overrun a default-sized UDP receive
/// buffer by itself (overruns still recover via retransmit — this just
/// keeps them rare).
pub const SEND_WINDOW: usize = 64;

/// First retransmit timeout; doubles per attempt up to [`MAX_RTO`].
pub const INITIAL_RTO: Duration = Duration::from_millis(20);
/// Backoff ceiling.
pub const MAX_RTO: Duration = Duration::from_millis(1000);
/// Retransmit attempts before the link is declared dead (~50 s of
/// backoff — far beyond any legitimate peer stall).
pub const MAX_ATTEMPTS: u32 = 60;
/// Minimum spacing between receiver-driven naks for the same link.
pub const NAK_INTERVAL: Duration = Duration::from_millis(10);
/// Cap on selective-ack entries per ack frame.
pub const SELECTIVE_ACK_CAP: usize = 64;

/// Seeded datagram fault injection: drop/duplicate verdicts as a pure
/// function of `(seed, directed link, seq)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatagramLoss {
    /// Verdict stream seed.
    pub seed: u64,
    /// First-transmission drop probability, in thousandths.
    pub drop_per_mille: u16,
    /// First-transmission duplication probability, in thousandths.
    pub dup_per_mille: u16,
}

impl DatagramLoss {
    /// `(drop, duplicate)` verdict for a data datagram. Deterministic:
    /// depends only on the arguments and the configured rates.
    pub fn verdict(&self, link: u64, seq: u64) -> (bool, bool) {
        let mut rng = stream_rng(self.seed, link, seq);
        let roll: u32 = rng.random_range(0..1000);
        let dup_roll: u32 = rng.random_range(0..1000);
        (
            roll < u32::from(self.drop_per_mille),
            dup_roll < u32::from(self.dup_per_mille),
        )
    }
}

/// Counters for one endpoint (all links summed). The *deterministic*
/// rows — reproducible for a given `(graph, rule, seed, loss)` run —
/// are `data_datagrams`, `fragments_sent`, `injected_drops`, and
/// `injected_dups`; everything touched by wall-clock timing (retransmits,
/// acks, naks, raw socket counts) is honest telemetry only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Data datagrams queued for first transmission (deterministic).
    pub data_datagrams: u64,
    /// Fragment datagrams among them (deterministic).
    pub fragments_sent: u64,
    /// First transmissions suppressed by the loss shim (deterministic).
    pub injected_drops: u64,
    /// Extra copies sent by the loss shim (deterministic).
    pub injected_dups: u64,
    /// Datagrams that actually hit the socket (dups + retransmits
    /// included, injected drops excluded).
    pub datagrams_sent: u64,
    /// Datagrams read off the socket.
    pub datagrams_received: u64,
    /// Received data datagrams discarded as duplicates.
    pub duplicates_received: u64,
    /// Timer- or nak-driven retransmissions.
    pub retransmitted: u64,
    /// Ack control datagrams sent / received.
    pub acks_sent: u64,
    /// Ack control datagrams received.
    pub acks_received: u64,
    /// Nak control datagrams sent / received.
    pub naks_sent: u64,
    /// Nak control datagrams received.
    pub naks_received: u64,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Bytes read from the socket.
    pub bytes_received: u64,
}

struct Pending {
    bytes: Vec<u8>,
    deadline: Instant,
    rto: Duration,
    attempts: u32,
}

/// Per-directed-link state (both directions of one peer).
struct Link {
    /// Datagrams queued but not yet admitted to the window.
    outbox: VecDeque<Vec<u8>>,
    /// Seq of the next data datagram to be queued.
    next_seq: u64,
    /// In-flight (unacked) datagrams, keyed by seq.
    inflight: BTreeMap<u64, Pending>,
    /// Highest seq delivered in order.
    recv_cumulative: u64,
    /// Out-of-order arrivals held for FIFO delivery.
    recv_buffered: BTreeMap<u64, Vec<u8>>,
    /// Reassembles fragment runs (in-order delivery makes them contiguous).
    defrag: Defragmenter,
    /// An ack is owed after this pump.
    ack_due: bool,
    /// Last receiver-driven nak, for rate limiting.
    last_nak: Option<Instant>,
}

impl Link {
    fn new() -> Link {
        Link {
            outbox: VecDeque::new(),
            next_seq: 1,
            inflight: BTreeMap::new(),
            recv_cumulative: 0,
            recv_buffered: BTreeMap::new(),
            defrag: Defragmenter::new(),
            ack_due: false,
            last_nak: None,
        }
    }

    fn pending(&self) -> u64 {
        (self.outbox.len() + self.inflight.len()) as u64
    }
}

/// One shard's end of the datagram mesh: a single socket, one
/// reliability link (sliding window + ack/nak state) per peer in the
/// static table, and an in-order delivery queue of decoded frames.
pub struct Endpoint {
    socket: UdpSocket,
    shard: usize,
    peers: Vec<SocketAddr>,
    links: Vec<Link>,
    loss: Option<DatagramLoss>,
    mtu: usize,
    next_msg_id: u64,
    delivery: VecDeque<(usize, Frame)>,
    stats: EndpointStats,
    buf: Vec<u8>,
    enc: bytes::BytesMut,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("shard", &self.shard)
            .field("peers", &self.peers)
            .field("pending", &self.pending_datagrams())
            .finish()
    }
}

fn invalid(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Endpoint {
    /// Wraps a bound socket as shard `shard` of the mesh described by
    /// `peers` (indexed by shard; `peers[shard]` is this socket's own
    /// address and is never dialed).
    pub fn new(
        socket: UdpSocket,
        shard: usize,
        peers: Vec<SocketAddr>,
        loss: Option<DatagramLoss>,
        mtu: usize,
    ) -> io::Result<Endpoint> {
        assert!(shard < peers.len(), "shard index outside the peer table");
        assert!(mtu > 0, "mtu must be positive");
        // Short poll quantum: every receive attempt doubles as a tick for
        // the retransmit timers.
        socket.set_read_timeout(Some(Duration::from_millis(1)))?;
        let links = (0..peers.len()).map(|_| Link::new()).collect();
        Ok(Endpoint {
            socket,
            shard,
            peers,
            links,
            loss,
            mtu,
            next_msg_id: 1,
            delivery: VecDeque::new(),
            stats: EndpointStats::default(),
            buf: vec![0u8; 65_535],
            enc: bytes::BytesMut::new(),
        })
    }

    /// This endpoint's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The static peer table (shard-indexed).
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Counters so far.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Datagrams queued or in flight across all links — the "how much of
    /// what I sent is still unconfirmed" gauge the streamed-bootstrap
    /// overlap metric reads.
    pub fn pending_datagrams(&self) -> u64 {
        self.links.iter().map(Link::pending).sum()
    }

    /// Queues `frame` for reliable in-order delivery to peer `to`,
    /// fragmenting it if its encoding exceeds the MTU budget. Returns
    /// after queueing (and an opportunistic transmit pass) — delivery
    /// happens as [`Endpoint::pump`] runs.
    pub fn send_frame(&mut self, to: usize, frame: &Frame) -> io::Result<()> {
        assert!(to < self.peers.len() && to != self.shard, "bad destination");
        self.enc.clear();
        frame.encode(&mut self.enc);
        if self.enc.len() <= self.mtu {
            let bytes = self.enc.to_vec();
            self.queue_data(to, bytes, false);
        } else {
            let msg_id = self.next_msg_id;
            self.next_msg_id += 1;
            let frame_bytes = self.enc.to_vec();
            for frag in fragment_frames(msg_id, &frame_bytes, self.mtu) {
                self.enc.clear();
                Frame::Fragment(frag).encode(&mut self.enc);
                let bytes = self.enc.to_vec();
                self.queue_data(to, bytes, true);
            }
        }
        self.service_sends(to, Instant::now())
    }

    fn queue_data(&mut self, to: usize, frame_bytes: Vec<u8>, fragment: bool) {
        let link = &mut self.links[to];
        let seq = link.next_seq;
        link.next_seq += 1;
        let mut dgram = Vec::with_capacity(12 + frame_bytes.len());
        dgram.extend_from_slice(&(self.shard as u32).to_le_bytes());
        dgram.extend_from_slice(&seq.to_le_bytes());
        dgram.extend_from_slice(&frame_bytes);
        link.outbox.push_back(dgram);
        self.stats.data_datagrams += 1;
        if fragment {
            self.stats.fragments_sent += 1;
        }
    }

    /// Directed-link id for the loss shim: this shard's outbound lane to
    /// `to`, distinct from the reverse lane.
    fn link_id(&self, to: usize) -> u64 {
        (self.shard * self.peers.len() + to) as u64
    }

    fn transmit(socket: &UdpSocket, stats: &mut EndpointStats, addr: SocketAddr, bytes: &[u8]) {
        // A full socket buffer surfaces as WouldBlock/ENOBUFS on some
        // stacks; treat any send error as a drop — the window will
        // retransmit, and a persistently dead link fails via MAX_ATTEMPTS.
        if socket.send_to(bytes, addr).is_ok() {
            stats.datagrams_sent += 1;
            stats.bytes_sent += bytes.len() as u64;
        }
    }

    /// Admits outbox datagrams to the window (first transmissions, where
    /// the loss shim applies) while there is room.
    fn service_sends(&mut self, to: usize, now: Instant) -> io::Result<()> {
        let link_id = self.link_id(to);
        let link = &mut self.links[to];
        while link.inflight.len() < SEND_WINDOW {
            let Some(dgram) = link.outbox.pop_front() else {
                break;
            };
            let seq = u64::from_le_bytes(dgram[4..12].try_into().unwrap());
            let (drop, dup) = match self.loss {
                Some(l) => l.verdict(link_id, seq),
                None => (false, false),
            };
            if drop {
                self.stats.injected_drops += 1;
            } else {
                Self::transmit(&self.socket, &mut self.stats, self.peers[to], &dgram);
                if dup {
                    self.stats.injected_dups += 1;
                    Self::transmit(&self.socket, &mut self.stats, self.peers[to], &dgram);
                }
            }
            link.inflight.insert(
                seq,
                Pending {
                    bytes: dgram,
                    deadline: now + INITIAL_RTO,
                    rto: INITIAL_RTO,
                    attempts: 1,
                },
            );
        }
        Ok(())
    }

    /// Expired-timer retransmissions (always transmitted — the shim never
    /// touches a retransmit, which is what guarantees termination).
    fn service_retransmits(&mut self, now: Instant) -> io::Result<()> {
        for to in 0..self.peers.len() {
            if to == self.shard {
                continue;
            }
            let link = &mut self.links[to];
            for (seq, p) in link.inflight.iter_mut() {
                if p.deadline > now {
                    continue;
                }
                if p.attempts >= MAX_ATTEMPTS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "shard {}: peer {to} unresponsive (seq {seq} after {} attempts)",
                            self.shard, p.attempts
                        ),
                    ));
                }
                p.attempts += 1;
                p.rto = (p.rto * 2).min(MAX_RTO);
                p.deadline = now + p.rto;
                self.stats.retransmitted += 1;
                Self::transmit(&self.socket, &mut self.stats, self.peers[to], &p.bytes);
            }
        }
        Ok(())
    }

    fn send_control(&mut self, to: usize, frame: &Frame) {
        self.enc.clear();
        frame.encode(&mut self.enc);
        let mut dgram = Vec::with_capacity(12 + self.enc.len());
        dgram.extend_from_slice(&(self.shard as u32).to_le_bytes());
        dgram.extend_from_slice(&0u64.to_le_bytes());
        dgram.extend_from_slice(&self.enc);
        Self::transmit(&self.socket, &mut self.stats, self.peers[to], &dgram);
    }

    fn handle_control(&mut self, from: usize, frame: Frame) -> io::Result<()> {
        match frame {
            Frame::Ack(AckFrame {
                cumulative,
                selective,
            }) => {
                self.stats.acks_received += 1;
                let link = &mut self.links[from];
                link.inflight.retain(|&seq, _| seq > cumulative);
                for seq in selective {
                    link.inflight.remove(&seq);
                }
            }
            Frame::NakRange { from: lo, to: hi } => {
                self.stats.naks_received += 1;
                let now = Instant::now();
                let link = &mut self.links[from];
                let mut resend = 0u64;
                for (_, p) in link.inflight.range_mut(lo..=hi) {
                    p.attempts += 1;
                    p.rto = INITIAL_RTO;
                    p.deadline = now + INITIAL_RTO;
                    resend += 1;
                    self.stats.retransmitted += 1;
                    Self::transmit(&self.socket, &mut self.stats, self.peers[from], &p.bytes);
                }
                let _ = resend;
            }
            other => {
                return Err(invalid(format!(
                    "peer {from}: unsequenced datagram must be Ack/NakRange, got {other:?}"
                )))
            }
        }
        Ok(())
    }

    fn handle_data(&mut self, from: usize, seq: u64, frame_bytes: &[u8]) -> io::Result<()> {
        let link = &mut self.links[from];
        link.ack_due = true;
        if seq <= link.recv_cumulative || link.recv_buffered.contains_key(&seq) {
            self.stats.duplicates_received += 1;
            return Ok(());
        }
        link.recv_buffered.insert(seq, frame_bytes.to_vec());
        while let Some(bytes) = link.recv_buffered.remove(&(link.recv_cumulative + 1)) {
            link.recv_cumulative += 1;
            let frame = parse_framed(&bytes)?;
            match frame {
                Frame::Fragment(f) => {
                    if let Some(whole) = link.defrag.accept(&f).map_err(invalid)? {
                        self.delivery.push_back((from, parse_framed(&whole)?));
                    }
                }
                other => self.delivery.push_back((from, other)),
            }
        }
        Ok(())
    }

    /// One service pass: first transmissions, timer retransmits, a
    /// bounded batch of socket reads, then deferred acks and gap naks.
    /// Blocks at most ~the socket poll quantum when idle.
    pub fn pump(&mut self) -> io::Result<()> {
        let now = Instant::now();
        for to in 0..self.peers.len() {
            if to != self.shard {
                self.service_sends(to, now)?;
            }
        }
        self.service_retransmits(now)?;

        for _ in 0..128 {
            let (len, addr) = match self.socket.recv_from(&mut self.buf) {
                Ok(x) => x,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) => return Err(e),
            };
            if len < 12 {
                continue; // runt datagram: not ours, drop
            }
            self.stats.datagrams_received += 1;
            self.stats.bytes_received += len as u64;
            let from = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
            let seq = u64::from_le_bytes(self.buf[4..12].try_into().unwrap());
            if from >= self.peers.len() || from == self.shard {
                return Err(invalid(format!(
                    "datagram from unknown shard {from} ({addr})"
                )));
            }
            if seq == 0 {
                let frame = parse_framed(&self.buf[12..len])?;
                self.handle_control(from, frame)?;
            } else {
                let bytes = std::mem::take(&mut self.buf);
                let r = self.handle_data(from, seq, &bytes[12..len]);
                self.buf = bytes;
                r?;
            }
        }

        // Deferred per-link acks (one per pump, not one per datagram) and
        // receiver-driven naks for persistent gaps.
        for from in 0..self.peers.len() {
            if from == self.shard {
                continue;
            }
            let link = &mut self.links[from];
            if link.ack_due {
                link.ack_due = false;
                let cumulative = link.recv_cumulative;
                let selective: Vec<u64> = link
                    .recv_buffered
                    .keys()
                    .take(SELECTIVE_ACK_CAP)
                    .copied()
                    .collect();
                self.send_control(
                    from,
                    &Frame::Ack(AckFrame {
                        cumulative,
                        selective,
                    }),
                );
                self.stats.acks_sent += 1;
            }
            let link = &mut self.links[from];
            if let Some((&max_seen, _)) = link.recv_buffered.iter().next_back() {
                // Buffer non-empty after the advance loop means
                // cumulative + 1 is missing right now.
                let due = link.last_nak.is_none_or(|t| now >= t + NAK_INTERVAL);
                if due {
                    link.last_nak = Some(now);
                    let lo = link.recv_cumulative + 1;
                    self.send_control(
                        from,
                        &Frame::NakRange {
                            from: lo,
                            to: max_seen,
                        },
                    );
                    self.stats.naks_sent += 1;
                }
            }
        }
        Ok(())
    }

    /// Pops the next delivered frame without blocking beyond one pump.
    pub fn try_recv(&mut self) -> io::Result<Option<(usize, Frame)>> {
        if let Some(x) = self.delivery.pop_front() {
            return Ok(Some(x));
        }
        self.pump()?;
        Ok(self.delivery.pop_front())
    }

    /// Next delivered `(peer shard, frame)`, pumping the socket until one
    /// arrives or `timeout` elapses.
    pub fn recv(&mut self, timeout: Duration) -> io::Result<(usize, Frame)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(x) = self.try_recv()? {
                return Ok(x);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("shard {}: no frame within {timeout:?}", self.shard),
                ));
            }
        }
    }

    /// Pumps until every queued datagram has been sent *and acked* (the
    /// clean-shutdown barrier), or `timeout` elapses.
    pub fn drain(&mut self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        while self.pending_datagrams() > 0 {
            self.pump()?;
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "shard {}: {} datagrams still unacked after {timeout:?}",
                        self.shard,
                        self.pending_datagrams()
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_shard::wire::{mailbox_frames, MAX_FRAME_ENTRIES};

    fn pair() -> (Endpoint, Endpoint) {
        pair_with(None, DEFAULT_MTU)
    }

    fn pair_with(loss: Option<DatagramLoss>, mtu: usize) -> (Endpoint, Endpoint) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let peers = vec![a.local_addr().unwrap(), b.local_addr().unwrap()];
        (
            Endpoint::new(a, 0, peers.clone(), loss, mtu).unwrap(),
            Endpoint::new(b, 1, peers, loss, mtu).unwrap(),
        )
    }

    /// Shuttles frames between two endpoints until `want` frames arrived
    /// at `b` (from a) or the deadline passes.
    fn shuttle(a: &mut Endpoint, b: &mut Endpoint, want: usize) -> Vec<Frame> {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut got = Vec::new();
        while got.len() < want {
            assert!(
                Instant::now() < deadline,
                "shuttle stalled at {}",
                got.len()
            );
            a.pump().unwrap();
            while let Some((from, f)) = b.try_recv().unwrap() {
                assert_eq!(from, 0);
                got.push(f);
            }
        }
        got
    }

    #[test]
    fn frames_arrive_in_order_and_windows_drain() {
        let (mut a, mut b) = pair();
        for r in 0..200u64 {
            a.send_frame(1, &Frame::Start { round: r }).unwrap();
        }
        let got = shuttle(&mut a, &mut b, 200);
        for (r, f) in got.iter().enumerate() {
            assert_eq!(f, &Frame::Start { round: r as u64 });
        }
        // Acks flow back and clear the send window completely.
        a.drain(Duration::from_secs(10)).unwrap();
        assert_eq!(a.pending_datagrams(), 0);
        assert_eq!(a.stats().data_datagrams, 200);
        assert_eq!(a.stats().injected_drops, 0);
        assert!(b.stats().acks_sent > 0);
    }

    #[test]
    fn oversized_frames_fragment_and_reassemble() {
        let entries: Vec<_> = (0..3000u32)
            .map(|i| (i, gossip_graph::NodeId(i), gossip_graph::NodeId(i + 1)))
            .collect();
        let frames = mailbox_frames(7, 0, 1, &entries, MAX_FRAME_ENTRIES);
        let (mut a, mut b) = pair_with(None, 500);
        for f in &frames {
            a.send_frame(1, &Frame::Mail(f.clone())).unwrap();
        }
        let got = shuttle(&mut a, &mut b, frames.len());
        for (f, g) in frames.iter().zip(&got) {
            assert_eq!(g, &Frame::Mail(f.clone()));
        }
        assert!(a.stats().fragments_sent > 0, "mtu 500 must fragment");
    }

    #[test]
    fn seeded_loss_recovers_and_injects_deterministically() {
        let loss = DatagramLoss {
            seed: 0xC0FFEE,
            drop_per_mille: 250,
            dup_per_mille: 100,
        };
        let run = || {
            let (mut a, mut b) = pair_with(Some(loss), DEFAULT_MTU);
            for r in 0..120u64 {
                a.send_frame(1, &Frame::Start { round: r }).unwrap();
            }
            let got = shuttle(&mut a, &mut b, 120);
            for (r, f) in got.iter().enumerate() {
                assert_eq!(
                    f,
                    &Frame::Start { round: r as u64 },
                    "order broke under loss"
                );
            }
            a.drain(Duration::from_secs(30)).unwrap();
            (a.stats().clone(), b.stats().clone())
        };
        let (a1, b1) = run();
        let (a2, _) = run();
        assert!(a1.injected_drops > 0, "25% drop never fired: {a1:?}");
        assert!(a1.injected_dups > 0);
        assert!(a1.retransmitted >= a1.injected_drops);
        assert!(b1.duplicates_received > 0);
        // The injected fault pattern is a pure function of (seed, link,
        // seq): identical across runs even though retransmit timing is not.
        assert_eq!(a1.injected_drops, a2.injected_drops);
        assert_eq!(a1.injected_dups, a2.injected_dups);
        assert_eq!(a1.data_datagrams, a2.data_datagrams);
    }

    #[test]
    fn loss_verdicts_are_a_pure_function() {
        let l = DatagramLoss {
            seed: 9,
            drop_per_mille: 500,
            dup_per_mille: 500,
        };
        for link in 0..4 {
            for seq in 1..64 {
                assert_eq!(l.verdict(link, seq), l.verdict(link, seq));
            }
        }
        // Different lanes see different fault patterns.
        let lane0: Vec<_> = (1..200).map(|s| l.verdict(0, s)).collect();
        let lane1: Vec<_> = (1..200).map(|s| l.verdict(1, s)).collect();
        assert_ne!(lane0, lane1);
    }
}
