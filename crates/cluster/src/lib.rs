//! # gossip-cluster
//!
//! **Datagram shard transport for cross-host runs**: the deterministic
//! multi-shard round engine of [`gossip_shard`], executed as `S` shard
//! endpoints that exchange [`wire`](gossip_shard::wire) frames
//! **peer-to-peer over UDP sockets** resolved from a static peer table.
//! Loopback ports stand in for hosts in tests and experiments; pointing
//! the table at real addresses is the deployment story.
//!
//! # How it differs from the UDS transport
//!
//! The stream transport ([`gossip_shard::transport`]) routes every mail
//! byte through a resident supervisor. Here there is **no supervisor on
//! the data path**: shard `s` sends each of its `(s, owner)` mailbox
//! streams *directly* to every other shard. What remains centralized is
//! only the round barrier — shard 0 (the **coordinator**, hosted in the
//! driving process and the engine the caller holds) collects
//! `Proposed`/`Done` barriers and issues `Start{r+1}` once round `r` is
//! fully applied everywhere. Consequently no shard can run more than one
//! round ahead, which bounds worker-side buffering to a single stash of
//! early next-round mail.
//!
//! Datagrams are unreliable, so a [`window`] layer supplies per-peer
//! send windows with ack/nak control frames, timeout + exponential
//! backoff retransmit, duplicate suppression, in-order delivery, and
//! datagram-sized fragmentation for frames over the MTU budget.
//!
//! # Bootstrap: streamed snapshots
//!
//! Workers start empty; the coordinator streams every segment of the
//! starting [`ShardedArenaGraph`] as [`gossip_graph::SegSnapshotChunk`]
//! frames. In the
//! default **streamed** mode the coordinator queues all chunks and the
//! round-0 `Start` behind them (per-link FIFO keeps the order), then
//! runs its own round-0 propose on a helper thread while the main thread
//! keeps pumping the windows — the first propose overlaps the tail of
//! snapshot transfer, and
//! [`ClusterStats::bootstrap_overlap_datagrams`] records how many
//! datagrams were confirmed inside that window.
//! [`ClusterBuilder::with_blocking_bootstrap`] restores the classic
//! handshake (wait for every worker's `Hello`) as the baseline.
//!
//! # Why determinism survives datagram reordering
//!
//! For any `(S, peer table, seeded loss rate)` the final state is
//! **bit-identical to the sequential engine** — pinned by the
//! determinism suite and a shrinking property suite. The chain: the
//! window layer delivers each directed link's frames in send order, the
//! mailbox assembler keys streams by `(source, owner, seq)` so
//! cross-link interleaving cannot matter, and the merge
//! ([`gossip_graph::ShardSeg::apply_half_edges`]) sorts by `(key, slot)`
//! and discards slots after dedup — only the relative order *within one
//! source stream* could ever matter, and that is exactly what the
//! window preserves. Seeded loss is a pure function of
//! `(seed, link, seq)` applied only to first transmissions, so injected
//! fault counts reproduce while repairs stay off the deterministic path.
//!
//! # Quickstart
//!
//! ```
//! use gossip_cluster::ClusterBuilder;
//! use gossip_core::{ComponentwiseComplete, RuleId};
//! use gossip_graph::{generators, ShardedArenaGraph};
//!
//! let und = generators::star(256);
//! let g = ShardedArenaGraph::from_undirected(&und, 2);
//! let mut check = ComponentwiseComplete::for_graph(&und);
//! let mut cluster = ClusterBuilder::new(g, RuleId::Push, 7).spawn().unwrap();
//! let out = cluster.run_until(&mut check, 1_000_000);
//! assert!(out.converged && cluster.graph().is_complete());
//! cluster.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use gossip_core::engine::{propose_chunk_range, PROPOSAL_CHUNK};
use gossip_core::listener::{PhaseEvent, PhaseNanos, RoundListener, RoundPhase};
use gossip_core::seam::{run_engine_until, RoundEngine};
use gossip_core::{
    with_rule, ConvergenceCheck, MembershipPlan, MembershipStats, Parallelism, RoundStats, RuleId,
    RunOutcome, TaggedProposal,
};
use gossip_graph::{HalfEdge, SegSnapshotAssembler, ShardSeg, ShardSegSnapshot, ShardedArenaGraph};
use gossip_shard::wire::{
    mailbox_frames, DoneBarrier, Frame, MailFrame, MailboxAssembler, ProposedBarrier, WorkerConfig,
    MAX_FRAME_ENTRIES,
};
use gossip_shard::TransportMode;
use rayon::prelude::*;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::process::{Child, Command};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod window;

pub use window::{DatagramLoss, Endpoint, EndpointStats, DEFAULT_MTU};

/// Environment variable carrying a re-execed cluster worker's shard
/// index. Set only by [`TransportMode::Process`] spawns.
pub const CLUSTER_SHARD_ENV: &str = "GOSSIP_CLUSTER_SHARD";
/// Comma-separated static peer table (shard order) for a re-execed
/// worker; the worker binds `peers[shard]`.
pub const CLUSTER_PEERS_ENV: &str = "GOSSIP_CLUSTER_PEERS";
/// Optional `seed:drop_per_mille:dup_per_mille` loss shim for a
/// re-execed worker (absent = lossless).
pub const CLUSTER_LOSS_ENV: &str = "GOSSIP_CLUSTER_LOSS";
/// Optional datagram payload budget override for a re-execed worker.
pub const CLUSTER_MTU_ENV: &str = "GOSSIP_CLUSTER_MTU";

/// How long any endpoint waits for the next frame before declaring its
/// peers dead. Generous: at `n = 2^20` a peer can legitimately spend
/// seconds inside a propose or apply phase without pumping its socket.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// One shard's slice of the parallel apply: `(shard index, owned segment,
/// merge scratch, added-count slot)`.
type ApplyWork<'a> = Vec<(
    usize,
    &'a mut ShardSeg,
    &'a mut Vec<(u64, u32)>,
    &'a mut u64,
)>;

fn protocol_err(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Linux peak-RSS (`VmHWM`) of the calling process, in bytes; 0 where
/// unavailable.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Entry budget for one snapshot chunk, sized so a typical chunk frame
/// fits one datagram (fragmentation remains the safety net for chunks
/// dominated by empty tombstone rows).
fn snapshot_chunk_entries(mtu: usize) -> usize {
    (mtu / 8).max(1)
}

/// Cluster-level counters for a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// The coordinator endpoint's window-layer counters (see
    /// [`EndpointStats`] for which rows are deterministic).
    pub endpoint: EndpointStats,
    /// Snapshot chunks streamed at bootstrap (deterministic).
    pub snapshot_chunks: u64,
    /// Datagrams confirmed while the coordinator's round-0 propose ran
    /// on its helper thread — the volume of bootstrap transfer that
    /// overlapped compute the blocking handshake would have spent idle.
    /// Zero in blocking mode, where the stream fully drains first.
    pub bootstrap_overlap_datagrams: u64,
    /// Wall time the round-0 propose ran while bootstrap datagrams were
    /// still pending — transfer hidden under compute. The blocking
    /// handshake spends this same span idle, so it doubles as the
    /// overlap savings against that baseline. Zero in blocking mode.
    pub bootstrap_overlap_ns: u64,
    /// Wall time the coordinator spent blocked waiting for worker
    /// `Hello`s (blocking mode only; streamed mode never waits).
    pub bootstrap_wait_ns: u64,
    /// Peak RSS reported by each shard in its latest `Done` barrier
    /// (index 0 is the coordinator's own). Genuine per-process
    /// high-water marks in process mode.
    pub worker_peak_rss_bytes: Vec<u64>,
}

/// Builds a [`ClusterEngine`] (builder style).
#[derive(Debug)]
pub struct ClusterBuilder {
    graph: ShardedArenaGraph,
    rule: RuleId,
    seed: u64,
    parallelism: Parallelism,
    membership: Option<MembershipPlan>,
    mode: TransportMode,
    loss: Option<DatagramLoss>,
    mtu: usize,
    blocking_bootstrap: bool,
    bind: Option<SocketAddr>,
    peers: Option<Vec<SocketAddr>>,
}

impl ClusterBuilder {
    /// Starts a builder over `graph` (its shard count fixes the cluster
    /// size) with the given rule and experiment seed.
    pub fn new(graph: ShardedArenaGraph, rule: RuleId, seed: u64) -> Self {
        ClusterBuilder {
            graph,
            rule,
            seed,
            parallelism: Parallelism::default(),
            membership: None,
            mode: TransportMode::Thread,
            loss: None,
            mtu: DEFAULT_MTU,
            blocking_bootstrap: false,
            bind: None,
            peers: None,
        }
    }

    /// Worker hosting mode (default: [`TransportMode::Thread`]).
    /// Process mode re-execs the current binary per worker shard; the
    /// hosting binary must call [`maybe_run_cluster_shard`] first thing
    /// in `main`, and **never** use process mode from a default libtest
    /// harness.
    pub fn with_mode(mut self, mode: TransportMode) -> Self {
        self.mode = mode;
        self
    }

    /// Parallelism policy inside the coordinator and each worker.
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Installs a membership plan, shipped once in `Config` and applied
    /// locally by every shard at the same pre-increment round points as
    /// the in-process engines.
    pub fn with_membership(mut self, plan: MembershipPlan) -> Self {
        self.membership = Some(plan);
        self
    }

    /// Enables the seeded datagram loss shim on **every** endpoint
    /// (coordinator and workers), for the fault lanes of all links.
    pub fn with_loss(mut self, loss: DatagramLoss) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Datagram payload budget in bytes (default [`DEFAULT_MTU`]);
    /// frames over it are fragmented.
    pub fn with_mtu(mut self, mtu: usize) -> Self {
        assert!(mtu > 0, "mtu must be positive");
        self.mtu = mtu;
        self
    }

    /// Switches bootstrap to the blocking-handshake baseline: wait for
    /// every worker's `Hello` before the first `Start` (default:
    /// streamed, overlapping the first propose with snapshot transfer).
    pub fn with_blocking_bootstrap(mut self, blocking: bool) -> Self {
        self.blocking_bootstrap = blocking;
        self
    }

    /// Address the coordinator (shard 0) binds (default
    /// `127.0.0.1:0`).
    pub fn with_bind(mut self, addr: SocketAddr) -> Self {
        self.bind = Some(addr);
        self
    }

    /// Static worker addresses for shards `1..S` (default: auto-assigned
    /// loopback ports). Length must be `shard_count - 1`.
    pub fn with_peers(mut self, peers: Vec<SocketAddr>) -> Self {
        self.peers = Some(peers);
        self
    }

    /// Binds the sockets, spawns the workers, streams bootstrap state,
    /// and returns the running engine (the coordinator, shard 0).
    pub fn spawn(self) -> io::Result<ClusterEngine> {
        ClusterEngine::spawn(self)
    }
}

enum WorkerHandle {
    Thread(JoinHandle<io::Result<()>>),
    Process(Child),
}

impl std::fmt::Debug for WorkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerHandle::Thread(_) => f.write_str("WorkerHandle::Thread"),
            WorkerHandle::Process(c) => write!(f, "WorkerHandle::Process({})", c.id()),
        }
    }
}

/// The coordinator (shard 0) of a datagram shard cluster. Implements
/// [`RoundEngine`], so the convergence seam, listeners, and the serve
/// layer drive it exactly like the in-process engines;
/// [`ClusterEngine::graph`] is the coordinator's authoritative replica,
/// cross-checked against every worker each round.
#[derive(Debug)]
pub struct ClusterEngine {
    graph: ShardedArenaGraph,
    rule: RuleId,
    seed: u64,
    round: u64,
    parallel: bool,
    membership: Option<MembershipPlan>,
    endpoint: Endpoint,
    workers: Vec<WorkerHandle>,
    chunk_bufs: Vec<Vec<TaggedProposal>>,
    mail_out: Vec<Vec<HalfEdge>>,
    scratch: Vec<Vec<(u64, u32)>>,
    added: Vec<u64>,
    phases: PhaseNanos,
    snapshot_chunks: u64,
    bootstrap_overlap_datagrams: u64,
    bootstrap_overlap_ns: u64,
    bootstrap_wait_ns: u64,
    worker_peak_rss_bytes: Vec<u64>,
    hello_seen: Vec<bool>,
    blocking_bootstrap: bool,
    shut_down: bool,
}

impl ClusterEngine {
    fn spawn(b: ClusterBuilder) -> io::Result<ClusterEngine> {
        let shards = b.graph.shard_count();
        let parallel = match b.parallelism {
            Parallelism::Sequential => false,
            Parallelism::Parallel => true,
            Parallelism::Auto { threshold } => b.graph.n() >= threshold,
        };

        // Resolve the peer table. The coordinator binds first so
        // `peers[0]` is concrete even when auto-assigned.
        let bind = b
            .bind
            .unwrap_or_else(|| "127.0.0.1:0".parse().expect("loopback addr"));
        let coord_socket = UdpSocket::bind(bind)?;
        let mut table = vec![coord_socket.local_addr()?];
        let worker_addrs: Vec<Option<SocketAddr>> = match &b.peers {
            Some(list) => {
                if list.len() != shards.saturating_sub(1) {
                    return Err(protocol_err(format!(
                        "peer table needs {} worker addresses, got {}",
                        shards.saturating_sub(1),
                        list.len()
                    )));
                }
                list.iter().copied().map(Some).collect()
            }
            None => vec![None; shards.saturating_sub(1)],
        };

        // Bind worker sockets. Thread mode hands the bound socket to the
        // worker thread (race-free even with auto ports). Process mode
        // probe-binds auto addresses to reserve a free port, then drops
        // the socket so the child can bind it — a tiny reuse window that
        // is acceptable on loopback and absent with explicit tables.
        let mut worker_sockets: Vec<Option<UdpSocket>> = Vec::new();
        for (i, want) in worker_addrs.iter().enumerate() {
            let addr = want.unwrap_or_else(|| "127.0.0.1:0".parse().expect("loopback addr"));
            let sock = UdpSocket::bind(addr).map_err(|e| {
                io::Error::new(e.kind(), format!("binding worker {} at {addr}: {e}", i + 1))
            })?;
            table.push(sock.local_addr()?);
            worker_sockets.push(Some(sock));
        }

        let mut workers = Vec::with_capacity(shards.saturating_sub(1));
        for s in 1..shards {
            let handle = match b.mode {
                TransportMode::Thread => {
                    let socket = worker_sockets[s - 1].take().expect("socket bound above");
                    let peers = table.clone();
                    let loss = b.loss;
                    let mtu = b.mtu;
                    let thread = std::thread::Builder::new()
                        .name(format!("gossip-cluster-{s}"))
                        .spawn(move || run_cluster_shard(socket, peers, s, loss, mtu))?;
                    WorkerHandle::Thread(thread)
                }
                TransportMode::Process => {
                    drop(worker_sockets[s - 1].take());
                    let peers_env: Vec<String> = table.iter().map(|a| a.to_string()).collect();
                    let mut cmd = Command::new(std::env::current_exe()?);
                    cmd.env(CLUSTER_SHARD_ENV, s.to_string())
                        .env(CLUSTER_PEERS_ENV, peers_env.join(","))
                        .env(CLUSTER_MTU_ENV, b.mtu.to_string());
                    if let Some(l) = b.loss {
                        cmd.env(
                            CLUSTER_LOSS_ENV,
                            format!("{}:{}:{}", l.seed, l.drop_per_mille, l.dup_per_mille),
                        );
                    }
                    WorkerHandle::Process(cmd.spawn()?)
                }
            };
            workers.push(handle);
        }

        let endpoint = Endpoint::new(coord_socket, 0, table.clone(), b.loss, b.mtu)?;
        let n_chunks = b.graph.n().div_ceil(PROPOSAL_CHUNK);
        let mut engine = ClusterEngine {
            graph: b.graph,
            rule: b.rule,
            seed: b.seed,
            round: 0,
            parallel,
            membership: b.membership,
            endpoint,
            workers,
            chunk_bufs: vec![Vec::new(); n_chunks],
            mail_out: vec![Vec::new(); shards],
            scratch: vec![Vec::new(); shards],
            added: vec![0; shards],
            phases: PhaseNanos::default(),
            snapshot_chunks: 0,
            bootstrap_overlap_datagrams: 0,
            bootstrap_overlap_ns: 0,
            bootstrap_wait_ns: 0,
            worker_peak_rss_bytes: vec![0; shards],
            hello_seen: vec![false; shards],
            blocking_bootstrap: b.blocking_bootstrap,
            shut_down: false,
        };
        engine.hello_seen[0] = true;

        // Bootstrap: Config then every segment's chunk stream, to every
        // worker. Queued, not awaited — per-link FIFO guarantees each
        // worker sees Config → chunks → (later) Start in order.
        let events = engine
            .membership
            .as_ref()
            .map(|p| p.events().to_vec())
            .unwrap_or_default();
        let budget = snapshot_chunk_entries(b.mtu);
        let snapshots: Vec<ShardSegSnapshot> = (0..shards)
            .map(|s| engine.graph.segment(s).snapshot())
            .collect();
        for d in 1..shards {
            engine.endpoint.send_frame(
                d,
                &Frame::Config(WorkerConfig {
                    shard: d as u32,
                    shards: shards as u32,
                    n: engine.graph.n() as u64,
                    seed: engine.seed,
                    rule: engine.rule,
                    parallel,
                    strict: b.loss.is_none(),
                    events: events.clone(),
                    peers: table.iter().map(|a| a.to_string()).collect(),
                }),
            )?;
            for (s, snap) in snapshots.iter().enumerate() {
                for chunk in snap.chunks(budget) {
                    engine.endpoint.send_frame(
                        d,
                        &Frame::SnapshotChunk {
                            segment: s as u32,
                            chunk,
                        },
                    )?;
                    engine.snapshot_chunks += 1;
                }
            }
        }

        if engine.blocking_bootstrap {
            let t = Instant::now();
            while !engine.hello_seen.iter().all(|&h| h) {
                let (from, frame) = engine.endpoint.recv(RECV_TIMEOUT)?;
                match frame {
                    Frame::Hello { shard } if shard as usize == from => {
                        engine.hello_seen[from] = true;
                    }
                    other => {
                        return Err(protocol_err(format!(
                            "worker {from}: expected Hello during blocking bootstrap, got {other:?}"
                        )))
                    }
                }
            }
            engine.bootstrap_wait_ns = t.elapsed().as_nanos() as u64;
        }
        Ok(engine)
    }

    /// The authoritative graph `G_t` (the coordinator's replica).
    #[inline]
    pub fn graph(&self) -> &ShardedArenaGraph {
        &self.graph
    }

    /// Rounds executed so far.
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of shards (coordinator included).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.graph.shard_count()
    }

    /// The rule's registry id.
    pub fn rule(&self) -> RuleId {
        self.rule
    }

    /// The resolved static peer table (shard order; index 0 is the
    /// coordinator).
    pub fn peer_table(&self) -> &[SocketAddr] {
        self.endpoint.peers()
    }

    /// Cumulative per-phase wall time. `Propose`/`Route`/`Serialize` are
    /// the max over shards (the critical path), `Flush` coordinator send
    /// time, `Drain` coordinator collect time, `Apply` the coordinator's
    /// own merge.
    pub fn phases(&self) -> PhaseNanos {
        self.phases
    }

    /// Cluster counters so far.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            endpoint: self.endpoint.stats().clone(),
            snapshot_chunks: self.snapshot_chunks,
            bootstrap_overlap_datagrams: self.bootstrap_overlap_datagrams,
            bootstrap_overlap_ns: self.bootstrap_overlap_ns,
            bootstrap_wait_ns: self.bootstrap_wait_ns,
            worker_peak_rss_bytes: self.worker_peak_rss_bytes.clone(),
        }
    }

    /// Executes one synchronous round across the cluster.
    pub fn step(&mut self) -> RoundStats {
        self.try_step(None).expect("cluster round failed")
    }

    /// Runs until `check` fires or `max_rounds` is reached (the shared
    /// loop from [`gossip_core::seam`]).
    pub fn run_until<C: ConvergenceCheck<ShardedArenaGraph>>(
        &mut self,
        check: &mut C,
        max_rounds: u64,
    ) -> RunOutcome {
        run_engine_until(self, check, max_rounds)
    }

    /// One round, with full error reporting (worker death, protocol
    /// violations, cross-check failures all surface as `io::Error`).
    pub fn try_step(
        &mut self,
        mut listener: Option<&mut dyn RoundListener<ShardedArenaGraph>>,
    ) -> io::Result<RoundStats> {
        let shards = self.shard_count();
        let r = self.round;
        let plan = *self.graph.plan();

        // Membership — same pre-increment round key as every engine.
        let t = Instant::now();
        let mem_delta = match self.membership.as_mut() {
            Some(p) => p.apply_due(r, &mut self.graph),
            None => MembershipStats::default(),
        };
        let mem_nanos = t.elapsed().as_nanos() as u64;

        // Kick off the round everywhere, then do our own propose while
        // the Start frames (and, in round 0, the bootstrap tail) drain.
        let mut flush_ns = 0u64;
        let t = Instant::now();
        for d in 1..shards {
            self.endpoint.send_frame(d, &Frame::Start { round: r })?;
        }
        flush_ns += t.elapsed().as_nanos() as u64;
        self.round += 1;

        let t = Instant::now();
        if r == 0 && !self.blocking_bootstrap {
            // The streamed-bootstrap overlap: the windows only move when
            // the endpoint is pumped, so run the first propose on a
            // helper thread and keep draining the snapshot stream under
            // it. Everything confirmed in this window transferred during
            // compute the blocking handshake would have spent idle.
            let pending_before = self.endpoint.pending_datagrams();
            let graph = &self.graph;
            let (rule, seed, parallel) = (self.rule, self.seed, self.parallel);
            let chunk_bufs = &mut self.chunk_bufs;
            let endpoint = &mut self.endpoint;
            let span = plan.chunk_span(0);
            let mut overlap_ns = 0u64;
            std::thread::scope(|scope| -> io::Result<()> {
                let propose = scope.spawn(move || {
                    with_rule!(rule, |rl| propose_chunk_range(
                        graph, &rl, seed, r, chunk_bufs, span, parallel,
                    ));
                });
                let t_overlap = Instant::now();
                while !propose.is_finished() {
                    endpoint.pump()?;
                    if endpoint.pending_datagrams() > 0 {
                        overlap_ns = t_overlap.elapsed().as_nanos() as u64;
                    }
                }
                propose
                    .join()
                    .map_err(|_| protocol_err("propose thread panicked"))
            })?;
            self.bootstrap_overlap_ns = overlap_ns;
            self.bootstrap_overlap_datagrams =
                pending_before.saturating_sub(self.endpoint.pending_datagrams());
        } else {
            with_rule!(self.rule, |rule| propose_chunk_range(
                &self.graph,
                &rule,
                self.seed,
                r,
                &mut self.chunk_bufs,
                plan.chunk_span(0),
                self.parallel,
            ));
        }
        let mut propose_ns = t.elapsed().as_nanos() as u64;

        // Route own proposals with source-local slots (safe: the merge
        // discards slots after dedup — see gossip_shard's module docs).
        let t = Instant::now();
        for b in self.mail_out.iter_mut() {
            b.clear();
        }
        let mut proposed_total = 0u64;
        let mut base = 0u32;
        for c in plan.chunk_span(0) {
            let buf = &self.chunk_bufs[c];
            proposed_total += buf.len() as u64;
            for (i, &(_, a, b)) in buf.iter().enumerate() {
                let here = base + i as u32;
                if a == b {
                    continue;
                }
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                self.mail_out[plan.owner(lo)].push((here, lo, hi));
                self.mail_out[plan.owner(hi)].push((here, hi, lo));
            }
            base += buf.len() as u32;
        }
        let mut route_ns = t.elapsed().as_nanos() as u64;

        // Upload our streams peer-to-peer: every (0, owner) stream goes
        // to every worker.
        let t = Instant::now();
        for d in 1..shards {
            for owner in 0..shards {
                for f in
                    mailbox_frames(r, 0, owner as u32, &self.mail_out[owner], MAX_FRAME_ENTRIES)
                {
                    self.endpoint.send_frame(d, &Frame::Mail(f))?;
                }
            }
        }
        let mut serialize_ns = t.elapsed().as_nanos() as u64;

        // Collect: peer mail until our assembler completes, plus every
        // worker's Proposed and Done barriers.
        let t = Instant::now();
        let mut asm = MailboxAssembler::for_worker(shards, 0, r, false);
        let mut proposed_seen = vec![false; shards];
        let mut done_seen = vec![false; shards];
        proposed_seen[0] = true;
        done_seen[0] = true;
        let mut worker_added = vec![0u64; shards];
        while !(asm.is_complete()
            && proposed_seen.iter().all(|&p| p)
            && done_seen.iter().all(|&d| d))
        {
            let (from, frame) = self.endpoint.recv(RECV_TIMEOUT)?;
            match frame {
                Frame::Mail(f) if f.round == r && f.source as usize == from => {
                    asm.accept(&f).map_err(protocol_err)?;
                }
                Frame::Proposed(b) if b.round == r && b.source as usize == from => {
                    proposed_total += b.proposed;
                    propose_ns = propose_ns.max(b.propose_ns);
                    route_ns = route_ns.max(b.route_ns);
                    serialize_ns = serialize_ns.max(b.serialize_ns);
                    proposed_seen[from] = true;
                }
                Frame::Done(b) if b.round == r && b.source as usize == from => {
                    worker_added[from] = b.added;
                    self.worker_peak_rss_bytes[from] =
                        self.worker_peak_rss_bytes[from].max(b.peak_rss_bytes);
                    done_seen[from] = true;
                }
                Frame::Hello { shard } if shard as usize == from => {
                    // Streamed bootstrap: the worker's assembly ack
                    // arrives mid-round instead of up front.
                    self.hello_seen[from] = true;
                }
                other => {
                    return Err(protocol_err(format!(
                        "peer {from}: unexpected {other:?} in round {r}"
                    )))
                }
            }
        }
        let drain_ns = t.elapsed().as_nanos() as u64;

        // Authoritative apply: full grid, own source from local buffers.
        let t_apply = Instant::now();
        let grid = asm.into_mail();
        let mail_out = &self.mail_out;
        let apply = |t_shard: usize, seg: &mut ShardSeg, scr: &mut Vec<(u64, u32)>| -> u64 {
            let sources: Vec<&[HalfEdge]> = (0..shards)
                .map(|s| {
                    if s == 0 {
                        mail_out[t_shard].as_slice()
                    } else {
                        grid[s][t_shard].as_slice()
                    }
                })
                .collect();
            seg.apply_half_edges(&sources, scr)
        };
        let segs = self.graph.segments_mut();
        if self.parallel {
            let mut work: ApplyWork<'_> = segs
                .into_iter()
                .zip(self.scratch.iter_mut())
                .zip(self.added.iter_mut())
                .enumerate()
                .map(|(t, ((seg, scr), added))| (t, seg, scr, added))
                .collect();
            work.par_iter_mut().for_each(|(t, seg, scr, added)| {
                **added = apply(*t, seg, scr);
            });
        } else {
            for (t_shard, ((seg, scr), added)) in segs
                .into_iter()
                .zip(self.scratch.iter_mut())
                .zip(self.added.iter_mut())
                .enumerate()
            {
                *added = apply(t_shard, seg, scr);
            }
        }
        let apply_ns = t_apply.elapsed().as_nanos() as u64;
        self.worker_peak_rss_bytes[0] = self.worker_peak_rss_bytes[0].max(peak_rss_bytes());

        // Cross-check every worker's own-segment count against ours — a
        // divergent replica is a protocol bug, not something to paper
        // over.
        for (d, &theirs) in worker_added.iter().enumerate().take(shards).skip(1) {
            if theirs != self.added[d] {
                return Err(protocol_err(format!(
                    "shard {d} added {theirs} edges in round {r}, coordinator added {}",
                    self.added[d]
                )));
            }
        }

        let round_for_events = self.round;
        let mut emit = |phase: RoundPhase, nanos: u64| {
            let ev = PhaseEvent {
                round: round_for_events,
                phase,
                nanos,
            };
            self.phases.absorb(&ev);
            if let Some(l) = listener.as_deref_mut() {
                l.on_phase(&ev);
            }
        };
        if mem_delta != MembershipStats::default() {
            emit(RoundPhase::Membership, mem_nanos);
        }
        emit(RoundPhase::Propose, propose_ns);
        emit(RoundPhase::Route, route_ns);
        emit(RoundPhase::Serialize, serialize_ns);
        emit(RoundPhase::Flush, flush_ns);
        emit(RoundPhase::Drain, drain_ns);
        emit(RoundPhase::Apply, apply_ns);

        Ok(RoundStats {
            proposed: proposed_total,
            added: self.added.iter().sum(),
        })
    }

    /// Sends `Shutdown` to every worker, drains the windows, and reaps
    /// threads/processes. Called automatically on drop; explicit calls
    /// surface errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        if self.shut_down {
            return Ok(());
        }
        self.shut_down = true;
        let mut first_err: Option<io::Error> = None;
        for d in 1..self.shard_count() {
            if let Err(e) = self.endpoint.send_frame(d, &Frame::Shutdown) {
                first_err.get_or_insert(e);
            }
        }
        if let Err(e) = self.endpoint.drain(Duration::from_secs(30)) {
            first_err.get_or_insert(e);
        }
        for w in self.workers.drain(..) {
            match w {
                WorkerHandle::Thread(handle) => match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(_) => {
                        first_err.get_or_insert_with(|| protocol_err("worker thread panicked"));
                    }
                },
                WorkerHandle::Process(mut child) => match child.wait() {
                    Ok(status) if status.success() => {}
                    Ok(status) => {
                        first_err.get_or_insert_with(|| {
                            protocol_err(format!("worker process exited with {status}"))
                        });
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                },
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for ClusterEngine {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl RoundEngine for ClusterEngine {
    type Graph = ShardedArenaGraph;
    #[inline]
    fn graph(&self) -> &ShardedArenaGraph {
        &self.graph
    }
    #[inline]
    fn quanta(&self) -> u64 {
        self.round
    }
    #[inline]
    fn step_quantum(&mut self) -> RoundStats {
        self.step()
    }
    #[inline]
    fn step_listened(&mut self, listener: &mut dyn RoundListener<ShardedArenaGraph>) -> RoundStats {
        self.try_step(Some(listener)).expect("cluster round failed")
    }
}

/// If [`CLUSTER_SHARD_ENV`] is set, runs this process as a cluster shard
/// worker (binding its slot of the peer table from
/// [`CLUSTER_PEERS_ENV`]) and exits; otherwise returns immediately.
/// Binaries that may host [`TransportMode::Process`] cluster workers —
/// the CLI, `exp_cluster`, `run_all`, the `udp_process` test — call this
/// first thing in `main`.
pub fn maybe_run_cluster_shard() {
    let Ok(shard_s) = std::env::var(CLUSTER_SHARD_ENV) else {
        return;
    };
    let exit = |msg: String| -> ! {
        eprintln!("gossip cluster worker: {msg}");
        std::process::exit(2);
    };
    let Ok(shard) = shard_s.parse::<usize>() else {
        exit(format!("bad {CLUSTER_SHARD_ENV}={shard_s}"));
    };
    let peers_s = std::env::var(CLUSTER_PEERS_ENV)
        .unwrap_or_else(|_| exit(format!("{CLUSTER_PEERS_ENV} not set")));
    let peers: Vec<SocketAddr> = peers_s
        .split(',')
        .map(|a| {
            a.parse()
                .unwrap_or_else(|_| exit(format!("bad peer address {a}")))
        })
        .collect();
    if shard == 0 || shard >= peers.len() {
        exit(format!(
            "shard {shard} outside peer table of {}",
            peers.len()
        ));
    }
    let loss = std::env::var(CLUSTER_LOSS_ENV).ok().map(|spec| {
        let parts: Vec<&str> = spec.split(':').collect();
        let parse = |i: usize| -> u64 {
            parts
                .get(i)
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| exit(format!("bad {CLUSTER_LOSS_ENV}={spec}")))
        };
        DatagramLoss {
            seed: parse(0),
            drop_per_mille: parse(1) as u16,
            dup_per_mille: parse(2) as u16,
        }
    });
    let mtu = std::env::var(CLUSTER_MTU_ENV)
        .ok()
        .and_then(|m| m.parse().ok())
        .unwrap_or(DEFAULT_MTU);

    // The parent released this port just before exec; retry briefly in
    // case the OS is slow to make it available again.
    let addr = peers[shard];
    let mut socket = None;
    for _ in 0..50 {
        match UdpSocket::bind(addr) {
            Ok(s) => {
                socket = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(40)),
        }
    }
    let Some(socket) = socket else {
        exit(format!("cannot bind {addr}"));
    };
    match run_cluster_shard(socket, peers, shard, loss, mtu) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("gossip cluster worker: {e}");
            std::process::exit(1);
        }
    }
}

struct WorkerState {
    shard: usize,
    shards: usize,
    graph: ShardedArenaGraph,
    rule: RuleId,
    seed: u64,
    parallel: bool,
    membership: MembershipPlan,
    chunk_bufs: Vec<Vec<TaggedProposal>>,
    mail_out: Vec<Vec<HalfEdge>>,
    scratch: Vec<Vec<(u64, u32)>>,
    added: Vec<u64>,
}

/// The worker loop for shard `shard`, shared verbatim by thread mode and
/// process mode: bootstrap (Config + streamed snapshot chunks, answered
/// with `Hello`), then rounds driven by the coordinator's `Start`
/// barriers until `Shutdown`.
pub fn run_cluster_shard(
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    shard: usize,
    loss: Option<DatagramLoss>,
    mtu: usize,
) -> io::Result<()> {
    let mut ep = Endpoint::new(socket, shard, peers, loss, mtu)?;

    // Bootstrap. Early round-0 mail from faster peers is legal here —
    // only the coordinator's own link is FIFO-ordered ahead of Start.
    let mut cfg: Option<WorkerConfig> = None;
    let mut asms: Vec<SegSnapshotAssembler> = Vec::new();
    let mut segments_done = 0usize;
    let mut pending: Vec<MailFrame> = Vec::new();
    let cfg = loop {
        let (from, frame) = ep.recv(RECV_TIMEOUT)?;
        match frame {
            Frame::Config(c) if from == 0 && cfg.is_none() => {
                if c.shard as usize != shard || c.shards as usize != ep.peers().len() {
                    return Err(protocol_err(format!(
                        "config for shard {}/{} but I am {shard}/{}",
                        c.shard,
                        c.shards,
                        ep.peers().len()
                    )));
                }
                asms = (0..c.shards).map(|_| SegSnapshotAssembler::new()).collect();
                cfg = Some(c);
            }
            Frame::SnapshotChunk { segment, chunk } if from == 0 => {
                let asm = asms
                    .get_mut(segment as usize)
                    .ok_or_else(|| protocol_err(format!("chunk for segment {segment}")))?;
                if asm.accept(&chunk).map_err(protocol_err)? {
                    segments_done += 1;
                }
                if segments_done == asms.len() {
                    break cfg.take().expect("config precedes chunks on a FIFO link");
                }
            }
            Frame::Mail(f) if f.round == 0 => pending.push(f),
            other => {
                return Err(protocol_err(format!(
                    "peer {from}: unexpected {other:?} during bootstrap"
                )))
            }
        }
    };
    let snaps: Vec<ShardSegSnapshot> = asms.into_iter().map(SegSnapshotAssembler::finish).collect();
    let shards = cfg.shards as usize;
    let graph = ShardedArenaGraph::from_segment_snapshots(cfg.n as usize, shards, &snaps)
        .map_err(protocol_err)?;
    ep.send_frame(
        0,
        &Frame::Hello {
            shard: shard as u32,
        },
    )?;

    let n_chunks = graph.n().div_ceil(PROPOSAL_CHUNK);
    let mut state = WorkerState {
        shard,
        shards,
        graph,
        rule: cfg.rule,
        seed: cfg.seed,
        parallel: cfg.parallel,
        membership: MembershipPlan::new(cfg.events),
        chunk_bufs: vec![Vec::new(); n_chunks],
        mail_out: vec![Vec::new(); shards],
        scratch: vec![Vec::new(); shards],
        added: vec![0; shards],
    };

    let mut expected = 0u64;
    loop {
        let (from, frame) = ep.recv(RECV_TIMEOUT)?;
        match frame {
            Frame::Start { round } if from == 0 && round == expected => {
                cluster_round(round, &mut state, &mut ep, &mut pending)?;
                expected += 1;
            }
            // A faster peer's mail for the round we have not started yet
            // (it cannot be further ahead: Start{r+1} implies every shard
            // finished r).
            Frame::Mail(f) if f.round == expected => pending.push(f),
            Frame::Shutdown if from == 0 => {
                ep.drain(Duration::from_secs(30))?;
                return Ok(());
            }
            other => {
                return Err(protocol_err(format!(
                    "peer {from}: expected Start/Shutdown, got {other:?}"
                )))
            }
        }
    }
}

fn cluster_round(
    r: u64,
    state: &mut WorkerState,
    ep: &mut Endpoint,
    pending: &mut Vec<MailFrame>,
) -> io::Result<()> {
    let plan = *state.graph.plan();
    let shards = state.shards;
    let shard = state.shard;

    // Membership — same pre-increment round key as every other engine.
    state.membership.apply_due(r, &mut state.graph);

    // Propose only this shard's chunk span (RNG streams are keyed by
    // (seed, round, node) alone, so the restricted phase fills exactly
    // the buffers the full phase would).
    let t = Instant::now();
    with_rule!(state.rule, |rule| propose_chunk_range(
        &state.graph,
        &rule,
        state.seed,
        r,
        &mut state.chunk_bufs,
        plan.chunk_span(shard),
        state.parallel,
    ));
    let propose_ns = t.elapsed().as_nanos() as u64;

    // Route with source-local slots.
    let t = Instant::now();
    for b in state.mail_out.iter_mut() {
        b.clear();
    }
    let mut proposed = 0u64;
    let mut base = 0u32;
    for c in plan.chunk_span(shard) {
        let buf = &state.chunk_bufs[c];
        proposed += buf.len() as u64;
        for (i, &(_, a, b)) in buf.iter().enumerate() {
            let here = base + i as u32;
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            state.mail_out[plan.owner(lo)].push((here, lo, hi));
            state.mail_out[plan.owner(hi)].push((here, hi, lo));
        }
        base += buf.len() as u32;
    }
    let route_ns = t.elapsed().as_nanos() as u64;

    // Peer-to-peer upload: every (shard, owner) stream to every peer —
    // no supervisor hop.
    let t = Instant::now();
    for d in 0..shards {
        if d == shard {
            continue;
        }
        for owner in 0..shards {
            for f in mailbox_frames(
                r,
                shard as u32,
                owner as u32,
                &state.mail_out[owner],
                MAX_FRAME_ENTRIES,
            ) {
                ep.send_frame(d, &Frame::Mail(f))?;
            }
        }
    }
    let serialize_ns = t.elapsed().as_nanos() as u64;
    ep.send_frame(
        0,
        &Frame::Proposed(ProposedBarrier {
            round: r,
            source: shard as u32,
            proposed,
            propose_ns,
            route_ns,
            serialize_ns,
        }),
    )?;

    // Collect every other shard's streams. The window layer already
    // repaired loss and restored per-link order, so completeness is just
    // "all expected streams closed".
    let t = Instant::now();
    let mut asm = MailboxAssembler::for_worker(shards, shard, r, false);
    for f in pending.drain(..) {
        asm.accept(&f).map_err(protocol_err)?;
    }
    while !asm.is_complete() {
        let (from, frame) = ep.recv(RECV_TIMEOUT)?;
        match frame {
            Frame::Mail(f) if f.round == r && f.source as usize == from => {
                asm.accept(&f).map_err(protocol_err)?;
            }
            other => {
                return Err(protocol_err(format!(
                    "peer {from}: expected round-{r} mail, got {other:?}"
                )))
            }
        }
    }
    let drain_ns = t.elapsed().as_nanos() as u64;

    // Apply the full grid — peer streams from the assembler, this
    // shard's own from its local route buffers — to the replica.
    let t = Instant::now();
    let grid = asm.into_mail();
    let mail_out = &state.mail_out;
    let apply = |t_shard: usize, seg: &mut ShardSeg, scr: &mut Vec<(u64, u32)>| -> u64 {
        let sources: Vec<&[HalfEdge]> = (0..shards)
            .map(|s| {
                if s == shard {
                    mail_out[t_shard].as_slice()
                } else {
                    grid[s][t_shard].as_slice()
                }
            })
            .collect();
        seg.apply_half_edges(&sources, scr)
    };
    let segs = state.graph.segments_mut();
    if state.parallel {
        let mut work: ApplyWork<'_> = segs
            .into_iter()
            .zip(state.scratch.iter_mut())
            .zip(state.added.iter_mut())
            .enumerate()
            .map(|(t, ((seg, scr), added))| (t, seg, scr, added))
            .collect();
        work.par_iter_mut().for_each(|(t, seg, scr, added)| {
            **added = apply(*t, seg, scr);
        });
    } else {
        for (t_shard, ((seg, scr), added)) in segs
            .into_iter()
            .zip(state.scratch.iter_mut())
            .zip(state.added.iter_mut())
            .enumerate()
        {
            *added = apply(t_shard, seg, scr);
        }
    }
    let apply_ns = t.elapsed().as_nanos() as u64;

    ep.send_frame(
        0,
        &Frame::Done(DoneBarrier {
            round: r,
            source: shard as u32,
            added: state.added[shard],
            apply_ns,
            drain_ns,
            peak_rss_bytes: peak_rss_bytes(),
        }),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_core::rng::stream_rng;
    use gossip_core::{ChurnBursts, ComponentwiseComplete, Pull, Push};
    use gossip_graph::generators;
    use gossip_shard::ShardedEngine;

    fn sharded(n: usize, extra: u64, seed: u64, shards: usize) -> ShardedArenaGraph {
        let und = generators::tree_plus_random_edges(n, extra, &mut stream_rng(seed, 0, 0));
        ShardedArenaGraph::from_undirected(&und, shards)
    }

    fn assert_graphs_equal(a: &ShardedArenaGraph, b: &ShardedArenaGraph, what: &str) {
        assert_eq!(a.m(), b.m(), "{what}: edge count diverged");
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u), "{what}: row {u:?} diverged");
        }
    }

    #[test]
    fn cluster_matches_in_process_engine() {
        let n = 3000;
        for shards in [2, 4] {
            let g = sharded(n, 2 * n as u64, 11, shards);
            let mut inproc = ShardedEngine::new(g.clone(), Pull, 77);
            let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 77)
                .spawn()
                .expect("spawn");
            for round in 0..6 {
                assert_eq!(
                    inproc.step(),
                    cluster.step(),
                    "S={shards} round={round}: stats diverged over datagrams"
                );
            }
            assert_graphs_equal(inproc.graph(), cluster.graph(), "cluster");
            cluster.graph().validate().unwrap();
            cluster.shutdown().unwrap();
        }
    }

    #[test]
    fn lossy_cluster_converges_to_the_same_graph() {
        let n = 2000;
        let g = sharded(n, n as u64, 5, 3);
        let mut inproc = ShardedEngine::new(g.clone(), Push, 9);
        let mut cluster = ClusterBuilder::new(g, RuleId::Push, 9)
            .with_loss(DatagramLoss {
                seed: 0xBAD,
                drop_per_mille: 100,
                dup_per_mille: 50,
            })
            .spawn()
            .expect("spawn");
        for round in 0..4 {
            assert_eq!(inproc.step(), cluster.step(), "round {round}");
        }
        assert_graphs_equal(inproc.graph(), cluster.graph(), "lossy cluster");
        let stats = cluster.stats();
        assert!(
            stats.endpoint.injected_drops > 0,
            "injection never fired: {stats:?}"
        );
        assert!(stats.endpoint.retransmitted >= stats.endpoint.injected_drops);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn blocking_bootstrap_matches_streamed_and_reports_no_overlap() {
        let n = 1500;
        let g = sharded(n, n as u64, 3, 2);
        let mut streamed = ClusterBuilder::new(g.clone(), RuleId::Pull, 4)
            .spawn()
            .expect("spawn streamed");
        let mut blocking = ClusterBuilder::new(g, RuleId::Pull, 4)
            .with_blocking_bootstrap(true)
            .spawn()
            .expect("spawn blocking");
        for round in 0..3 {
            assert_eq!(streamed.step(), blocking.step(), "round {round}");
        }
        assert_graphs_equal(streamed.graph(), blocking.graph(), "bootstrap modes");
        assert_eq!(blocking.stats().bootstrap_overlap_datagrams, 0);
        assert!(blocking.stats().bootstrap_wait_ns > 0);
        assert!(streamed.stats().snapshot_chunks > 0);
        streamed.shutdown().unwrap();
        blocking.shutdown().unwrap();
    }

    #[test]
    fn cluster_runs_membership_plans_shipped_at_bootstrap() {
        let n = 2048;
        let g = sharded(n, n as u64, 3, 2);
        let churn = ChurnBursts {
            n,
            nodes_per_burst: 32,
            bursts: 2,
            first_round: 1,
            period: 2,
            rejoin_after: 1,
            bootstrap_contacts: 3,
            seed: 21,
        };
        let mut inproc =
            ShardedEngine::new(g.clone(), Pull, 13).with_membership(MembershipPlan::bursts(&churn));
        let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 13)
            .with_membership(MembershipPlan::bursts(&churn))
            .spawn()
            .expect("spawn");
        for round in 0..6 {
            assert_eq!(inproc.step(), cluster.step(), "round {round}");
        }
        assert_graphs_equal(inproc.graph(), cluster.graph(), "churn over datagrams");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn cluster_drives_the_convergence_seam() {
        let und = generators::star(256);
        let g = ShardedArenaGraph::from_undirected(&und, 2);
        let mut check = ComponentwiseComplete::for_graph(&und);
        let mut cluster = ClusterBuilder::new(g, RuleId::Push, 4)
            .spawn()
            .expect("spawn");
        let out = cluster.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert!(cluster.graph().is_complete());
        assert_eq!(out.rounds, cluster.round());
        cluster.shutdown().unwrap();
    }

    #[test]
    fn tiny_mtu_forces_fragment_traffic_without_changing_results() {
        let n = 1200;
        let g = sharded(n, n as u64, 8, 2);
        let mut inproc = ShardedEngine::new(g.clone(), Push, 2);
        let mut cluster = ClusterBuilder::new(g, RuleId::Push, 2)
            .with_mtu(256)
            .spawn()
            .expect("spawn");
        for round in 0..3 {
            assert_eq!(inproc.step(), cluster.step(), "round {round}");
        }
        assert_graphs_equal(inproc.graph(), cluster.graph(), "tiny mtu");
        assert!(cluster.stats().endpoint.fragments_sent > 0);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn explicit_peer_table_is_honored() {
        let g = sharded(800, 800, 1, 2);
        // Reserve a concrete loopback port the builder must use verbatim.
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 6)
            .with_peers(vec![addr])
            .spawn()
            .expect("spawn");
        assert_eq!(cluster.peer_table()[1], addr);
        cluster.step();
        cluster.shutdown().unwrap();
    }

    #[test]
    fn single_shard_cluster_degenerates_to_local_rounds() {
        let g = sharded(600, 600, 2, 1);
        let mut inproc = ShardedEngine::new(g.clone(), Pull, 3);
        let mut cluster = ClusterBuilder::new(g, RuleId::Pull, 3)
            .spawn()
            .expect("spawn");
        for round in 0..4 {
            assert_eq!(inproc.step(), cluster.step(), "round {round}");
        }
        assert_graphs_equal(inproc.graph(), cluster.graph(), "single shard");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn stats_count_real_traffic_and_rss() {
        let g = sharded(1500, 1500, 2, 2);
        let mut cluster = ClusterBuilder::new(g, RuleId::Push, 3)
            .spawn()
            .expect("spawn");
        cluster.step();
        cluster.step();
        let s = cluster.stats();
        assert!(s.endpoint.data_datagrams > 0);
        assert!(s.endpoint.datagrams_sent > 0 && s.endpoint.datagrams_received > 0);
        assert_eq!(s.endpoint.injected_drops, 0, "lossless mode never injects");
        assert!(s.snapshot_chunks > 0);
        assert!(s.worker_peak_rss_bytes.iter().all(|&b| b > 0));
        cluster.shutdown().unwrap();
    }
}
