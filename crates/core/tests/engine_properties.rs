//! Property tests for the process engine: semantics the proofs rely on,
//! checked on random graphs and seeds.

use gossip_core::rng::stream_rng;
use gossip_core::{
    ComponentwiseComplete, ConvergenceCheck, DiscoveryTrace, Engine, Faulty, HybridPushPull,
    Parallelism, Partial, ProposalRule, Pull, Push,
};
use gossip_graph::{generators, NodeId, UndirectedGraph};
use proptest::prelude::*;
use rand::Rng;

fn random_connected(seed: u64, n: usize, extra: usize) -> UndirectedGraph {
    let mut rng = stream_rng(seed, 0, 0);
    let mut g = generators::random_tree(n, &mut rng);
    for _ in 0..extra {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b {
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seq/par equivalence holds for every rule, not just Push.
    #[test]
    fn all_rules_seq_par_equivalent(seed in any::<u64>(), n in 4usize..32) {
        let g = random_connected(seed, n, n / 2);
        fn check<R: ProposalRule<UndirectedGraph> + Clone>(
            g: &UndirectedGraph,
            rule: R,
            seed: u64,
        ) -> Result<(), TestCaseError> {
            let mut a = Engine::new(g.clone(), rule.clone(), seed)
                .with_parallelism(Parallelism::Sequential);
            let mut b = Engine::new(g.clone(), rule, seed)
                .with_parallelism(Parallelism::Parallel);
            for _ in 0..30 {
                prop_assert_eq!(a.step(), b.step());
            }
            prop_assert!(a.graph().same_edges(b.graph()));
            Ok(())
        }
        check(&g, Push, seed)?;
        check(&g, Pull, seed)?;
        check(&g, HybridPushPull, seed)?;
        check(&g, Faulty::new(Push, 0.3), seed)?;
        check(&g, Partial::new(Pull, 0.5), seed)?;
    }

    /// The wrapped variants only ever *remove* proposals relative to their
    /// inner rule — never invent edges the inner rule wouldn't propose.
    #[test]
    fn faulty_is_a_filter(seed in any::<u64>(), n in 4usize..24) {
        let g = random_connected(seed, n, 6);
        for round in 0..20u64 {
            for u in 0..n {
                let mut r1 = stream_rng(seed, round, u as u64);
                let mut r2 = stream_rng(seed, round, u as u64);
                let base = Push.propose(&g, NodeId::new(u), &mut r1);
                let filtered = Faulty::new(Push, 0.5).propose(&g, NodeId::new(u), &mut r2);
                for e in filtered.as_slice() {
                    prop_assert!(base.as_slice().contains(e));
                }
            }
        }
    }

    /// Hybrid supersets: the push half of a hybrid proposal equals plain
    /// push's proposal under the same stream.
    #[test]
    fn hybrid_contains_push_choice(seed in any::<u64>(), n in 4usize..24) {
        let g = random_connected(seed, n, 6);
        for u in 0..n {
            let mut r1 = stream_rng(seed, 0, u as u64);
            let mut r2 = stream_rng(seed, 0, u as u64);
            let push = Push.propose(&g, NodeId::new(u), &mut r1);
            let hybrid = HybridPushPull.propose(&g, NodeId::new(u), &mut r2);
            for e in push.as_slice() {
                prop_assert!(hybrid.as_slice().contains(e), "hybrid dropped the push edge");
            }
        }
    }

    /// Tracing never changes the run, and accounts for every edge, on
    /// arbitrary inputs.
    #[test]
    fn trace_is_pure_observation(seed in any::<u64>(), n in 4usize..24) {
        let g = random_connected(seed, n, 4);
        let m0 = g.m();
        let mut plain = Engine::new(g.clone(), Push, seed);
        let mut traced = Engine::new(g, Push, seed);
        let mut trace = DiscoveryTrace::default();
        for _ in 0..100 {
            let a = plain.step();
            let b = traced.step_traced(&mut trace);
            prop_assert_eq!(a, b);
        }
        prop_assert!(plain.graph().same_edges(traced.graph()));
        prop_assert_eq!(trace.len() as u64, traced.graph().m() - m0);
    }

    /// Convergence checks are stable: once converged, always converged
    /// (edges only grow).
    #[test]
    fn convergence_is_monotone(seed in any::<u64>(), n in 4usize..20) {
        let g = random_connected(seed, n, 2);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Pull, seed);
        let mut converged_at: Option<u64> = None;
        for _ in 0..20_000 {
            engine.step();
            let now = check.is_converged(engine.graph());
            if let Some(at) = converged_at {
                prop_assert!(now, "convergence regressed after round {at}");
            } else if now {
                converged_at = Some(engine.round());
            }
            if converged_at.is_some() && engine.round() > converged_at.unwrap() + 5 {
                break;
            }
        }
        prop_assert!(converged_at.is_some(), "never converged within budget");
    }
}
