//! Determinism regression suite for the pool-backed parallel engine.
//!
//! The engine's contract is that scheduling never affects results: the
//! sequential path, the pool-parallel path, and any `Parallelism::Auto`
//! mixture must produce bit-identical graphs (same edge sets *and* same
//! adjacency insertion order), and reusing the process-global worker pool
//! across consecutive runs or experiments must leak no state between them.
//!
//! The sharded engine (`gossip-shard`, a dev-dependency here) extends the
//! contract to the shard axis: a `ShardedEngine` over any shard count must
//! reproduce the sequential arena engine's trajectory bit-for-bit. The
//! suite pins `S ∈ {1, 2, 8}`; CI runs the whole file under
//! `RAYON_NUM_THREADS ∈ {1, 2, 8}`, covering the `(S, threads)` grid the
//! design promises.

use gossip_core::rng::stream_rng;
use gossip_core::{
    ChurnBursts, ComponentwiseComplete, Engine, MembershipPlan, Never, Parallelism, Pull, Push,
    RunOutcome,
};
use gossip_graph::{generators, ArenaGraph, ShardedArenaGraph, UndirectedGraph};
use gossip_shard::ShardedEngine;

/// The `Auto` threshold the engine ships with.
fn default_threshold() -> usize {
    match Parallelism::default() {
        Parallelism::Auto { threshold } => threshold,
        _ => panic!("default parallelism is not Auto"),
    }
}

/// Asserts two graphs are bit-identical for all future sampling: same edge
/// set and same per-node adjacency order.
fn assert_bit_identical(a: &UndirectedGraph, b: &UndirectedGraph, ctx: &str) {
    assert!(a.same_edges(b), "{ctx}: edge sets differ");
    for u in a.nodes() {
        assert_eq!(
            a.neighbors(u).as_slice(),
            b.neighbors(u).as_slice(),
            "{ctx}: adjacency order differs at {u:?}"
        );
    }
}

#[test]
fn seq_and_pool_bit_identical_across_auto_threshold() {
    // Graph sizes straddling the Auto threshold: below it Auto runs the
    // sequential path, at/above it the pool path — all three policies must
    // agree exactly either way.
    let threshold = default_threshold();
    for n in [threshold - 1, threshold, threshold + 1] {
        let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(42, 0, 0));
        let mut seq = Engine::new(g.clone(), Push, 99).with_parallelism(Parallelism::Sequential);
        let mut par = Engine::new(g.clone(), Push, 99).with_parallelism(Parallelism::Parallel);
        let mut auto = Engine::new(g, Push, 99); // default Auto
        for round in 0..6 {
            let s = seq.step();
            assert_eq!(s, par.step(), "n={n} round={round}: par stats differ");
            assert_eq!(s, auto.step(), "n={n} round={round}: auto stats differ");
        }
        assert_bit_identical(seq.graph(), par.graph(), &format!("n={n} seq vs par"));
        assert_bit_identical(seq.graph(), auto.graph(), &format!("n={n} seq vs auto"));
    }
}

#[test]
fn pool_reuse_across_consecutive_runs_leaks_no_state() {
    // Two consecutive run_until calls on the same engine (pool reused) must
    // match one fresh engine driven the same total number of rounds.
    let n = default_threshold() + 100;
    let g = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(7, 0, 0));

    let mut resumed = Engine::new(g.clone(), Pull, 5).with_parallelism(Parallelism::Parallel);
    let first: RunOutcome = resumed.run_until(&mut Never, 3);
    assert_eq!(first.rounds, 3);
    let second = resumed.run_until(&mut Never, 4);
    assert_eq!(second.rounds, 7);

    let mut fresh = Engine::new(g, Pull, 5).with_parallelism(Parallelism::Parallel);
    let all = fresh.run_until(&mut Never, 7);
    assert_eq!(all.final_edges, second.final_edges);
    assert_bit_identical(fresh.graph(), resumed.graph(), "resumed vs fresh");
}

#[test]
fn pool_reuse_across_experiments_leaks_no_state() {
    // Two different experiments back to back in one process — the pool
    // carries over — must each match the run the other order would give
    // (i.e. results depend only on (graph, rule, seed), never on what the
    // pool executed before).
    let n = default_threshold() + 17;
    let mk =
        |seed: u64| generators::tree_plus_random_edges(n, n as u64, &mut stream_rng(seed, 0, 0));

    let run = |g: &UndirectedGraph, seed: u64| -> (u64, UndirectedGraph) {
        let mut e = Engine::new(g.clone(), Push, seed).with_parallelism(Parallelism::Parallel);
        let out = e.run_until(&mut Never, 25);
        (out.final_edges, e.into_graph())
    };

    let (ga, gb) = (mk(1), mk(2));
    // Order A then B.
    let (ma1, fa1) = run(&ga, 111);
    let (mb1, fb1) = run(&gb, 222);
    // Order B then A (pool warmed differently).
    let (mb2, fb2) = run(&gb, 222);
    let (ma2, fa2) = run(&ga, 111);

    assert_eq!(ma1, ma2, "experiment A edge growth changed with order");
    assert_eq!(mb1, mb2, "experiment B edge growth changed with order");
    assert_bit_identical(&fa1, &fa2, "experiment A final graph");
    assert_bit_identical(&fb1, &fb2, "experiment B final graph");
}

/// Arena-backend counterpart of [`assert_bit_identical`]: same edge count
/// and same (sorted, canonical) per-node rows.
fn assert_arena_bit_identical(a: &ArenaGraph, b: &ArenaGraph, ctx: &str) {
    assert_eq!(a.m(), b.m(), "{ctx}: edge counts differ");
    for u in a.nodes() {
        assert_eq!(
            a.neighbors(u),
            b.neighbors(u),
            "{ctx}: adjacency differs at {u:?}"
        );
    }
}

#[test]
fn arena_backend_seq_and_pool_bit_identical_across_auto_threshold() {
    // The tentpole backend: the flat pipeline's batch apply must leave the
    // arena graph bit-identical across scheduling policies, straddling the
    // Auto threshold just like the AdjSet suite above.
    fn run<R>(g: &ArenaGraph, rule: R, par: Parallelism) -> ArenaGraph
    where
        R: gossip_core::ProposalRule<ArenaGraph>,
    {
        let mut e = Engine::new(g.clone(), rule, 99).with_parallelism(par);
        for _ in 0..6 {
            e.step();
        }
        e.into_graph()
    }
    let threshold = default_threshold();
    for n in [threshold - 1, threshold, threshold + 1] {
        let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(42, 0, 0));
        let g = ArenaGraph::from_undirected(&und);
        for policy in [Parallelism::Parallel, Parallelism::default()] {
            assert_arena_bit_identical(
                &run(&g, Push, Parallelism::Sequential),
                &run(&g, Push, policy),
                &format!("push n={n} seq vs {policy:?}"),
            );
            assert_arena_bit_identical(
                &run(&g, Pull, Parallelism::Sequential),
                &run(&g, Pull, policy),
                &format!("pull n={n} seq vs {policy:?}"),
            );
        }
    }
}

#[test]
fn arena_backend_step_stats_match_across_policies() {
    // Round-by-round stats (proposed/added) must agree too, not just the
    // final graph: the batch dedup path counts exactly what the
    // one-at-a-time path counts.
    let n = default_threshold() + 33;
    let und = generators::tree_plus_random_edges(n, 3 * n as u64, &mut stream_rng(8, 0, 0));
    let g = ArenaGraph::from_undirected(&und);
    let mut seq = Engine::new(g.clone(), Push, 5).with_parallelism(Parallelism::Sequential);
    let mut par = Engine::new(g, Push, 5).with_parallelism(Parallelism::Parallel);
    for round in 0..8 {
        assert_eq!(seq.step(), par.step(), "round {round} stats differ");
    }
}

#[test]
fn arena_backend_pool_reuse_across_runs_leaks_no_state() {
    let n = default_threshold() + 100;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(7, 0, 0));
    let g = ArenaGraph::from_undirected(&und);

    let mut resumed = Engine::new(g.clone(), Pull, 5).with_parallelism(Parallelism::Parallel);
    resumed.run_until(&mut Never, 3);
    let second = resumed.run_until(&mut Never, 4);
    assert_eq!(second.rounds, 7);

    let mut fresh = Engine::new(g, Pull, 5).with_parallelism(Parallelism::Parallel);
    let all = fresh.run_until(&mut Never, 7);
    assert_eq!(all.final_edges, second.final_edges);
    assert_arena_bit_identical(fresh.graph(), resumed.graph(), "resumed vs fresh");
}

/// Sharded-vs-sequential counterpart of [`assert_arena_bit_identical`].
fn assert_sharded_matches_arena(a: &ArenaGraph, b: &ShardedArenaGraph, ctx: &str) {
    assert_eq!(a.m(), b.m(), "{ctx}: edge counts differ");
    for u in a.nodes() {
        assert_eq!(
            a.neighbors(u),
            b.neighbors(u),
            "{ctx}: adjacency differs at {u:?}"
        );
    }
}

#[test]
fn sharded_engine_bit_identical_to_sequential_across_shard_counts() {
    // The sharded round engine's headline contract: for every shard count
    // (and under whatever RAYON_NUM_THREADS this process runs with), the
    // per-round stats and the final rows equal the sequential arena
    // engine's exactly. Sizes straddle the Auto threshold so both the
    // sequential and the pool path of the sharded engine are exercised.
    fn run_ref<R>(g: &ArenaGraph, rule: R) -> (Vec<gossip_core::RoundStats>, ArenaGraph)
    where
        R: gossip_core::ProposalRule<ArenaGraph>,
    {
        let mut e = Engine::new(g.clone(), rule, 99).with_parallelism(Parallelism::Sequential);
        let stats: Vec<_> = (0..6).map(|_| e.step()).collect();
        (stats, e.into_graph())
    }
    fn run_sharded<R>(
        g: ShardedArenaGraph,
        rule: R,
        policy: Parallelism,
    ) -> (Vec<gossip_core::RoundStats>, ShardedArenaGraph)
    where
        R: gossip_core::ProposalRule<ShardedArenaGraph>,
    {
        let mut e = ShardedEngine::new(g, rule, 99).with_parallelism(policy);
        let stats: Vec<_> = (0..6).map(|_| e.step()).collect();
        (stats, e.into_graph())
    }
    fn check_rule<RA, RS>(arena: &ArenaGraph, rule_a: RA, rule_s: RS, rule_name: &str, n: usize)
    where
        RA: gossip_core::ProposalRule<ArenaGraph> + Copy,
        RS: gossip_core::ProposalRule<ShardedArenaGraph> + Copy,
    {
        let (stats_ref, final_ref) = run_ref(arena, rule_a);
        for shards in [1usize, 2, 8] {
            for policy in [Parallelism::Sequential, Parallelism::Parallel] {
                let g = ShardedArenaGraph::from_arena(arena, shards);
                let (stats, final_g) = run_sharded(g, rule_s, policy);
                assert_eq!(
                    stats, stats_ref,
                    "{rule_name} n={n} S={shards} {policy:?}: round stats diverged"
                );
                assert_sharded_matches_arena(
                    &final_ref,
                    &final_g,
                    &format!("{rule_name} n={n} S={shards} {policy:?}"),
                );
                final_g.validate().unwrap();
            }
        }
    }
    let threshold = default_threshold();
    for n in [threshold - 1, threshold + 177] {
        let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(21, 0, 0));
        let arena = ArenaGraph::from_undirected(&und);
        check_rule(&arena, Push, Push, "push", n);
        check_rule(&arena, Pull, Pull, "pull", n);
    }
}

#[test]
fn sharded_engine_matches_plain_engine_on_sharded_backend() {
    // Cross-check through a third, independent path: the plain Engine
    // driving ShardedArenaGraph via the default one-at-a-time apply. All
    // three implementations must tell the same story.
    let n = default_threshold() + 41;
    let und = generators::tree_plus_random_edges(n, 3 * n as u64, &mut stream_rng(13, 0, 0));
    let g = ShardedArenaGraph::from_undirected(&und, 8);
    let mut oracle = Engine::new(g.clone(), Push, 7).with_parallelism(Parallelism::Sequential);
    let mut sharded = ShardedEngine::new(g, Push, 7);
    for round in 0..6 {
        assert_eq!(oracle.step(), sharded.step(), "round {round}");
    }
    for u in oracle.graph().nodes() {
        assert_eq!(
            oracle.graph().neighbors(u),
            sharded.graph().neighbors(u),
            "row {u:?}"
        );
    }
}

#[test]
fn sharded_engine_pool_reuse_across_runs_leaks_no_state() {
    let n = default_threshold() + 100;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(7, 0, 0));
    let g = ShardedArenaGraph::from_undirected(&und, 8);

    let mut resumed = ShardedEngine::new(g.clone(), Pull, 5);
    resumed.run_until(&mut Never, 3);
    let second = resumed.run_until(&mut Never, 4);
    assert_eq!(second.rounds, 7);

    let mut fresh = ShardedEngine::new(g, Pull, 5);
    let all = fresh.run_until(&mut Never, 7);
    assert_eq!(all.final_edges, second.final_edges);
    for u in fresh.graph().nodes() {
        assert_eq!(fresh.graph().neighbors(u), resumed.graph().neighbors(u));
    }
}

/// A churn plan heavy enough that, combined with push-driven row growth,
/// the run crosses a `SliceArena` epoch-compaction boundary: repeated
/// relocations leave stale copies in the slab while burst leaves release
/// reserved capacity, pushing `data.len()` past the
/// `reserved + reserved/2 + 1024` trigger. The same workload shape is
/// pinned against the compaction internals directly in
/// `gossip-graph`'s arena unit tests; here it stresses determinism
/// *across* the boundary.
fn compaction_straddling_plan(n: usize, seed: u64) -> MembershipPlan {
    MembershipPlan::bursts(&ChurnBursts {
        n,
        nodes_per_burst: 48,
        bursts: 3,
        first_round: 1,
        period: 3,
        rejoin_after: 2,
        bootstrap_contacts: 4,
        seed,
    })
}

#[test]
fn churned_sharded_engine_bit_identical_to_sequential() {
    // The PR's headline churn contract: under the SAME membership plan,
    // every (shard count, scheduling policy) combination of the sharded
    // engine reproduces the sequential arena engine's trajectory
    // bit-for-bit — per-round stats, final rows, and cumulative
    // membership stats all equal — even while leaves tombstone rows and
    // compaction rewrites the slab mid-run.
    let n = 1500;
    let und = generators::tree_plus_random_edges(n, 3 * n as u64, &mut stream_rng(77, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    let plan = compaction_straddling_plan(n, 0xC4A2);

    let mut seq = Engine::new(arena.clone(), Push, 99)
        .with_parallelism(Parallelism::Sequential)
        .with_membership(plan.clone());
    let stats_ref: Vec<_> = (0..10).map(|_| seq.step()).collect();
    let mem_ref = seq.membership_stats();
    assert!(mem_ref.leaves > 0 && mem_ref.joins > 0, "plan never fired");

    for shards in [1usize, 2, 8] {
        for policy in [Parallelism::Sequential, Parallelism::Parallel] {
            let g = ShardedArenaGraph::from_arena(&arena, shards);
            let mut shd = ShardedEngine::new(g, Push, 99)
                .with_parallelism(policy)
                .with_membership(plan.clone());
            let stats: Vec<_> = (0..10).map(|_| shd.step()).collect();
            assert_eq!(
                stats, stats_ref,
                "S={shards} {policy:?}: churned round stats diverged"
            );
            assert_eq!(
                shd.membership_stats(),
                mem_ref,
                "S={shards} {policy:?}: membership stats diverged"
            );
            assert_sharded_matches_arena(
                seq.graph(),
                shd.graph(),
                &format!("churned S={shards} {policy:?}"),
            );
            shd.graph().validate().unwrap();
        }
    }
}

#[test]
fn churned_plain_engine_on_sharded_backend_agrees() {
    // Third independent oracle: the plain Engine driving ShardedArenaGraph
    // through the default one-at-a-time apply, under the same plan. Pins
    // that membership events land identically regardless of which engine
    // hosts the seam.
    let n = 900;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(31, 0, 0));
    let g = ShardedArenaGraph::from_undirected(&und, 4);
    let plan = compaction_straddling_plan(n, 0x51DE);

    let mut oracle = Engine::new(g.clone(), Push, 7)
        .with_parallelism(Parallelism::Sequential)
        .with_membership(plan.clone());
    let mut sharded = ShardedEngine::new(g, Push, 7).with_membership(plan);
    for round in 0..9 {
        assert_eq!(oracle.step(), sharded.step(), "round {round}");
    }
    assert_eq!(oracle.membership_stats(), sharded.membership_stats());
    for u in oracle.graph().nodes() {
        assert_eq!(
            oracle.graph().neighbors(u),
            sharded.graph().neighbors(u),
            "row {u:?}"
        );
    }
    sharded.graph().validate().unwrap();
}

#[test]
fn churned_pull_rule_agrees_across_engines() {
    // Pull consults peer rows (two-sided reads), so a departed node's
    // emptied row must be observed identically by both engines' kernels.
    let n = 700;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(5, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    let plan = compaction_straddling_plan(n, 0xA11CE);

    let mut seq = Engine::new(arena.clone(), Pull, 3)
        .with_parallelism(Parallelism::Sequential)
        .with_membership(plan.clone());
    let stats_ref: Vec<_> = (0..9).map(|_| seq.step()).collect();

    let g = ShardedArenaGraph::from_arena(&arena, 8);
    let mut shd = ShardedEngine::new(g, Pull, 3)
        .with_parallelism(Parallelism::Parallel)
        .with_membership(plan);
    let stats: Vec<_> = (0..9).map(|_| shd.step()).collect();
    assert_eq!(stats, stats_ref, "pull under churn diverged");
    assert_sharded_matches_arena(seq.graph(), shd.graph(), "pull under churn");
}

/// Shard counts the transport tests sweep. CI's `transport-determinism`
/// matrix pins one count per leg via `GOSSIP_TEST_SHARDS` (so S and
/// RAYON_NUM_THREADS form an explicit grid); local runs cover both.
fn transport_shard_grid() -> Vec<usize> {
    match std::env::var("GOSSIP_TEST_SHARDS") {
        Ok(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("GOSSIP_TEST_SHARDS: comma-separated shard counts")
            })
            .collect(),
        Err(_) => vec![2, 8],
    }
}

#[test]
fn transport_engine_bit_identical_to_sequential_across_shard_counts() {
    // The serialized path extension of the headline contract: the
    // cross-process transport (thread-hosted workers here — the identical
    // worker loop over the identical wire format, minus exec) must
    // reproduce the sequential arena engine bit-for-bit for every shard
    // count, under whatever RAYON_NUM_THREADS this process runs with.
    // Mailboxes cross a socket as length-prefixed frames and are
    // reassembled in canonical (source, owner, seq) order; nothing about
    // serialization may leak into the result.
    use gossip_core::RuleId;
    use gossip_shard::transport::TransportBuilder;

    let n = default_threshold() + 177;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(21, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    for rule in [RuleId::Push, RuleId::Pull] {
        let (stats_ref, final_ref) = gossip_core::with_rule!(rule, |r| {
            let mut e = Engine::new(arena.clone(), r, 99).with_parallelism(Parallelism::Sequential);
            let stats: Vec<_> = (0..6).map(|_| e.step()).collect();
            (stats, e.into_graph())
        });
        for shards in transport_shard_grid() {
            for policy in [Parallelism::Sequential, Parallelism::Parallel] {
                let g = ShardedArenaGraph::from_arena(&arena, shards);
                let mut wire = TransportBuilder::new(g, rule, 99)
                    .with_parallelism(policy)
                    .spawn()
                    .expect("spawn transport workers");
                let stats: Vec<_> = (0..6).map(|_| wire.step()).collect();
                assert_eq!(
                    stats, stats_ref,
                    "{rule} S={shards} {policy:?}: stats diverged over the wire"
                );
                assert_sharded_matches_arena(
                    &final_ref,
                    wire.graph(),
                    &format!("{rule} S={shards} {policy:?} over the wire"),
                );
                wire.graph().validate().unwrap();
                wire.shutdown().unwrap();
            }
        }
    }
}

#[test]
fn churned_transport_engine_bit_identical_to_sequential() {
    // Churn over the serialized path: the membership schedule ships once
    // in the bootstrap Config frame and replays locally on every worker,
    // so a compaction-straddling plan must leave the transport engine
    // bit-identical to the sequential engine — rounds, rows, and zero
    // per-round membership wire traffic.
    use gossip_core::RuleId;
    use gossip_shard::transport::TransportBuilder;

    let n = 1500;
    let und = generators::tree_plus_random_edges(n, 3 * n as u64, &mut stream_rng(77, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    let plan = compaction_straddling_plan(n, 0xC4A2);

    let mut seq = Engine::new(arena.clone(), Push, 99)
        .with_parallelism(Parallelism::Sequential)
        .with_membership(plan.clone());
    let stats_ref: Vec<_> = (0..10).map(|_| seq.step()).collect();

    for shards in transport_shard_grid() {
        let g = ShardedArenaGraph::from_arena(&arena, shards);
        let mut wire = TransportBuilder::new(g, RuleId::Push, 99)
            .with_membership(plan.clone())
            .spawn()
            .expect("spawn transport workers");
        let stats: Vec<_> = (0..10).map(|_| wire.step()).collect();
        assert_eq!(stats, stats_ref, "S={shards}: churned wire stats diverged");
        assert_sharded_matches_arena(
            seq.graph(),
            wire.graph(),
            &format!("churned S={shards} over the wire"),
        );
        wire.graph().validate().unwrap();
        wire.shutdown().unwrap();
    }
}

#[test]
fn lossy_transport_replays_a_pinned_trajectory() {
    // Lossy mode's regression pin: a seeded drop/duplicate/reorder run
    // still produces the deterministic trajectory (retransmit makes every
    // round complete), and replaying the same injection seed reproduces
    // the exact same fault pattern — drops, dups, naks, retransmits.
    use gossip_core::RuleId;
    use gossip_shard::transport::{LossyConfig, TransportBuilder};

    let n = 1200;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(3, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    let mut seq = Engine::new(arena.clone(), Push, 17).with_parallelism(Parallelism::Sequential);
    let stats_ref: Vec<_> = (0..6).map(|_| seq.step()).collect();

    let lossy = LossyConfig {
        seed: 0x10_55,
        drop_per_mille: 150,
        dup_per_mille: 100,
        reorder: true,
    };
    let run = |_: u32| {
        let g = ShardedArenaGraph::from_arena(&arena, 4);
        let mut wire = TransportBuilder::new(g, RuleId::Push, 17)
            .with_lossy(lossy)
            .spawn()
            .expect("spawn lossy transport");
        let stats: Vec<_> = (0..6).map(|_| wire.step()).collect();
        let wire_stats = wire.stats().clone();
        let final_g = {
            let g = wire.graph();
            let rows: Vec<Vec<_>> = g.nodes().map(|u| g.neighbors(u).to_vec()).collect();
            rows
        };
        wire.shutdown().unwrap();
        (stats, wire_stats, final_g)
    };
    let (stats_a, inj_a, rows_a) = run(0);
    let (stats_b, inj_b, rows_b) = run(1);

    assert_eq!(stats_a, stats_ref, "lossy run diverged from sequential");
    assert_eq!(stats_b, stats_ref, "lossy replay diverged from sequential");
    assert!(
        inj_a.wire.frames_dropped > 0 && inj_a.wire.naks > 0,
        "injection never fired: {inj_a:?}"
    );
    assert_eq!(
        inj_a.wire, inj_b.wire,
        "same injection seed produced a different fault pattern"
    );
    assert_eq!(rows_a, rows_b, "lossy replay final rows diverged");
    for (u, row) in seq.graph().nodes().zip(&rows_a) {
        assert_eq!(seq.graph().neighbors(u), row.as_slice(), "row {u:?}");
    }
}

#[test]
fn cluster_datagram_transport_is_bit_identical_across_loss_rates() {
    // The datagram cluster's centerpiece pin: a two-"host" loopback grid
    // (shards 0–1 on 127.0.0.1, shards 2–3 on 127.0.0.2, explicit static
    // peer table) must replay the sequential engine bit-for-bit at every
    // seeded loss rate — drop rates of 0%, 5%, and 20% all repair to the
    // same trajectory and the same adjacency rows.
    //
    // Default n = 2^12; GOSSIP_CLUSTER_BIG=1 raises it to 2^17 for the
    // release-mode CI leg.
    use gossip_cluster::{ClusterBuilder, DatagramLoss};
    use gossip_core::RuleId;

    let n: usize = if std::env::var("GOSSIP_CLUSTER_BIG").is_ok() {
        1 << 17
    } else {
        1 << 12
    };
    let rounds = 5u64;
    let und = generators::tree_plus_random_edges(n, 2 * n as u64, &mut stream_rng(12, 0, 0));
    let arena = ArenaGraph::from_undirected(&und);
    let mut seq =
        Engine::new(arena.clone(), Pull, 20260807).with_parallelism(Parallelism::Sequential);
    let stats_ref: Vec<_> = (0..rounds).map(|_| seq.step()).collect();

    // Second loopback host; fall back to single-host on platforms that
    // only bind 127.0.0.1.
    let host_b = if std::net::UdpSocket::bind("127.0.0.2:0").is_ok() {
        "127.0.0.2"
    } else {
        "127.0.0.1"
    };
    // Probe-bind to reserve a concrete port, release it for the builder.
    let reserve = |host: &str| {
        let s = std::net::UdpSocket::bind(format!("{host}:0")).expect("reserve port");
        s.local_addr().unwrap()
    };

    for drop_per_mille in [0u16, 50, 200] {
        let g = ShardedArenaGraph::from_arena(&arena, 4);
        let mut b = ClusterBuilder::new(g, RuleId::Pull, 20260807)
            .with_bind("127.0.0.1:0".parse().unwrap())
            .with_peers(vec![reserve("127.0.0.1"), reserve(host_b), reserve(host_b)]);
        if drop_per_mille > 0 {
            b = b.with_loss(DatagramLoss {
                seed: 0xC1_05 ^ drop_per_mille as u64,
                drop_per_mille,
                dup_per_mille: drop_per_mille / 2,
            });
        }
        let mut cluster = b.spawn().expect("spawn cluster");
        let stats: Vec<_> = (0..rounds).map(|_| cluster.step()).collect();
        assert_eq!(
            stats, stats_ref,
            "drop={drop_per_mille}‰: cluster stats diverged from sequential"
        );
        assert_sharded_matches_arena(
            seq.graph(),
            cluster.graph(),
            &format!("cluster at drop={drop_per_mille}‰"),
        );
        let cs = cluster.stats();
        if drop_per_mille > 0 {
            assert!(
                cs.endpoint.injected_drops > 0,
                "drop={drop_per_mille}‰ never injected: {cs:?}"
            );
        } else {
            assert_eq!(cs.endpoint.injected_drops, 0);
        }
        cluster.graph().validate().unwrap();
        cluster.shutdown().unwrap();
    }
}

#[test]
fn trial_batches_agree_under_pool_parallelism() {
    // Trial-level fan-out (the imbalanced workload the chunk-claiming pool
    // exists for) must return identical per-trial results either way.
    use gossip_core::{convergence_rounds, TrialConfig};
    let g = generators::star(96);
    let mut cfg = TrialConfig {
        trials: 12,
        base_seed: 31,
        max_rounds: 10_000_000,
        parallel: false,
    };
    let seq = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
    cfg.parallel = true;
    let par = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
    assert_eq!(seq, par);
}
