//! Adapter equivalence: the kernelized rules must be **bit-identical** to
//! the pre-kernel hand-written draw paths.
//!
//! The legacy rules are re-implemented here verbatim (same draws, same
//! order, same guards, straight against the graph rows) and compared to
//! the kernel-backed `Push`/`Pull`/`HybridPushPull` on the same per-node
//! RNG streams — across random seeds, sizes spanning `n = 1` to
//! `n = 1024`, and the saturation edges `n = 0` / `n = 1` where rules
//! must propose nothing and consume **zero** randomness.

use gossip_core::rng::stream_rng;
use gossip_core::{HybridPushPull, ProposalRule, ProposalSet, Pull, Push};
use gossip_graph::{generators, NodeId, UndirectedGraph, UniformNeighbors};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// The pre-kernel push: draw `v, w` i.i.d. from the own row, propose
/// `(v, w)` unless they coincide.
fn legacy_push(g: &UndirectedGraph, u: NodeId, rng: &mut SmallRng) -> ProposalSet {
    let row = g.neighbor_row(u);
    if row.is_empty() {
        return ProposalSet::empty();
    }
    let v = row[rng.random_range(0..row.len())];
    let w = row[rng.random_range(0..row.len())];
    if v != w {
        ProposalSet::one(v, w)
    } else {
        ProposalSet::empty()
    }
}

/// The pre-kernel pull: two-hop walk `u -> v -> w`, propose `(u, w)`
/// unless the walk returns home.
fn legacy_pull(g: &UndirectedGraph, u: NodeId, rng: &mut SmallRng) -> ProposalSet {
    let row = g.neighbor_row(u);
    if row.is_empty() {
        return ProposalSet::empty();
    }
    let v = row[rng.random_range(0..row.len())];
    let vrow = g.neighbor_row(v);
    if vrow.is_empty() {
        return ProposalSet::empty();
    }
    let w = vrow[rng.random_range(0..vrow.len())];
    if w != u {
        ProposalSet::one(u, w)
    } else {
        ProposalSet::empty()
    }
}

/// The pre-kernel hybrid: push draws first, then the pull walk, on the
/// same RNG.
fn legacy_hybrid(g: &UndirectedGraph, u: NodeId, rng: &mut SmallRng) -> ProposalSet {
    let row = g.neighbor_row(u);
    if row.is_empty() {
        return ProposalSet::empty();
    }
    let mut out = ProposalSet::empty();
    let v = row[rng.random_range(0..row.len())];
    let w = row[rng.random_range(0..row.len())];
    if v != w {
        out.push((v, w));
    }
    let v2 = row[rng.random_range(0..row.len())];
    let vrow = g.neighbor_row(v2);
    if !vrow.is_empty() {
        let w2 = vrow[rng.random_range(0..vrow.len())];
        if w2 != u {
            out.push((u, w2));
        }
    }
    out
}

fn random_connected(seed: u64, n: usize, extra: usize) -> UndirectedGraph {
    let mut rng = stream_rng(seed, 0, 0);
    let mut g = generators::random_tree(n, &mut rng);
    for _ in 0..extra {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b {
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    g
}

/// Every node, several rounds: the kernelized rule and the legacy path
/// must emit identical proposals from identically-seeded streams.
fn assert_equivalent<R, L>(
    g: &UndirectedGraph,
    rule: R,
    legacy: L,
    seed: u64,
) -> Result<(), TestCaseError>
where
    R: ProposalRule<UndirectedGraph>,
    L: Fn(&UndirectedGraph, NodeId, &mut SmallRng) -> ProposalSet,
{
    for round in 0..4u64 {
        for u in 0..g.n() {
            let u = NodeId::new(u);
            let mut r1 = stream_rng(seed, round, u.0 as u64);
            let mut r2 = r1.clone();
            let kernelized = rule.propose(g, u, &mut r1);
            let reference = legacy(g, u, &mut r2);
            prop_assert_eq!(
                kernelized.as_slice(),
                reference.as_slice(),
                "rule {} diverged at node {} round {round}",
                rule.name(),
                u.0
            );
            // Same *number* of draws too: the streams must stay aligned.
            prop_assert_eq!(r1.random::<u64>(), r2.random::<u64>());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kernel_rules_match_legacy_draw_paths(seed in any::<u64>()) {
        for n in [1usize, 2, 16, 1024] {
            let g = random_connected(seed, n, n / 3);
            assert_equivalent(&g, Push, legacy_push, seed)?;
            assert_equivalent(&g, Pull, legacy_pull, seed)?;
            assert_equivalent(&g, HybridPushPull, legacy_hybrid, seed)?;
        }
    }
}

#[test]
fn isolated_nodes_propose_nothing_and_draw_nothing() {
    // Saturation edges: the empty graph and graphs of isolated nodes.
    for n in [0usize, 1, 3] {
        let g = UndirectedGraph::new(n);
        for u in 0..n {
            let u = NodeId::new(u);
            let mut rng = stream_rng(7, 0, u.0 as u64);
            let untouched = rng.clone();
            assert!(Push.propose(&g, u, &mut rng).as_slice().is_empty());
            assert!(Pull.propose(&g, u, &mut rng).as_slice().is_empty());
            assert!(HybridPushPull
                .propose(&g, u, &mut rng)
                .as_slice()
                .is_empty());
            // An empty row must consume zero randomness — the stream
            // alignment the engines' determinism contract depends on.
            assert_eq!(
                rng.clone().random::<u64>(),
                untouched.clone().random::<u64>()
            );
        }
    }
}

#[test]
fn single_edge_graph_saturates_to_no_op() {
    // n = 2: both rows are {the other node}; push must always collide
    // (v == w) and pull must always walk home — silent forever.
    let g = UndirectedGraph::from_edges(2, [(0, 1)]);
    for seed in 0..32u64 {
        for u in [NodeId(0), NodeId(1)] {
            let mut rng = stream_rng(seed, 0, u.0 as u64);
            assert!(Push.propose(&g, u, &mut rng).as_slice().is_empty());
            let mut rng = stream_rng(seed, 1, u.0 as u64);
            assert!(Pull.propose(&g, u, &mut rng).as_slice().is_empty());
            let mut rng = stream_rng(seed, 2, u.0 as u64);
            assert!(HybridPushPull
                .propose(&g, u, &mut rng)
                .as_slice()
                .is_empty());
        }
    }
}
