//! Engine-level counterpart of `crates/net/tests/churn_regression.rs`:
//! pinned integer trajectories of the membership seam under the shared
//! churn fixture.
//!
//! Both suites derive their runs from `gossip_core::membership::fixture`
//! (same seed pairs, same snapshot cadence), so a change that perturbs
//! the shared counter-based RNG streams — re-keying, extra draws,
//! reordered draws — fails the simulator pins and these engine pins on
//! the same seeds, instead of letting one layer drift silently.
//!
//! Everything pinned is an integer (edge counts, row counts, cumulative
//! membership stats): the trajectory replays bit-for-bit or the contract
//! is broken. The sharded engine is asserted against the same pins, so
//! the fixture also cross-checks the engines against each other.

use gossip_core::membership::fixture::{bursts_for, SEED_PAIRS, SNAP_EVERY};
use gossip_core::rng::stream_rng;
use gossip_core::{Engine, MembershipPlan, Parallelism, Push};
use gossip_graph::{generators, ArenaGraph, ShardedArenaGraph};
use gossip_shard::ShardedEngine;

const N: usize = 128;
const ROUNDS: u64 = 60;

/// Integer state snapshot: `(round, m, nonempty rows, joins, leaves,
/// edges added by joins, edges removed by leaves)`.
#[derive(Debug, PartialEq, Eq)]
struct Snap {
    round: u64,
    m: u64,
    nonempty_rows: usize,
    joins: u64,
    leaves: u64,
    edges_added: u64,
    edges_removed: u64,
}

fn start_graph(pair: (u64, u64)) -> ArenaGraph {
    let und = generators::tree_plus_random_edges(N, N as u64, &mut stream_rng(pair.0, 0, 0));
    ArenaGraph::from_undirected(&und)
}

fn plan(pair: (u64, u64)) -> MembershipPlan {
    MembershipPlan::bursts(&bursts_for(N, pair))
}

/// Drives `rounds` rounds, snapshotting every [`SNAP_EVERY`] rounds.
/// Generic over the two engines through a per-round callback.
fn trajectory(mut step: impl FnMut() -> (u64, usize, gossip_core::MembershipStats)) -> Vec<Snap> {
    let mut out = Vec::new();
    for round in 1..=ROUNDS {
        let (m, nonempty_rows, stats) = step();
        if round % SNAP_EVERY == 0 {
            out.push(Snap {
                round,
                m,
                nonempty_rows,
                joins: stats.joins,
                leaves: stats.leaves,
                edges_added: stats.edges_added,
                edges_removed: stats.edges_removed,
            });
        }
    }
    out
}

fn sequential_trajectory(pair: (u64, u64)) -> Vec<Snap> {
    let mut e = Engine::new(start_graph(pair), Push, pair.0)
        .with_parallelism(Parallelism::Sequential)
        .with_membership(plan(pair));
    trajectory(move || {
        e.step();
        let nonempty = e
            .graph()
            .nodes()
            .filter(|&u| e.graph().degree(u) > 0)
            .count();
        (e.graph().m(), nonempty, e.membership_stats())
    })
}

fn sharded_trajectory(pair: (u64, u64), shards: usize) -> Vec<Snap> {
    let g = ShardedArenaGraph::from_arena(&start_graph(pair), shards);
    let mut e = ShardedEngine::new(g, Push, pair.0).with_membership(plan(pair));
    trajectory(move || {
        e.step();
        let nonempty = e
            .graph()
            .nodes()
            .filter(|&u| e.graph().degree(u) > 0)
            .count();
        (e.graph().m(), nonempty, e.membership_stats())
    })
}

/// Pin helper: `(round, m, nonempty, joins, leaves, added, removed)`.
fn snap(t: (u64, u64, usize, u64, u64, u64, u64)) -> Snap {
    Snap {
        round: t.0,
        m: t.1,
        nonempty_rows: t.2,
        joins: t.3,
        leaves: t.4,
        edges_added: t.5,
        edges_removed: t.6,
    }
}

#[test]
fn pinned_engine_trajectory_pair_0() {
    // Values captured at the introduction of the membership seam (PR 8);
    // they are pure functions of the fixture seeds and the engine/plan
    // code. A diff here means the shared RNG stream contract moved.
    // (Snapshots land after each burst's rejoin window, so all 128 rows
    // are nonempty at every pin — the bursts plan ends fully rejoined.)
    let want: Vec<Snap> = [
        (15, 628, 128, 8, 8, 24, 46),
        (30, 1303, 128, 16, 16, 48, 177),
        (45, 2050, 128, 24, 24, 72, 334),
        (60, 2936, 128, 24, 24, 72, 334),
    ]
    .into_iter()
    .map(snap)
    .collect();
    assert_eq!(sequential_trajectory(SEED_PAIRS[0]), want);
}

#[test]
fn pinned_engine_trajectory_pair_1() {
    let want: Vec<Snap> = [
        (15, 635, 128, 8, 8, 24, 34),
        (30, 1339, 128, 16, 16, 48, 126),
        (45, 2013, 128, 24, 24, 72, 333),
        (60, 2832, 128, 24, 24, 72, 333),
    ]
    .into_iter()
    .map(snap)
    .collect();
    assert_eq!(sequential_trajectory(SEED_PAIRS[1]), want);
}

#[test]
fn sharded_engine_replays_the_same_pins() {
    // The cross-layer guarantee: the sharded engine (any S) walks the
    // exact pinned trajectory of the sequential engine under the same
    // fixture plan.
    for pair in SEED_PAIRS {
        let reference = sequential_trajectory(pair);
        for shards in [2usize, 8] {
            assert_eq!(
                sharded_trajectory(pair, shards),
                reference,
                "pair {pair:?} S={shards} diverged from the fixture trajectory"
            );
        }
    }
}
