//! The protocol kernel: every discovery protocol as an explicit per-node
//! state machine.
//!
//! Before this module, the repository had **three unrelated protocol
//! seams**: [`crate::process::ProposalRule`] for the batch engines,
//! `gossip-baselines`' `DiscoveryAlgorithm` for the message-accounting
//! baselines, and `gossip-net`'s `Protocol` for the lossy message
//! simulator. The same paper protocol (push, say) was implemented three
//! times, and no correctness property could be stated once and checked
//! everywhere.
//!
//! [`ProtocolKernel`] is the one definition. A kernel is a **pure
//! transition function** over a per-node view of the world:
//!
//! ```text
//! on_round(state, view, chooser) -> effects
//! on_message(state, view, chooser, msg) -> effects
//! ```
//!
//! * No hidden RNG: every random decision is an index drawn through the
//!   [`Chooser`] seam (`choose(n)` = uniform in `0..n`). The production
//!   [`RngChooser`] maps this to exactly one `random_range(0..n)` call on
//!   the engine's counter-based per-`(seed, round, node)` stream, so
//!   kernelized protocols replay the **bit-identical** draw sequence of
//!   the legacy implementations. The model checker (`gossip-model`)
//!   substitutes an enumerating chooser and traverses every choice.
//! * No hidden graph access: the kernel sees the world only through
//!   [`NodeView`] — its own contact row, and (in worlds that have it) a
//!   peer's contact row for two-hop walks.
//! * No hidden mutation: the kernel writes its decisions into
//!   [`Effects`] — edges to propose, payload descriptors to send,
//!   contacts learned from a message — and the surrounding runtime (batch
//!   engine, baseline round loop, network simulator) interprets them.
//!
//! The legacy traits survive as thin adapters: `rules.rs` drives the
//! graph kernels through [`GraphView`], the baselines drive the
//! gossip-message kernels through [`LocalView`], and `gossip-net`'s
//! `PushProtocol` maps [`Effects`] onto its outbox. Trajectories are
//! pinned bit-identical by the determinism suite and the
//! adapter-equivalence proptests in `crates/core/tests/`.

use crate::process::ProposalSet;
use gossip_graph::{NodeId, UniformNeighbors};
use rand::rngs::SmallRng;
use rand::Rng;

/// Source of a kernel's random decisions: a uniform index in `0..n`.
///
/// `n` must be nonzero — kernels guard empty domains *before* drawing,
/// which is what keeps the draw count (and therefore the RNG stream
/// position) identical to the pre-kernel implementations.
pub trait Chooser {
    /// A uniform choice in `0..n`.
    fn choose(&mut self, n: usize) -> usize;
}

/// The production chooser: one [`Rng::random_range`] call per choice on
/// the engine's per-`(seed, round, node)` stream.
pub struct RngChooser<'a>(pub &'a mut SmallRng);

impl Chooser for RngChooser<'_> {
    #[inline]
    fn choose(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }
}

/// Chooser for deterministic kernels (flooding): any draw is a bug.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDraws;

impl Chooser for NoDraws {
    fn choose(&mut self, n: usize) -> usize {
        panic!("deterministic kernel attempted a random choice (domain {n})")
    }
}

/// What a node can see when it acts: itself, its own contact row, and —
/// in worlds with remote visibility — a peer's contact row.
pub trait NodeView {
    /// The acting node.
    fn me(&self) -> NodeId;

    /// The node's own contact list, in the backend's sampling order.
    fn contacts(&self) -> &[NodeId];

    /// Contact list of peer `v` — the remote probe the pull-style two-hop
    /// walks use.
    ///
    /// # Panics
    /// Panics in worlds without remote visibility (the message-passing
    /// simulator's per-node view); only the walk kernels call it, and
    /// those are driven by engines whose views have it.
    fn peer_contacts(&self, v: NodeId) -> &[NodeId];
}

/// [`NodeView`] over any [`UniformNeighbors`] graph backend — the batch
/// engines' world, where a node's contacts are its graph neighbors and
/// two-hop probes read the neighbor's row directly.
pub struct GraphView<'a, G: ?Sized> {
    /// The shared round-start graph.
    pub graph: &'a G,
    /// The acting node.
    pub me: NodeId,
}

impl<G: UniformNeighbors + ?Sized> NodeView for GraphView<'_, G> {
    #[inline]
    fn me(&self) -> NodeId {
        self.me
    }
    #[inline]
    fn contacts(&self) -> &[NodeId] {
        self.graph.neighbor_row(self.me)
    }
    #[inline]
    fn peer_contacts(&self, v: NodeId) -> &[NodeId] {
        self.graph.neighbor_row(v)
    }
}

/// [`NodeView`] over a bare contact slice — the message-passing worlds
/// (`gossip-net` node contexts, the baselines' `Knowledge` rows), where a
/// node sees only its own state and remote probes are impossible.
pub struct LocalView<'a> {
    /// The acting node.
    pub me: NodeId,
    /// Its contact row (arrival order for `Knowledge`, insertion order for
    /// `AdjSet`-backed simulator nodes).
    pub contacts: &'a [NodeId],
}

impl NodeView for LocalView<'_> {
    #[inline]
    fn me(&self) -> NodeId {
        self.me
    }
    #[inline]
    fn contacts(&self) -> &[NodeId] {
        self.contacts
    }
    fn peer_contacts(&self, v: NodeId) -> &[NodeId] {
        panic!("LocalView has no remote visibility (asked for contacts of {v:?})")
    }
}

/// Payload descriptor for a gossip message: *what* a node sends, without
/// materializing the bytes. The runtime interprets the descriptor against
/// its own storage (round-start snapshots, arrival-order rows), which
/// keeps the baselines' two-phase synchronous semantics and bit accounting
/// exactly where they were.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Share {
    /// The sender's entire known contact list (Name Dropper, flooding).
    KnownList,
    /// A request that the *target* reply with its entire list; the sender
    /// absorbs the reply (pointer jumping).
    PullRequest,
    /// A window of the sender's arrival-ordered contact list — the
    /// throttled Name Dropper's per-destination cursor chunk.
    Slice {
        /// First index of the window.
        start: u32,
        /// Window length (may be zero: the message is still sent).
        len: u32,
    },
}

/// A message another node's kernel can react to (`gossip-net`'s world).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMsg {
    /// "Meet `peer`" — the push protocol's introduction.
    Introduce {
        /// The contact being introduced.
        peer: NodeId,
    },
}

/// Everything a kernel step decided, for the runtime to interpret.
#[derive(Clone, Debug, Default)]
pub struct Effects {
    /// Edges to propose: "introduce `a` and `b` to each other". In the
    /// batch engines this is the round's [`ProposalSet`]; in `gossip-net`
    /// each connect becomes a pair of [`KernelMsg::Introduce`] messages.
    pub connects: ProposalSet,
    /// Messages to send: `(destination, payload descriptor)`.
    pub shares: Vec<(NodeId, Share)>,
    /// Contacts learned (message reactions only).
    pub learns: Vec<NodeId>,
}

impl Effects {
    /// Clears all effects, retaining buffers.
    #[inline]
    pub fn clear(&mut self) {
        self.connects = ProposalSet::empty();
        self.shares.clear();
        self.learns.clear();
    }

    /// Records an edge proposal.
    #[inline]
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        self.connects.push((a, b));
    }

    /// Records an outgoing message.
    #[inline]
    pub fn share(&mut self, to: NodeId, what: Share) {
        self.shares.push((to, what));
    }

    /// Records a learned contact.
    #[inline]
    pub fn learn(&mut self, v: NodeId) {
        self.learns.push(v);
    }
}

/// Per-node protocol state. The paper's protocols are memoryless; only
/// the throttled Name Dropper carries state (per-destination cursors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// No per-node memory.
    Stateless,
    /// Per-destination send cursors into the node's own arrival-ordered
    /// contact list (throttled Name Dropper).
    Cursors(Vec<u32>),
}

impl NodeState {
    /// The cursor vector; panics if the state is [`NodeState::Stateless`].
    #[inline]
    pub fn cursors_mut(&mut self) -> &mut Vec<u32> {
        match self {
            NodeState::Cursors(c) => c,
            NodeState::Stateless => panic!("kernel expected cursor state"),
        }
    }
}

/// A discovery protocol as a pure per-node state machine.
///
/// Methods are generic (not object-safe) on purpose: the batch engines'
/// hot path monomorphizes the kernel + view + chooser into the same code
/// the hand-written rules compiled to — the CI perf ratchet holds the
/// propose phase at its pre-kernel ns/node/round. Uniform runtime
/// dispatch goes through the [`crate::registry::AnyKernel`] enum instead
/// of `dyn`.
pub trait ProtocolKernel {
    /// The protocol's registry name.
    fn name(&self) -> &'static str;

    /// One synchronous round step for the node behind `view`: read the
    /// round-start world, draw every decision through `choose`, write the
    /// outcome into `out`. Must not observe anything outside `view`.
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    );

    /// Reaction to an incoming message (message-passing worlds). The
    /// default ignores everything — only protocols that gossip through
    /// explicit messages override it.
    fn on_message<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        state: &mut NodeState,
        view: &V,
        choose: &mut C,
        from: NodeId,
        msg: &KernelMsg,
        out: &mut Effects,
    ) {
        let _ = (state, view, choose, from, msg, out);
    }

    /// Declared per-message payload budget: the maximum number of node
    /// ids one message may carry, or `None` if unbounded (Name Dropper's
    /// whole-list sends). With ids of `id_bits(n) = O(log n)` bits, a
    /// `Some(k)` bound certifies the paper's `O(log n)`-bits-per-message
    /// claim; the model checker enforces it on every enumerated message.
    fn max_message_ids(&self) -> Option<u64> {
        Some(1)
    }

    /// The per-node state a fresh node starts with in an `n`-node world —
    /// also the state a re-joining node is reset to under churn. The
    /// default is [`NodeState::Stateless`] (the paper's protocols are
    /// memoryless); stateful kernels override it, and the model checker
    /// uses it to decide whether per-node state must be encoded into the
    /// joint state space.
    fn initial_state(&self, n: usize) -> NodeState {
        let _ = n;
        NodeState::Stateless
    }
}

/// **Push (triangulation)** — Section 3: draw `v, w` i.i.d. from the own
/// contact row (with replacement) and introduce them to each other.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushKernel;

impl ProtocolKernel for PushKernel {
    fn name(&self) -> &'static str {
        "push"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let w = row[choose.choose(row.len())];
        if v != w {
            out.connect(v, w);
        }
    }

    #[inline]
    fn on_message<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        _view: &V,
        _choose: &mut C,
        _from: NodeId,
        msg: &KernelMsg,
        out: &mut Effects,
    ) {
        let KernelMsg::Introduce { peer } = *msg;
        out.learn(peer);
    }
}

/// **Pull (two-hop walk)** — Section 4: step to a uniform contact `v`,
/// then to a uniform contact `w` of `v`, and connect to `w`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PullKernel;

impl ProtocolKernel for PullKernel {
    fn name(&self) -> &'static str {
        "pull"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let peer_row = view.peer_contacts(v);
        if peer_row.is_empty() {
            return;
        }
        let w = peer_row[choose.choose(peer_row.len())];
        if w != view.me() {
            out.connect(view.me(), w);
        }
    }
}

/// **Hybrid push + pull**: both a triangulation step and a two-hop-walk
/// step each round, in that draw order.
#[derive(Clone, Copy, Debug, Default)]
pub struct HybridKernel;

impl ProtocolKernel for HybridKernel {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let w = row[choose.choose(row.len())];
        if v != w {
            out.connect(v, w);
        }
        let v2 = row[choose.choose(row.len())];
        let peer_row = view.peer_contacts(v2);
        if !peer_row.is_empty() {
            let w2 = peer_row[choose.choose(peer_row.len())];
            if w2 != view.me() {
                out.connect(view.me(), w2);
            }
        }
    }
}

/// **Name Dropper** (Harchol-Balter–Leighton–Lewin): pick one uniform
/// contact and send it the entire known list. Whole-list payloads, so the
/// per-message id budget is unbounded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NameDropperKernel;

impl ProtocolKernel for NameDropperKernel {
    fn name(&self) -> &'static str {
        "name-dropper"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        out.share(v, Share::KnownList);
    }

    fn max_message_ids(&self) -> Option<u64> {
        None
    }
}

/// **Pointer jumping**: pick one uniform contact and pull its entire
/// list (request + whole-list reply — the reply is unbounded).
#[derive(Clone, Copy, Debug, Default)]
pub struct PointerJumpKernel;

impl ProtocolKernel for PointerJumpKernel {
    fn name(&self) -> &'static str {
        "pointer-jump"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        out.share(v, Share::PullRequest);
    }

    fn max_message_ids(&self) -> Option<u64> {
        None
    }
}

/// **Flooding**: deterministically send the entire known list to every
/// contact in the view — the baselines drive it with the *fixed initial
/// topology* as the view, per the classical broadcast model.
#[derive(Clone, Copy, Debug, Default)]
pub struct FloodingKernel;

impl ProtocolKernel for FloodingKernel {
    fn name(&self) -> &'static str {
        "flooding"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        _state: &mut NodeState,
        view: &V,
        _choose: &mut C,
        out: &mut Effects,
    ) {
        for &c in view.contacts() {
            out.share(c, Share::KnownList);
        }
    }

    fn max_message_ids(&self) -> Option<u64> {
        None
    }
}

/// **Throttled Name Dropper**: pick one uniform contact, send it the next
/// `budget`-sized window of the own arrival-ordered list, and advance the
/// per-destination cursor. Per-message payload is at most `budget` ids —
/// the bandwidth-bounded variant.
#[derive(Clone, Copy, Debug)]
pub struct ThrottledKernel {
    /// Maximum ids per message.
    pub budget: usize,
}

impl ProtocolKernel for ThrottledKernel {
    fn name(&self) -> &'static str {
        "throttled-nd"
    }

    #[inline]
    fn on_round<V: NodeView + ?Sized, C: Chooser + ?Sized>(
        &self,
        state: &mut NodeState,
        view: &V,
        choose: &mut C,
        out: &mut Effects,
    ) {
        let row = view.contacts();
        if row.is_empty() {
            return;
        }
        let v = row[choose.choose(row.len())];
        let cursors = state.cursors_mut();
        // Clamp at read: under churn the contact list can *shrink* below a
        // previously advanced cursor (membership removal keeps the list
        // order-preserving, so the boundary is still valid — but it may
        // now lie past the end). Without the clamp `end - cur` underflows.
        let cur = (cursors[v.index()] as usize).min(row.len());
        let end = (cur + self.budget).min(row.len());
        cursors[v.index()] = end as u32;
        out.share(
            v,
            Share::Slice {
                start: cur as u32,
                len: (end - cur) as u32,
            },
        );
    }

    fn max_message_ids(&self) -> Option<u64> {
        Some(self.budget as u64)
    }

    fn initial_state(&self, n: usize) -> NodeState {
        NodeState::Cursors(vec![0; n])
    }
}

/// Runs a graph-world kernel for one node and returns its proposals —
/// the adapter `rules.rs` builds [`crate::process::ProposalRule`]s from.
#[inline]
pub fn kernel_propose<G, K>(kernel: &K, g: &G, u: NodeId, rng: &mut SmallRng) -> ProposalSet
where
    G: UniformNeighbors + ?Sized,
    K: ProtocolKernel + ?Sized,
{
    let mut out = Effects::default();
    kernel.on_round(
        &mut NodeState::Stateless,
        &GraphView { graph: g, me: u },
        &mut RngChooser(rng),
        &mut out,
    );
    out.connects
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chooser that replays a scripted sequence of indices.
    struct Scripted(Vec<usize>, usize);
    impl Chooser for Scripted {
        fn choose(&mut self, n: usize) -> usize {
            let i = self.0[self.1];
            self.1 += 1;
            assert!(i < n, "scripted choice {i} out of domain {n}");
            i
        }
    }

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn push_kernel_connects_distinct_picks_only() {
        let contacts = ids(&[3, 5, 9]);
        let view = LocalView {
            me: NodeId(0),
            contacts: &contacts,
        };
        let mut out = Effects::default();
        PushKernel.on_round(
            &mut NodeState::Stateless,
            &view,
            &mut Scripted(vec![0, 2], 0),
            &mut out,
        );
        assert_eq!(out.connects.as_slice(), &[(NodeId(3), NodeId(9))]);

        out.clear();
        PushKernel.on_round(
            &mut NodeState::Stateless,
            &view,
            &mut Scripted(vec![1, 1], 0),
            &mut out,
        );
        assert!(out.connects.is_empty());
    }

    #[test]
    fn push_kernel_empty_row_draws_nothing() {
        let view = LocalView {
            me: NodeId(0),
            contacts: &[],
        };
        let mut out = Effects::default();
        // A chooser with an empty script: any draw would panic.
        PushKernel.on_round(
            &mut NodeState::Stateless,
            &view,
            &mut Scripted(vec![], 0),
            &mut out,
        );
        assert!(out.connects.is_empty());
    }

    #[test]
    fn push_kernel_learns_from_introduce() {
        let view = LocalView {
            me: NodeId(0),
            contacts: &[],
        };
        let mut out = Effects::default();
        PushKernel.on_message(
            &mut NodeState::Stateless,
            &view,
            &mut Scripted(vec![], 0),
            NodeId(7),
            &KernelMsg::Introduce { peer: NodeId(4) },
            &mut out,
        );
        assert_eq!(out.learns, ids(&[4]));
    }

    #[test]
    fn throttled_kernel_windows_and_advances_cursor() {
        let contacts = ids(&[1, 2, 3, 4, 5]);
        let view = LocalView {
            me: NodeId(0),
            contacts: &contacts,
        };
        let k = ThrottledKernel { budget: 2 };
        let mut state = NodeState::Cursors(vec![0; 6]);
        let mut out = Effects::default();
        k.on_round(&mut state, &view, &mut Scripted(vec![1], 0), &mut out);
        assert_eq!(
            out.shares,
            vec![(NodeId(2), Share::Slice { start: 0, len: 2 })]
        );
        out.clear();
        k.on_round(&mut state, &view, &mut Scripted(vec![1], 0), &mut out);
        assert_eq!(
            out.shares,
            vec![(NodeId(2), Share::Slice { start: 2, len: 2 })]
        );
        // Cursor for a different destination is independent.
        out.clear();
        k.on_round(&mut state, &view, &mut Scripted(vec![0], 0), &mut out);
        assert_eq!(
            out.shares,
            vec![(NodeId(1), Share::Slice { start: 0, len: 2 })]
        );
    }

    #[test]
    fn flooding_kernel_shares_with_every_contact_in_order() {
        let contacts = ids(&[4, 2, 7]);
        let view = LocalView {
            me: NodeId(1),
            contacts: &contacts,
        };
        let mut out = Effects::default();
        FloodingKernel.on_round(
            &mut NodeState::Stateless,
            &view,
            &mut Scripted(vec![], 0),
            &mut out,
        );
        let dests: Vec<NodeId> = out.shares.iter().map(|&(d, _)| d).collect();
        assert_eq!(dests, ids(&[4, 2, 7]));
        assert!(out.shares.iter().all(|&(_, s)| s == Share::KnownList));
    }

    #[test]
    fn declared_budgets() {
        assert_eq!(PushKernel.max_message_ids(), Some(1));
        assert_eq!(PullKernel.max_message_ids(), Some(1));
        assert_eq!(HybridKernel.max_message_ids(), Some(1));
        assert_eq!(NameDropperKernel.max_message_ids(), None);
        assert_eq!(PointerJumpKernel.max_message_ids(), None);
        assert_eq!(ThrottledKernel { budget: 4 }.max_message_ids(), Some(4));
        assert_eq!(FloodingKernel.max_message_ids(), None);
    }
}
