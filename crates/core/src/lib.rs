//! # gossip-core
//!
//! The primary contribution of *Discovery through Gossip* (SPAA 2012):
//! the **push (triangulation)** and **pull (two-hop walk)** discovery
//! processes, their directed variant, and a deterministic synchronous-round
//! engine to run them at experiment scale.
//!
//! The processes are stateless and local: each round every node makes an
//! O(1) random choice from its own neighborhood and at most one edge per
//! node is proposed. The paper proves both processes complete any connected
//! undirected `n`-node graph in `O(n log² n)` rounds w.h.p.; this crate is
//! the machinery the repository uses to validate that (and the rest of the
//! theorems) empirically.
//!
//! ## Determinism contract
//!
//! Every random decision is drawn from a counter-based stream keyed by
//! `(seed, round, node)` ([`rng`]). Combined with ordered application of
//! proposals, this makes runs bit-identical across sequential and parallel
//! execution and across trial-batch scheduling.
//!
//! ## Quickstart
//!
//! ```
//! use gossip_core::{ComponentwiseComplete, Engine, Push};
//! use gossip_graph::generators;
//!
//! let g0 = generators::star(16);
//! let mut check = ComponentwiseComplete::for_graph(&g0);
//! let mut engine = Engine::new(g0, Push, 42);
//! let out = engine.run_until(&mut check, 1_000_000);
//! assert!(out.converged);
//! assert!(engine.graph().is_complete());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod async_engine;
pub mod builder;
pub mod convergence;
pub mod diagnostics;
pub mod engine;
pub mod kernel;
pub mod listener;
pub mod membership;
pub mod process;
pub mod recorder;
pub mod registry;
pub mod rng;
pub mod rules;
pub mod seam;
pub mod trace;
pub mod trials;
pub mod variants;

pub use async_engine::{AsyncEngine, AsyncOutcome};
pub use builder::EngineBuilder;
pub use convergence::{
    ClosureReached, ComponentwiseComplete, ConvergenceCheck, MinDegreeAtLeast, Never,
    SubsetComplete,
};
pub use engine::{Engine, Parallelism, RunOutcome};
pub use kernel::{
    kernel_propose, Chooser, Effects, FloodingKernel, GraphView, HybridKernel, KernelMsg,
    LocalView, NameDropperKernel, NoDraws, NodeState, NodeView, PointerJumpKernel, ProtocolKernel,
    PullKernel, PushKernel, RngChooser, Share, ThrottledKernel,
};
pub use listener::{
    Chain, ListenerSet, NullListener, PhaseAccumulator, PhaseEvent, PhaseNanos, RoundControl,
    RoundEvent, RoundListener, RoundPhase, StopWhen,
};
pub use membership::{ChurnBursts, MembershipEvent, MembershipPlan, MembershipStats};
pub use process::{GossipGraph, ProposalRule, ProposalSet, RoundStats, TaggedProposal};
pub use recorder::{MinDegreeMilestones, SeriesRecorder, SeriesRow};
pub use registry::{AnyKernel, RuleId};
pub use rules::{DirectedPull, HybridPushPull, Pull, Push};
pub use seam::{run_engine_listened, run_engine_until, RoundEngine};
pub use trace::{DiscoveryTrace, EdgeEvent};
pub use trials::{convergence_rounds, run_trials, stream_trials, TrialConfig};
pub use variants::{Faulty, OnlySubset, Partial};
