//! Round recorders: time-series capture without slowing the hot loop.
//!
//! Recorders are plain [`RoundListener`]s — the single observation seam
//! ([`crate::listener`]) every engine reports through. Chain one next to a
//! stopping listener to record a run:
//!
//! ```
//! use gossip_core::{
//!     run_engine_listened, Chain, ComponentwiseComplete, Engine, Push, SeriesRecorder, StopWhen,
//! };
//! use gossip_graph::generators;
//!
//! let g = generators::path(12);
//! let mut check = ComponentwiseComplete::for_graph(&g);
//! let mut rec = SeriesRecorder::every(2);
//! let mut engine = Engine::new(g, Push, 7);
//! let out = run_engine_listened(
//!     &mut engine,
//!     &mut Chain(&mut rec, StopWhen(&mut check)),
//!     100_000,
//! );
//! assert!(out.converged && !rec.rows().is_empty());
//! ```

use crate::listener::{RoundControl, RoundEvent, RoundListener};
use crate::process::RoundStats;
use gossip_graph::UndirectedGraph;

/// One sampled row of an undirected run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesRow {
    /// Round index.
    pub round: u64,
    /// Edge count after the round.
    pub m: u64,
    /// Minimum degree after the round.
    pub min_degree: usize,
    /// Maximum degree after the round.
    pub max_degree: usize,
    /// Edges added in this round.
    pub added: u64,
}

/// Samples an undirected run every `stride` rounds (and on round 1).
///
/// Degree scans are O(n); at stride `s` the recorder costs O(n/s) per round
/// amortized. Pick `stride >= n / 64` for long runs.
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    stride: u64,
    rows: Vec<SeriesRow>,
}

impl SeriesRecorder {
    /// Creates a recorder sampling every `stride` rounds (`stride >= 1`).
    pub fn every(stride: u64) -> Self {
        assert!(stride >= 1, "stride must be >= 1");
        SeriesRecorder {
            stride,
            rows: Vec::new(),
        }
    }

    /// The captured rows.
    pub fn rows(&self) -> &[SeriesRow] {
        &self.rows
    }

    /// Consumes the recorder, returning its rows.
    pub fn into_rows(self) -> Vec<SeriesRow> {
        self.rows
    }

    /// Observes round `round` (1-based) with the post-round graph.
    pub fn observe(&mut self, round: u64, g: &UndirectedGraph, stats: &RoundStats) {
        if round == 1 || round.is_multiple_of(self.stride) {
            self.rows.push(SeriesRow {
                round,
                m: g.m(),
                min_degree: g.min_degree(),
                max_degree: g.max_degree(),
                added: stats.added,
            });
        }
    }
}

impl RoundListener<UndirectedGraph> for SeriesRecorder {
    fn on_round(&mut self, ev: &RoundEvent<'_, UndirectedGraph>) -> RoundControl {
        self.observe(ev.round, ev.graph, &ev.stats);
        RoundControl::Continue
    }
}

/// Records the first round at which the minimum degree reached each power of
/// `growth_factor` times the starting minimum degree — the direct empirical
/// analogue of the paper's "δ grows by a constant factor every O(n log n)
/// rounds" progress measure.
#[derive(Clone, Debug)]
pub struct MinDegreeMilestones {
    delta0: usize,
    factor: f64,
    next_target: f64,
    /// Degree hit the `n - 1` ceiling: no further milestones can occur.
    capped: bool,
    /// `(round, min_degree)` at each milestone crossing.
    milestones: Vec<(u64, usize)>,
}

impl MinDegreeMilestones {
    /// Tracks milestones `delta0 * factor^i` for the run.
    pub fn new(delta0: usize, factor: f64) -> Self {
        assert!(factor > 1.0, "growth factor must exceed 1");
        assert!(delta0 >= 1, "delta0 must be >= 1");
        MinDegreeMilestones {
            delta0,
            factor,
            next_target: delta0 as f64 * factor,
            capped: false,
            milestones: Vec::new(),
        }
    }

    /// `(round, min_degree)` pairs at which successive factor targets were hit.
    pub fn milestones(&self) -> &[(u64, usize)] {
        &self.milestones
    }

    /// The starting minimum degree.
    pub fn delta0(&self) -> usize {
        self.delta0
    }

    /// Observes round `round` (1-based) with the post-round graph.
    pub fn observe(&mut self, round: u64, g: &UndirectedGraph, _stats: &RoundStats) {
        if self.capped {
            return; // ceiling milestone already recorded; nothing can change
        }
        let delta = g.min_degree();
        // Saturating: the 0-node graph would underflow (cap 0 == already at
        // the ceiling, so the first observation caps the recorder).
        let cap = g.n().saturating_sub(1);
        while delta as f64 >= self.next_target || delta >= cap {
            self.milestones.push((round, delta));
            self.next_target *= self.factor;
            if delta >= cap {
                // Degree can't grow further. Latch, so fixed-horizon runs
                // that keep observing past completion don't re-emit the
                // ceiling milestone every round.
                self.capped = true;
                return;
            }
        }
    }
}

impl RoundListener<UndirectedGraph> for MinDegreeMilestones {
    fn on_round(&mut self, ev: &RoundEvent<'_, UndirectedGraph>) -> RoundControl {
        self.observe(ev.round, ev.graph, &ev.stats);
        RoundControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ComponentwiseComplete;
    use crate::engine::Engine;
    use crate::listener::{Chain, StopWhen};
    use crate::rules::Push;
    use crate::seam::run_engine_listened;
    use gossip_graph::generators;

    #[test]
    fn series_recorder_strides() {
        let g = generators::path(16);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut rec = SeriesRecorder::every(5);
        let mut engine = Engine::new(g, Push, 42);
        let out = run_engine_listened(
            &mut engine,
            &mut Chain(&mut rec, StopWhen(&mut check)),
            100_000,
        );
        assert!(out.converged);
        let rows = rec.rows();
        assert!(!rows.is_empty());
        assert_eq!(rows[0].round, 1);
        // Strided rows (after the first) land on multiples of 5.
        for row in &rows[1..] {
            assert_eq!(row.round % 5, 0);
        }
        // m is nondecreasing across rows.
        for w in rows.windows(2) {
            assert!(w[1].m >= w[0].m);
        }
    }

    #[test]
    fn milestones_capture_growth() {
        let g = generators::cycle(32); // delta0 = 2
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut ms = MinDegreeMilestones::new(2, 1.5);
        let mut engine = Engine::new(g, Push, 9);
        let out = run_engine_listened(
            &mut engine,
            &mut Chain(&mut ms, StopWhen(&mut check)),
            1_000_000,
        );
        assert!(out.converged);
        let milestones = ms.milestones();
        assert!(
            milestones.len() >= 3,
            "expected several milestones, got {milestones:?}"
        );
        // Rounds are nondecreasing, degrees increase toward n-1.
        for w in milestones.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(milestones.last().unwrap().1, 31);
    }

    #[test]
    fn milestones_survive_degenerate_graphs() {
        // Regression: the degree cap computed `n - 1`, underflowing on the
        // 0-node graph.
        use crate::process::RoundStats;
        use gossip_graph::UndirectedGraph;
        for n in [0usize, 1] {
            let g = UndirectedGraph::new(n);
            let mut ms = MinDegreeMilestones::new(1, 2.0);
            // Degree starts at the (zero) ceiling: exactly one milestone no
            // matter how many rounds keep observing.
            for round in 1..=50 {
                ms.observe(round, &g, &RoundStats::default());
            }
            assert_eq!(ms.milestones(), &[(1, 0)], "n={n}");
        }
    }

    #[test]
    fn cap_milestone_emitted_once_on_fixed_horizon_runs() {
        // A run observed past completion (Never-style horizon) must not
        // re-emit the ceiling milestone every round.
        use crate::process::RoundStats;
        let g = generators::complete(8); // min_degree 7 == cap
        let mut ms = MinDegreeMilestones::new(7, 2.0);
        for round in 1..=20 {
            ms.observe(round, &g, &RoundStats::default());
        }
        assert_eq!(ms.milestones(), &[(1, 7)]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn recorder_rejects_zero_stride() {
        let _ = SeriesRecorder::every(0);
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn milestones_reject_bad_factor() {
        let _ = MinDegreeMilestones::new(2, 1.0);
    }
}
