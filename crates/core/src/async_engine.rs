//! Asynchronous (continuous-time) execution of the discovery processes.
//!
//! The paper analyzes synchronous rounds: all nodes act simultaneously
//! against `G_t`. The standard asynchronous gossip model instead activates
//! each node at the points of an independent rate-1 Poisson process; an
//! activation samples and applies one proposal **atomically** against the
//! *current* graph. One unit of continuous time then corresponds to one
//! expected activation per node — the natural exchange rate to a synchronous
//! round.
//!
//! Two modeling consequences worth measuring (experiment E14):
//!
//! * no same-round collisions: two nodes can never propose duplicates
//!   "simultaneously", so fewer proposals are wasted;
//! * no synchrony barrier: a node can immediately exploit an edge created a
//!   moment ago, where the synchronous engine makes it wait a full round.
//!
//! Implementation: a binary-heap event queue of activation times with
//! exponential(1) inter-activation gaps per node. Everything is driven by a
//! single RNG stream, so runs are deterministic in the seed (the process is
//! inherently sequential — there is no parallel phase to keep consistent).

use crate::convergence::ConvergenceCheck;
use crate::process::{GossipGraph, ProposalRule, RoundStats};
use crate::rng::stream_rng;
use gossip_graph::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-ordered f64 wrapper for the event queue (activation times are
/// finite by construction; NaN cannot occur).
#[derive(Clone, Copy, PartialEq, Debug)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("activation time is NaN")
    }
}

/// Outcome of an asynchronous run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsyncOutcome {
    /// Continuous time at convergence (expected activations per node).
    pub time: f64,
    /// Total activations executed.
    pub activations: u64,
    /// Whether the target was reached within the budget.
    pub converged: bool,
    /// Final edge/arc count.
    pub final_edges: u64,
}

/// Continuous-time engine: Poisson-clock activations of a [`ProposalRule`].
///
/// ```
/// use gossip_core::{AsyncEngine, ComponentwiseComplete, Push};
/// use gossip_graph::generators;
/// let g = generators::star(12);
/// let mut check = ComponentwiseComplete::for_graph(&g);
/// let mut engine = AsyncEngine::new(g, Push, 7);
/// let out = engine.run_until(&mut check, f64::INFINITY);
/// assert!(out.converged);
/// assert!(out.time > 0.0);
/// ```
pub struct AsyncEngine<G, R> {
    graph: G,
    rule: R,
    rng: SmallRng,
    queue: BinaryHeap<Reverse<(Time, u32)>>,
    now: f64,
    activations: u64,
}

impl<G: GossipGraph, R: ProposalRule<G>> AsyncEngine<G, R> {
    /// Creates the engine; every node gets an initial exponential activation
    /// time.
    pub fn new(graph: G, rule: R, seed: u64) -> Self {
        let n = graph.node_count();
        let mut rng = stream_rng(seed, u64::MAX - 100, 0);
        let mut queue = BinaryHeap::with_capacity(n);
        for u in 0..n {
            let t = exponential(&mut rng);
            queue.push(Reverse((Time(t), u as u32)));
        }
        AsyncEngine {
            graph,
            rule,
            rng,
            queue,
            now: 0.0,
            activations: 0,
        }
    }

    /// Current continuous time.
    pub fn time(&self) -> f64 {
        self.now
    }

    /// Total activations so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// The current graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Executes the next activation; returns `(node, stats)`.
    pub fn step(&mut self) -> (NodeId, RoundStats) {
        let Reverse((Time(t), u)) = self.queue.pop().expect("empty activation queue");
        debug_assert!(t >= self.now);
        self.now = t;
        self.activations += 1;
        let node = NodeId(u);
        let proposal = self.rule.propose(&self.graph, node, &mut self.rng);
        let mut stats = RoundStats::default();
        for &(a, b) in proposal.as_slice() {
            stats.proposed += 1;
            stats.added += self.graph.apply_edge(a, b) as u64;
        }
        let next = t + exponential(&mut self.rng);
        self.queue.push(Reverse((Time(next), u)));
        (node, stats)
    }

    /// Runs until `check` fires or continuous time exceeds `max_time`.
    pub fn run_until<C: ConvergenceCheck<G>>(
        &mut self,
        check: &mut C,
        max_time: f64,
    ) -> AsyncOutcome {
        if check.is_converged(&self.graph) {
            return AsyncOutcome {
                time: self.now,
                activations: self.activations,
                converged: true,
                final_edges: self.graph.edge_count(),
            };
        }
        while self.now <= max_time {
            let (_, stats) = self.step();
            // Only re-evaluate when the graph changed: checks may be O(n).
            if stats.added > 0 && check.is_converged(&self.graph) {
                return AsyncOutcome {
                    time: self.now,
                    activations: self.activations,
                    converged: true,
                    final_edges: self.graph.edge_count(),
                };
            }
        }
        AsyncOutcome {
            time: self.now,
            activations: self.activations,
            converged: false,
            final_edges: self.graph.edge_count(),
        }
    }
}

impl<G: GossipGraph, R: ProposalRule<G>> crate::seam::RoundEngine for AsyncEngine<G, R> {
    type Graph = G;
    #[inline]
    fn graph(&self) -> &G {
        &self.graph
    }
    /// The async engine's scheduling quantum is one activation.
    #[inline]
    fn quanta(&self) -> u64 {
        self.activations
    }
    #[inline]
    fn step_quantum(&mut self) -> RoundStats {
        self.step().1
    }
}

/// Standard exponential(1) sample by inversion; guards against ln(0).
fn exponential(rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).max(f64::MIN_POSITIVE).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ComponentwiseComplete;
    use crate::rules::{Pull, Push};
    use gossip_graph::generators;

    #[test]
    fn async_push_completes() {
        let g = generators::star(16);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = AsyncEngine::new(g, Push, 7);
        let out = engine.run_until(&mut check, 1e9);
        assert!(out.converged);
        assert!(engine.graph().is_complete());
        assert!(out.time > 0.0);
        assert!(out.activations > 0);
    }

    #[test]
    fn async_pull_completes() {
        let g = generators::path(14);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = AsyncEngine::new(g, Pull, 3);
        let out = engine.run_until(&mut check, 1e9);
        assert!(out.converged);
    }

    #[test]
    fn time_is_monotone_and_activations_average_one_per_unit() {
        let g = generators::complete(32); // complete: pure clock dynamics
        let mut engine = AsyncEngine::new(g, Push, 5);
        let mut last = 0.0;
        for _ in 0..32 * 100 {
            engine.step();
            assert!(engine.time() >= last);
            last = engine.time();
        }
        // 3200 activations over 32 rate-1 clocks ≈ 100 time units ± noise.
        let t = engine.time();
        assert!((70.0..140.0).contains(&t), "elapsed time {t}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::cycle(12);
        let run = |seed| {
            let mut check = ComponentwiseComplete::for_graph(&g);
            let mut e = AsyncEngine::new(g.clone(), Push, seed);
            let out = e.run_until(&mut check, 1e9);
            (out.activations, out.time.to_bits(), out.final_edges)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn async_converges_in_comparable_time_to_sync_rounds() {
        // The async time at convergence should be the same order as the
        // synchronous round count (one time unit ≈ one round of work).
        let g = generators::star(24);
        let sync = {
            let mut check = ComponentwiseComplete::for_graph(&g);
            let mut e = crate::engine::Engine::new(g.clone(), Push, 9);
            e.run_until(&mut check, 1_000_000).rounds as f64
        };
        let async_time = {
            let mut check = ComponentwiseComplete::for_graph(&g);
            let mut e = AsyncEngine::new(g.clone(), Push, 9);
            e.run_until(&mut check, 1e9).time
        };
        let ratio = async_time / sync;
        assert!(
            (0.2..5.0).contains(&ratio),
            "async {async_time:.1} vs sync {sync:.1}: ratio {ratio:.2}"
        );
    }

    #[test]
    fn directed_async_reaches_closure() {
        use crate::convergence::ClosureReached;
        use crate::rules::DirectedPull;
        let g = generators::directed_cycle(8);
        let mut check = ClosureReached::for_graph(&g);
        let mut e = AsyncEngine::new(g, DirectedPull, 4);
        let out = e.run_until(&mut check, 1e9);
        assert!(out.converged);
        assert_eq!(out.final_edges, 56);
    }

    #[test]
    fn exponential_sampler_is_positive_with_unit_mean() {
        let mut rng = stream_rng(1, 2, 3);
        let mut sum = 0.0;
        let k = 20_000;
        for _ in 0..k {
            let x = exponential(&mut rng);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / k as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
