//! Edge provenance: *who introduced whom, and when*.
//!
//! In the social-network reading of the paper (§1), every new edge has a
//! broker — the node whose triangulation or two-hop step created it. This
//! module records that attribution so experiments can ask structural
//! questions the paper raises (who are the brokers? how do introductions
//! concentrate?) and so any run can be replayed or audited edge by edge.

use crate::convergence::ConvergenceCheck;
use crate::engine::Engine;
use crate::process::{GossipGraph, ProposalRule};
use crate::seam::RoundEngine;
use gossip_graph::NodeId;
use std::fmt::Write as _;

/// One edge birth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Round in which the edge appeared (1-based, the post-step round).
    pub round: u64,
    /// The node whose proposal created the edge.
    pub introducer: NodeId,
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
}

/// A full introduction log for one run.
///
/// ```
/// use gossip_core::{ComponentwiseComplete, DiscoveryTrace, Engine, Push};
/// use gossip_graph::generators;
/// let g = generators::star(6);
/// let mut check = ComponentwiseComplete::for_graph(&g);
/// let mut engine = Engine::new(g, Push, 1);
/// let mut trace = DiscoveryTrace::default();
/// engine.run_traced(&mut check, 1_000_000, &mut trace);
/// assert_eq!(trace.len(), 10); // C(5,2) leaf pairs discovered
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiscoveryTrace {
    events: Vec<EdgeEvent>,
}

impl DiscoveryTrace {
    /// All events in application order.
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// Number of recorded edge births.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event that created edge `(a, b)`, if recorded.
    pub fn who_introduced(&self, a: NodeId, b: NodeId) -> Option<EdgeEvent> {
        self.events
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .copied()
    }

    /// Number of introductions brokered by each node (indexed by node id).
    pub fn introductions_per_node(&self, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n];
        for e in &self.events {
            counts[e.introducer.index()] += 1;
        }
        counts
    }

    /// CSV rendering (`round,introducer,a,b`), one line per event.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,introducer,a,b\n");
        for e in &self.events {
            let _ = writeln!(out, "{},{},{},{}", e.round, e.introducer, e.a, e.b);
        }
        out
    }
}

impl<G: GossipGraph, R: ProposalRule<G>> Engine<G, R> {
    /// Like [`Engine::step`], additionally appending one [`EdgeEvent`] per
    /// *new* edge to `trace`. Identical random choices and graph evolution
    /// as `step` — tracing is observation only.
    pub fn step_traced(&mut self, trace: &mut DiscoveryTrace) -> crate::process::RoundStats {
        self.step_attributed(|round, introducer, a, b| {
            trace.events.push(EdgeEvent {
                round,
                introducer,
                a,
                b,
            });
        })
    }

    /// Runs to convergence while tracing every edge birth. The loop is the
    /// shared [`crate::seam::run_engine_listened`] — the traced engine is
    /// just a [`RoundEngine`] whose quantum appends edge events, and the
    /// check rides the listener seam like everywhere else.
    pub fn run_traced<C: ConvergenceCheck<G>>(
        &mut self,
        check: &mut C,
        max_rounds: u64,
        trace: &mut DiscoveryTrace,
    ) -> crate::engine::RunOutcome {
        let mut traced = Traced {
            engine: self,
            trace,
        };
        crate::seam::run_engine_until(&mut traced, check, max_rounds)
    }
}

/// [`RoundEngine`] adapter: one quantum = one traced round.
struct Traced<'a, G, R> {
    engine: &'a mut Engine<G, R>,
    trace: &'a mut DiscoveryTrace,
}

impl<G: GossipGraph, R: ProposalRule<G>> RoundEngine for Traced<'_, G, R> {
    type Graph = G;
    fn graph(&self) -> &G {
        self.engine.graph()
    }
    fn quanta(&self) -> u64 {
        self.engine.round()
    }
    fn step_quantum(&mut self) -> crate::process::RoundStats {
        self.engine.step_traced(self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ComponentwiseComplete;
    use crate::rules::{Pull, Push};
    use gossip_graph::generators;

    #[test]
    fn trace_accounts_for_every_new_edge() {
        let g0 = generators::star(12);
        let m0 = g0.m();
        let mut check = ComponentwiseComplete::for_graph(&g0);
        let mut engine = Engine::new(g0, Push, 5);
        let mut trace = DiscoveryTrace::default();
        let out = engine.run_traced(&mut check, 1_000_000, &mut trace);
        assert!(out.converged);
        assert_eq!(trace.len() as u64, engine.graph().m() - m0);
        // Every traced edge exists; rounds are nondecreasing.
        let mut last_round = 0;
        for e in trace.events() {
            assert!(engine.graph().has_edge(e.a, e.b));
            assert!(e.round >= last_round);
            last_round = e.round;
        }
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let g0 = generators::cycle(16);
        let mut e1 = Engine::new(g0.clone(), Pull, 99);
        let mut e2 = Engine::new(g0, Pull, 99);
        let mut trace = DiscoveryTrace::default();
        for _ in 0..200 {
            let s1 = e1.step();
            let s2 = e2.step_traced(&mut trace);
            assert_eq!(s1, s2);
        }
        assert!(e1.graph().same_edges(e2.graph()));
    }

    #[test]
    fn push_introducer_is_a_mutual_neighbor_at_birth() {
        // For push, the introducer must have been adjacent to both endpoints
        // when the edge was born. We verify by replaying on a fresh engine.
        let g0 = generators::random_tree(20, &mut crate::rng::stream_rng(3, 0, 0));
        let mut check = ComponentwiseComplete::for_graph(&g0);
        let mut engine = Engine::new(g0.clone(), Push, 12);
        let mut trace = DiscoveryTrace::default();
        engine.run_traced(&mut check, 1_000_000, &mut trace);

        let mut replay = Engine::new(g0, Push, 12);
        let mut idx = 0;
        while idx < trace.len() {
            let pre = replay.graph().clone();
            replay.step();
            while idx < trace.len() && trace.events()[idx].round == replay.round() {
                let e = trace.events()[idx];
                assert!(
                    pre.has_edge(e.introducer, e.a) && pre.has_edge(e.introducer, e.b),
                    "introducer {:?} not adjacent to both {:?} and {:?} pre-round",
                    e.introducer,
                    e.a,
                    e.b
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn star_center_brokers_everything_early() {
        // On a star, the first introduction is necessarily brokered by the
        // center (leaves have one neighbor).
        let g0 = generators::star(8);
        let mut engine = Engine::new(g0, Push, 3);
        let mut trace = DiscoveryTrace::default();
        while trace.is_empty() {
            engine.step_traced(&mut trace);
        }
        assert_eq!(trace.events()[0].introducer, NodeId(0));
    }

    #[test]
    fn pull_introducer_is_an_endpoint() {
        // The two-hop walk connects the walker itself: introducer == a or b.
        let g0 = generators::path(10);
        let mut check = ComponentwiseComplete::for_graph(&g0);
        let mut engine = Engine::new(g0, Pull, 7);
        let mut trace = DiscoveryTrace::default();
        engine.run_traced(&mut check, 1_000_000, &mut trace);
        for e in trace.events() {
            assert!(e.introducer == e.a || e.introducer == e.b);
        }
    }

    #[test]
    fn csv_and_queries() {
        let g0 = generators::star(6);
        let mut check = ComponentwiseComplete::for_graph(&g0);
        let mut engine = Engine::new(g0, Push, 2);
        let mut trace = DiscoveryTrace::default();
        engine.run_traced(&mut check, 1_000_000, &mut trace);
        let csv = trace.to_csv();
        assert!(csv.starts_with("round,introducer,a,b\n"));
        assert_eq!(csv.lines().count(), trace.len() + 1);
        let e = trace.events()[0];
        assert_eq!(trace.who_introduced(e.b, e.a), Some(e));
        let per_node = trace.introductions_per_node(6);
        assert_eq!(per_node.iter().sum::<u64>(), trace.len() as u64);
    }
}
