//! The synchronous-round execution engine.
//!
//! One round is two phases, connected by a **flat proposal pipeline**:
//!
//! 1. **Propose** — every node evaluates the rule against the *immutable*
//!    round-start graph `G_t`, drawing from its own counter-based RNG
//!    stream. Nodes are grouped into fixed-size chunks
//!    (`PROPOSAL_CHUNK` = 1024); each chunk appends its proposals to its own
//!    flat reusable `Vec<TaggedProposal>` buffer. The phase is
//!    embarrassingly parallel and runs chunks on the rayon shim's
//!    persistent worker pool when the graph is large enough to amortize
//!    job dispatch (see [`Parallelism::default`] for the cost model).
//!    Chunking is independent of the thread count, and the buffers
//!    concatenate in chunk order, so the proposal stream is always exactly
//!    the node-order stream regardless of scheduling.
//! 2. **Apply** — the buffers are handed to
//!    [`GossipGraph::apply_proposals`] as one batch. Insertion-ordered
//!    backends replay them one at a time in node order (fixing
//!    adjacency-list insertion order, which makes sequential and parallel
//!    execution **bit-identical** for all future sampling); the
//!    arena-backed graph merges the whole round in a single sort + dedup
//!    pass against its sorted rows, which are canonical and therefore
//!    bit-identical under any schedule by construction.
//!
//! Compared to the previous design (an `n`-slot `Vec<ProposalSet>` indexed
//! by node), the flat pipeline stores only proposals that exist (most
//! rules propose at most one edge, and isolated or degenerate draws none),
//! keeps per-worker writes dense instead of striding a 24-byte slot array,
//! and gives batch-capable graphs the whole round at once.

use crate::convergence::ConvergenceCheck;
use crate::membership::{MembershipPlan, MembershipStats};
use crate::process::{GossipGraph, ProposalRule, RoundStats, TaggedProposal};
use crate::rng::stream_rng;
use rayon::prelude::*;

/// Nodes per propose-phase chunk. Fixed (never derived from the thread
/// count) so the chunk decomposition — and with it every buffer boundary —
/// is identical under any parallelism; the pool's dynamic chunk-claiming
/// balances load across these units. 1024 nodes ≈ tens of µs of propose
/// work per chunk: coarse enough to amortize dispatch, fine enough to
/// rebalance a skewed workload.
///
/// Public because the sharded engine (`gossip-shard`) reuses the exact
/// same chunk decomposition (via [`propose_round`]) and aligns its shard
/// boundaries to it — `gossip_graph::SHARD_ALIGN` must stay equal to this.
pub const PROPOSAL_CHUNK: usize = 1024;

/// The propose phase, shared by every round-based engine: each node
/// evaluates `rule` against the immutable round-start `graph`, drawing from
/// its `(seed, round, node)` counter-based RNG stream; chunk `c`'s
/// proposals land in `bufs[c]` (cleared first), so concatenating the
/// buffers in index order always yields the node-order proposal stream,
/// under any scheduling. `bufs` must hold `node_count.div_ceil(PROPOSAL_CHUNK)`
/// buffers.
pub fn propose_round<G, R>(
    graph: &G,
    rule: &R,
    seed: u64,
    round: u64,
    bufs: &mut [Vec<TaggedProposal>],
    parallel: bool,
) where
    G: GossipGraph,
    R: ProposalRule<G>,
{
    let chunks = bufs.len();
    propose_chunk_range(graph, rule, seed, round, bufs, 0..chunks, parallel);
}

/// [`propose_round`] restricted to the chunks in `range` (the other
/// buffers are left untouched). This is the per-worker propose phase of
/// the cross-process transport: a shard worker evaluates only its own
/// chunk span, and because every chunk's RNG streams are keyed by
/// `(seed, round, node)` alone, the restricted phase produces exactly the
/// buffers the full phase would — no cross-chunk state exists to miss.
pub fn propose_chunk_range<G, R>(
    graph: &G,
    rule: &R,
    seed: u64,
    round: u64,
    bufs: &mut [Vec<TaggedProposal>],
    range: std::ops::Range<usize>,
    parallel: bool,
) where
    G: GossipGraph,
    R: ProposalRule<G>,
{
    let n = graph.node_count();
    debug_assert_eq!(bufs.len(), n.div_ceil(PROPOSAL_CHUNK));
    debug_assert!(range.end <= bufs.len());
    let lo = range.start;
    let fill_chunk = |c: usize, buf: &mut Vec<TaggedProposal>| {
        buf.clear();
        let lo = c * PROPOSAL_CHUNK;
        let hi = (lo + PROPOSAL_CHUNK).min(n);
        for u in lo..hi {
            let mut rng = stream_rng(seed, round, u as u64);
            let node = gossip_graph::NodeId::new(u);
            let set = rule.propose(graph, node, &mut rng);
            for &(a, b) in set.as_slice() {
                buf.push((node, a, b));
            }
        }
    };
    let bufs = &mut bufs[range];
    if parallel {
        bufs.par_iter_mut()
            .enumerate()
            .for_each(|(c, buf)| fill_chunk(lo + c, buf));
    } else {
        for (c, buf) in bufs.iter_mut().enumerate() {
            fill_chunk(lo + c, buf);
        }
    }
}

/// When to parallelize the propose phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Always sequential.
    Sequential,
    /// Rayon-parallel propose phase when `n >= threshold`.
    Auto {
        /// Minimum node count at which rayon is engaged.
        threshold: usize,
    },
    /// Always parallel.
    Parallel,
}

impl Default for Parallelism {
    fn default() -> Self {
        // Cost model, re-measured against the flat proposal pipeline
        // (chunked buffers; `benches/round_throughput.rs`, seq rows at
        // 8 rounds/iter): a full sequential round costs ~63–65 ns/node at
        // n = 1024 and ~90–113 ns/node at n = 4096 on the 4n-edge sweep
        // workload — slightly above the old slot-array pipeline's ~50 ns
        // estimate because the round cost is dominated by the two RNG
        // draws plus adjacency loads that grow with density, not by the
        // buffer write. The rayon shim's persistent pool still prices a
        // parallel round at one job push plus condvar wakeups
        // (single-digit µs, zero thread spawns), so break-even stays in
        // the low thousands of nodes — if anything lower than before,
        // which keeps 2048 conservative: at 2048 nodes the sequential
        // propose phase (~150 µs) comfortably dominates pool dispatch.
        // One chunk (PROPOSAL_CHUNK = 1024 nodes) below the threshold
        // would parallelize nothing anyway, so the threshold also keeps
        // Auto from paying dispatch for a single-chunk round.
        Parallelism::Auto { threshold: 2_048 }
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds executed (== the convergence round when `converged`).
    pub rounds: u64,
    /// Whether the convergence check fired within the budget.
    pub converged: bool,
    /// Edge/arc count at the end.
    pub final_edges: u64,
}

/// Drives a [`ProposalRule`] over a [`GossipGraph`] in synchronous rounds.
#[derive(Clone, Debug)]
pub struct Engine<G, R> {
    graph: G,
    rule: R,
    seed: u64,
    round: u64,
    parallelism: Parallelism,
    /// Flat per-chunk proposal buffers, reused across rounds (steady-state
    /// rounds allocate nothing). Buffer `c` holds the proposals of nodes
    /// `c * PROPOSAL_CHUNK ..`, so concatenation in index order is the
    /// node-order proposal stream.
    chunk_bufs: Vec<Vec<TaggedProposal>>,
    /// Optional join/leave schedule, applied at the top of every step
    /// (before the propose phase) with the pre-increment round counter —
    /// the [`crate::membership`] lifecycle seam.
    membership: Option<MembershipPlan>,
}

impl<G: GossipGraph, R: ProposalRule<G>> Engine<G, R> {
    /// Creates an engine over `graph` with the given rule and experiment seed.
    pub fn new(graph: G, rule: R, seed: u64) -> Self {
        let chunks = graph.node_count().div_ceil(PROPOSAL_CHUNK);
        Engine {
            graph,
            rule,
            seed,
            round: 0,
            parallelism: Parallelism::default(),
            chunk_bufs: vec![Vec::new(); chunks],
            membership: None,
        }
    }

    /// Sets the parallelism policy (builder style).
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Installs a membership plan (builder style): its join/leave events
    /// are applied to the graph at the top of each step, before the
    /// propose phase, keyed by the pre-increment round counter. See
    /// [`crate::membership`] for the numbering and departure contract.
    pub fn with_membership(mut self, plan: MembershipPlan) -> Self {
        self.membership = Some(plan);
        self
    }

    /// Cumulative stats of membership events applied so far (zero if no
    /// plan is installed).
    pub fn membership_stats(&self) -> MembershipStats {
        self.membership
            .as_ref()
            .map(MembershipPlan::stats)
            .unwrap_or_default()
    }

    /// The current graph `G_t`.
    #[inline]
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Consumes the engine, returning the final graph.
    pub fn into_graph(self) -> G {
        self.graph
    }

    /// Rounds executed so far (`t`).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The rule's name.
    pub fn rule_name(&self) -> &'static str {
        self.rule.name()
    }

    fn use_parallel(&self) -> bool {
        match self.parallelism {
            Parallelism::Sequential => false,
            Parallelism::Parallel => true,
            Parallelism::Auto { threshold } => self.graph.node_count() >= threshold,
        }
    }

    /// Executes one synchronous round; returns what happened.
    pub fn step(&mut self) -> RoundStats {
        self.step_attributed(|_, _, _, _| {})
    }

    /// One round, invoking `on_edge(round, introducer, a, b)` for every edge
    /// that is actually new. The no-op instantiation compiles down to
    /// [`Engine::step`]; the provenance API in [`crate::trace`] builds on it.
    pub(crate) fn step_attributed<F>(&mut self, mut on_edge: F) -> RoundStats
    where
        F: FnMut(u64, gossip_graph::NodeId, gossip_graph::NodeId, gossip_graph::NodeId),
    {
        // Phase 0 (membership): apply due join/leave events to the graph
        // before anything observes it this round. Both synchronous engines
        // key this on the same pre-increment counter, so runs under the
        // same plan stay bit-identical across engine variants.
        if let Some(plan) = self.membership.as_mut() {
            plan.apply_due(self.round, &mut self.graph);
        }

        // Phase 1: propose against the immutable G_t, each chunk filling
        // its own flat buffer (the shared phase in [`propose_round`]). The
        // per-node work is identical either way; only the scheduling of
        // whole chunks differs.
        let parallel = self.use_parallel();
        propose_round(
            &self.graph,
            &self.rule,
            self.seed,
            self.round,
            &mut self.chunk_bufs,
            parallel,
        );

        // Phase 2: hand the whole round to the graph as one batch.
        self.round += 1;
        let round_now = self.round;
        self.graph
            .apply_proposals(&self.chunk_bufs, &mut |u, a, b| on_edge(round_now, u, a, b))
    }

    /// Runs until `check` fires or `max_rounds` is reached. (The loop
    /// itself lives in [`crate::seam`], shared with the async and sharded
    /// engines; recorders ride the same loop as
    /// [`crate::listener::RoundListener`]s via
    /// [`crate::seam::run_engine_listened`].)
    pub fn run_until<C: ConvergenceCheck<G>>(
        &mut self,
        check: &mut C,
        max_rounds: u64,
    ) -> RunOutcome {
        crate::seam::run_engine_until(self, check, max_rounds)
    }
}

impl<G: GossipGraph, R: ProposalRule<G>> crate::seam::RoundEngine for Engine<G, R> {
    type Graph = G;
    #[inline]
    fn graph(&self) -> &G {
        &self.graph
    }
    #[inline]
    fn quanta(&self) -> u64 {
        self.round
    }
    #[inline]
    fn step_quantum(&mut self) -> RoundStats {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::{ComponentwiseComplete, Never};
    use crate::rules::{Pull, Push};
    use gossip_graph::{generators, UndirectedGraph};

    #[test]
    fn push_completes_a_path() {
        let g = generators::path(12);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Push, 0xBEEF);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert!(engine.graph().is_complete());
        assert_eq!(out.final_edges, 66);
        assert_eq!(out.rounds, engine.round());
    }

    #[test]
    fn pull_completes_a_star() {
        let g = generators::star(10);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Pull, 7);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert!(engine.graph().is_complete());
    }

    #[test]
    fn already_complete_converges_in_zero_rounds() {
        let g = generators::complete(6);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Push, 1);
        let out = engine.run_until(&mut check, 10);
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn horizon_is_respected() {
        let g = generators::path(64);
        let mut engine = Engine::new(g, Push, 3);
        let out = engine.run_until(&mut Never, 5);
        assert!(!out.converged);
        assert_eq!(out.rounds, 5);
    }

    #[test]
    fn edges_only_grow_monotonically() {
        let g = generators::cycle(20);
        let mut engine = Engine::new(g, Push, 5);
        let mut last = engine.graph().m();
        for _ in 0..200 {
            let stats = engine.step();
            let m = engine.graph().m();
            assert_eq!(m, last + stats.added);
            assert!(m >= last);
            last = m;
        }
        engine.graph().validate().unwrap();
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        for seed in [1u64, 99, 12345] {
            let g = generators::tree_plus_random_edges(
                200,
                400,
                &mut crate::rng::stream_rng(seed, 0, 0),
            );
            let mut seq =
                Engine::new(g.clone(), Push, seed).with_parallelism(Parallelism::Sequential);
            let mut par = Engine::new(g, Push, seed).with_parallelism(Parallelism::Parallel);
            for _ in 0..50 {
                let s1 = seq.step();
                let s2 = par.step();
                assert_eq!(s1, s2);
            }
            // Not just counts — identical edge sets AND identical adjacency
            // list order (guaranteed by ordered application).
            let a: &UndirectedGraph = seq.graph();
            let b: &UndirectedGraph = par.graph();
            assert!(a.same_edges(b));
            for u in a.nodes() {
                assert_eq!(a.neighbors(u).as_slice(), b.neighbors(u).as_slice());
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let g = generators::random_tree(40, &mut crate::rng::stream_rng(8, 0, 0));
        let mut e1 = Engine::new(g.clone(), Pull, 555);
        let mut e2 = Engine::new(g, Pull, 555);
        for _ in 0..100 {
            assert_eq!(e1.step(), e2.step());
        }
        assert!(e1.graph().same_edges(e2.graph()));
    }

    #[test]
    fn different_seeds_diverge() {
        let g = generators::cycle(30);
        let mut e1 = Engine::new(g.clone(), Push, 1);
        let mut e2 = Engine::new(g, Push, 2);
        let mut diverged = false;
        for _ in 0..20 {
            if e1.step() != e2.step() {
                diverged = true;
                break;
            }
        }
        assert!(diverged || !e1.graph().same_edges(e2.graph()));
    }

    #[test]
    fn directed_engine_reaches_closure() {
        use crate::convergence::ClosureReached;
        use crate::rules::DirectedPull;
        let g = generators::directed_cycle(8);
        let mut check = ClosureReached::for_graph(&g);
        let mut engine = Engine::new(g, DirectedPull, 11);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert_eq!(out.final_edges, 8 * 7);
    }
}
