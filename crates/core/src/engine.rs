//! The synchronous-round execution engine.
//!
//! One round is two phases:
//!
//! 1. **Propose** — every node evaluates the rule against the *immutable*
//!    round-start graph `G_t`, drawing from its own counter-based RNG stream.
//!    This phase is embarrassingly parallel and runs on the rayon shim's
//!    persistent worker pool when the graph is large enough to amortize job
//!    dispatch (a queue push and wakeups — see [`Parallelism::default`] for
//!    the cost model).
//! 2. **Apply** — proposals are applied in node order. Order never changes
//!    the resulting edge *set* (set union), but fixing it also fixes
//!    adjacency-list insertion order, which makes sequential and parallel
//!    execution **bit-identical** for all future sampling.

use crate::convergence::ConvergenceCheck;
use crate::process::{GossipGraph, ProposalRule, ProposalSet, RoundStats};
use crate::recorder::RoundObserver;
use crate::rng::stream_rng;
use rayon::prelude::*;

/// When to parallelize the propose phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Always sequential.
    Sequential,
    /// Rayon-parallel propose phase when `n >= threshold`.
    Auto {
        /// Minimum node count at which rayon is engaged.
        threshold: usize,
    },
    /// Always parallel.
    Parallel,
}

impl Default for Parallelism {
    fn default() -> Self {
        // Cost model: per-node propose work is tens of nanoseconds, so a
        // round below the threshold costs `n * ~50ns` sequentially. The
        // rayon shim's persistent pool prices a parallel round at one job
        // push plus condvar wakeups (single-digit µs, zero thread spawns)
        // instead of the old spawn-per-call fan-out (tens of µs *per
        // worker*), so the break-even point dropped from ~16k nodes to the
        // low thousands: at 2048 nodes the sequential propose phase
        // (~100µs) comfortably dominates pool dispatch.
        Parallelism::Auto { threshold: 2_048 }
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Rounds executed (== the convergence round when `converged`).
    pub rounds: u64,
    /// Whether the convergence check fired within the budget.
    pub converged: bool,
    /// Edge/arc count at the end.
    pub final_edges: u64,
}

/// Drives a [`ProposalRule`] over a [`GossipGraph`] in synchronous rounds.
#[derive(Clone, Debug)]
pub struct Engine<G, R> {
    graph: G,
    rule: R,
    seed: u64,
    round: u64,
    parallelism: Parallelism,
    proposals: Vec<ProposalSet>,
}

impl<G: GossipGraph, R: ProposalRule<G>> Engine<G, R> {
    /// Creates an engine over `graph` with the given rule and experiment seed.
    pub fn new(graph: G, rule: R, seed: u64) -> Self {
        let n = graph.node_count();
        Engine {
            graph,
            rule,
            seed,
            round: 0,
            parallelism: Parallelism::default(),
            proposals: vec![ProposalSet::empty(); n],
        }
    }

    /// Sets the parallelism policy (builder style).
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// The current graph `G_t`.
    #[inline]
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Consumes the engine, returning the final graph.
    pub fn into_graph(self) -> G {
        self.graph
    }

    /// Rounds executed so far (`t`).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The rule's name.
    pub fn rule_name(&self) -> &'static str {
        self.rule.name()
    }

    fn use_parallel(&self) -> bool {
        match self.parallelism {
            Parallelism::Sequential => false,
            Parallelism::Parallel => true,
            Parallelism::Auto { threshold } => self.graph.node_count() >= threshold,
        }
    }

    /// Executes one synchronous round; returns what happened.
    pub fn step(&mut self) -> RoundStats {
        self.step_attributed(|_, _, _, _| {})
    }

    /// One round, invoking `on_edge(round, introducer, a, b)` for every edge
    /// that is actually new. The no-op instantiation compiles down to
    /// [`Engine::step`]; the provenance API in [`crate::trace`] builds on it.
    pub(crate) fn step_attributed<F>(&mut self, mut on_edge: F) -> RoundStats
    where
        F: FnMut(u64, gossip_graph::NodeId, gossip_graph::NodeId, gossip_graph::NodeId),
    {
        let n = self.graph.node_count();
        let (seed, round) = (self.seed, self.round);
        debug_assert_eq!(self.proposals.len(), n);

        // Phase 1: propose against the immutable G_t.
        if self.use_parallel() {
            let graph = &self.graph;
            let rule = &self.rule;
            self.proposals
                .par_iter_mut()
                .enumerate()
                .for_each(|(u, slot)| {
                    let mut rng = stream_rng(seed, round, u as u64);
                    *slot = rule.propose(graph, gossip_graph::NodeId::new(u), &mut rng);
                });
        } else {
            for u in 0..n {
                let mut rng = stream_rng(seed, round, u as u64);
                self.proposals[u] =
                    self.rule
                        .propose(&self.graph, gossip_graph::NodeId::new(u), &mut rng);
            }
        }

        // Phase 2: apply in node order.
        let mut stats = RoundStats::default();
        self.round += 1;
        for (u, slot) in self.proposals.iter().enumerate() {
            for &(a, b) in slot.as_slice() {
                stats.proposed += 1;
                if self.graph.apply_edge(a, b) {
                    stats.added += 1;
                    on_edge(self.round, gossip_graph::NodeId::new(u), a, b);
                }
            }
        }
        stats
    }

    /// Runs until `check` fires or `max_rounds` is reached.
    pub fn run_until<C: ConvergenceCheck<G>>(
        &mut self,
        check: &mut C,
        max_rounds: u64,
    ) -> RunOutcome {
        self.run_observed(check, max_rounds, &mut crate::recorder::NullObserver)
    }

    /// Runs like [`Engine::run_until`], feeding every round to `observer`.
    pub fn run_observed<C, O>(
        &mut self,
        check: &mut C,
        max_rounds: u64,
        observer: &mut O,
    ) -> RunOutcome
    where
        C: ConvergenceCheck<G>,
        O: RoundObserver<G>,
    {
        // The start graph may already satisfy the target.
        if check.is_converged(&self.graph) {
            return RunOutcome {
                rounds: self.round,
                converged: true,
                final_edges: self.graph.edge_count(),
            };
        }
        let start = self.round;
        while self.round - start < max_rounds {
            let stats = self.step();
            observer.observe(self.round, &self.graph, &stats);
            if check.is_converged(&self.graph) {
                return RunOutcome {
                    rounds: self.round,
                    converged: true,
                    final_edges: self.graph.edge_count(),
                };
            }
        }
        RunOutcome {
            rounds: self.round,
            converged: false,
            final_edges: self.graph.edge_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::{ComponentwiseComplete, Never};
    use crate::rules::{Pull, Push};
    use gossip_graph::{generators, UndirectedGraph};

    #[test]
    fn push_completes_a_path() {
        let g = generators::path(12);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Push, 0xBEEF);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert!(engine.graph().is_complete());
        assert_eq!(out.final_edges, 66);
        assert_eq!(out.rounds, engine.round());
    }

    #[test]
    fn pull_completes_a_star() {
        let g = generators::star(10);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Pull, 7);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert!(engine.graph().is_complete());
    }

    #[test]
    fn already_complete_converges_in_zero_rounds() {
        let g = generators::complete(6);
        let mut check = ComponentwiseComplete::for_graph(&g);
        let mut engine = Engine::new(g, Push, 1);
        let out = engine.run_until(&mut check, 10);
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn horizon_is_respected() {
        let g = generators::path(64);
        let mut engine = Engine::new(g, Push, 3);
        let out = engine.run_until(&mut Never, 5);
        assert!(!out.converged);
        assert_eq!(out.rounds, 5);
    }

    #[test]
    fn edges_only_grow_monotonically() {
        let g = generators::cycle(20);
        let mut engine = Engine::new(g, Push, 5);
        let mut last = engine.graph().m();
        for _ in 0..200 {
            let stats = engine.step();
            let m = engine.graph().m();
            assert_eq!(m, last + stats.added);
            assert!(m >= last);
            last = m;
        }
        engine.graph().validate().unwrap();
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        for seed in [1u64, 99, 12345] {
            let g = generators::tree_plus_random_edges(
                200,
                400,
                &mut crate::rng::stream_rng(seed, 0, 0),
            );
            let mut seq =
                Engine::new(g.clone(), Push, seed).with_parallelism(Parallelism::Sequential);
            let mut par = Engine::new(g, Push, seed).with_parallelism(Parallelism::Parallel);
            for _ in 0..50 {
                let s1 = seq.step();
                let s2 = par.step();
                assert_eq!(s1, s2);
            }
            // Not just counts — identical edge sets AND identical adjacency
            // list order (guaranteed by ordered application).
            let a: &UndirectedGraph = seq.graph();
            let b: &UndirectedGraph = par.graph();
            assert!(a.same_edges(b));
            for u in a.nodes() {
                assert_eq!(a.neighbors(u).as_slice(), b.neighbors(u).as_slice());
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let g = generators::random_tree(40, &mut crate::rng::stream_rng(8, 0, 0));
        let mut e1 = Engine::new(g.clone(), Pull, 555);
        let mut e2 = Engine::new(g, Pull, 555);
        for _ in 0..100 {
            assert_eq!(e1.step(), e2.step());
        }
        assert!(e1.graph().same_edges(e2.graph()));
    }

    #[test]
    fn different_seeds_diverge() {
        let g = generators::cycle(30);
        let mut e1 = Engine::new(g.clone(), Push, 1);
        let mut e2 = Engine::new(g, Push, 2);
        let mut diverged = false;
        for _ in 0..20 {
            if e1.step() != e2.step() {
                diverged = true;
                break;
            }
        }
        assert!(diverged || !e1.graph().same_edges(e2.graph()));
    }

    #[test]
    fn directed_engine_reaches_closure() {
        use crate::convergence::ClosureReached;
        use crate::rules::DirectedPull;
        let g = generators::directed_cycle(8);
        let mut check = ClosureReached::for_graph(&g);
        let mut engine = Engine::new(g, DirectedPull, 11);
        let out = engine.run_until(&mut check, 1_000_000);
        assert!(out.converged);
        assert_eq!(out.final_edges, 8 * 7);
    }
}
