//! Deterministic, parallel-safe randomness.
//!
//! Every random decision in a simulation is drawn from a [`SmallRng`] keyed
//! by `(experiment seed, round, node)` through a SplitMix64-style mixer.
//! This is the *counter-based RNG stream* design (cf. Philox/Random123): the
//! stream for a node's round is a pure function of its coordinates, so
//!
//! * sequential and rayon-parallel execution are **bit-identical**, and
//! * any (round, node) decision can be replayed in isolation,
//!
//! at the cost of one 3-multiply mix per node per round — noise next to the
//! cache misses of neighbor sampling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Finalizer from SplitMix64 (Steele, Lea, Flood 2014): full-avalanche
/// 64-bit mix.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the stream key for `(seed, round, node)`.
///
/// Each coordinate passes through its own mix before combining so that
/// adjacent rounds/nodes land in unrelated streams (a plain XOR of small
/// integers would correlate low bits).
#[inline]
pub fn stream_key(seed: u64, round: u64, node: u64) -> u64 {
    splitmix64(
        seed ^ splitmix64(round.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ splitmix64(node.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
    )
}

/// The per-(round, node) RNG. `SmallRng` (xoshiro-family) seeded from the
/// stream key; cheap to construct, statistically solid for simulation.
#[inline]
pub fn stream_rng(seed: u64, round: u64, node: u64) -> SmallRng {
    SmallRng::seed_from_u64(stream_key(seed, round, node))
}

/// Derives the seed for trial `t` of a Monte Carlo batch.
#[inline]
pub fn trial_seed(base_seed: u64, trial: usize) -> u64 {
    splitmix64(base_seed ^ (trial as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_known_values_are_stable() {
        // Pinned outputs: determinism across builds is a contract (trace
        // replay and seq/par equivalence depend on it).
        assert_eq!(splitmix64(0), 16294208416658607535);
        assert_eq!(splitmix64(1), 10451216379200822465);
        assert_eq!(splitmix64(0xDEADBEEF), 5395234354446855067);
    }

    #[test]
    fn stream_keys_distinct_across_coordinates() {
        let mut seen = HashSet::new();
        for seed in 0..4u64 {
            for round in 0..16u64 {
                for node in 0..16u64 {
                    assert!(seen.insert(stream_key(seed, round, node)));
                }
            }
        }
    }

    #[test]
    fn stream_rng_reproducible() {
        let mut a = stream_rng(42, 7, 3);
        let mut b = stream_rng(42, 7, 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = stream_rng(42, 7, 4);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn trial_seeds_distinct() {
        let mut seen = HashSet::new();
        for t in 0..1000 {
            assert!(seen.insert(trial_seed(99, t)));
        }
    }

    #[test]
    fn low_bit_balance() {
        // The lowest bit of stream keys over consecutive nodes should be
        // roughly balanced — a weak but cheap avalanche check.
        let ones: u32 = (0..1000).map(|i| (stream_key(1, 0, i) & 1) as u32).sum();
        assert!((400..=600).contains(&ones), "low-bit bias: {ones}/1000");
    }
}
