//! Proof-structure diagnostics: the paper's strongly/weakly "tied"
//! classification (Section 3) made measurable.
//!
//! A node `v` is **strongly tied** to a set `S` at time `t` when
//! `d_t(v, S) >= delta_0 / 2`, and weakly tied otherwise (Definition before
//! Lemma 3, with `delta_0` the minimum degree at round 0). The upper-bound
//! proof walks through cases on how many of `u`'s neighbors are strongly
//! tied to `N²(u)`; these helpers let experiments watch exactly those
//! populations evolve.

use gossip_graph::traversal::rings_up_to;
use gossip_graph::{BitSet, NodeId, UndirectedGraph};

/// Tie structure around a focal node `u` at one point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TieStats {
    /// `|N¹(u)|` — the degree of `u`.
    pub n1_size: usize,
    /// `|N²(u)|` — nodes at distance exactly 2.
    pub n2_size: usize,
    /// Neighbors of `u` strongly tied to `N²(u)` (>= delta0/2 edges into it).
    pub strongly_tied: usize,
    /// Neighbors of `u` weakly tied to `N²(u)`.
    pub weakly_tied: usize,
}

/// Number of edges from `v` into the set encoded by `bits` — the paper's
/// `d_t(v, S)`.
pub fn degree_into(g: &UndirectedGraph, v: NodeId, bits: &BitSet) -> usize {
    g.neighbors(v).membership().intersection_count(bits)
}

/// Classifies the neighbors of `u` as strongly/weakly tied to `N²(u)` with
/// threshold `delta0 / 2` (edges counted against the *current* graph, the
/// same convention as the proofs).
pub fn tie_stats(g: &UndirectedGraph, u: NodeId, delta0: usize) -> TieStats {
    let rings = rings_up_to(g, u, 2);
    let mut n2_bits = BitSet::new(g.n());
    for &v in &rings[2] {
        n2_bits.insert(v.index());
    }
    // Strong tie: d(v, N2) >= delta0 / 2, in the exact integer sense used by
    // the paper (2 * d >= delta0 avoids rounding ambiguity).
    let mut strong = 0;
    let mut weak = 0;
    for &w in &rings[1] {
        if 2 * degree_into(g, w, &n2_bits) >= delta0 {
            strong += 1;
        } else {
            weak += 1;
        }
    }
    TieStats {
        n1_size: rings[1].len(),
        n2_size: rings[2].len(),
        strongly_tied: strong,
        weakly_tied: weak,
    }
}

/// Fraction of nodes whose two-hop neighborhood is "not too large"
/// (`|N²(u)| < delta0 / 2`) — the case split of Lemma 10 for the pull
/// process.
pub fn small_two_hop_fraction(g: &UndirectedGraph, delta0: usize) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let mut count = 0usize;
    for u in g.nodes() {
        let rings = rings_up_to(g, u, 2);
        if 2 * rings[2].len() < delta0 {
            count += 1;
        }
    }
    count as f64 / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_graph::generators;

    #[test]
    fn tie_stats_on_star_center() {
        // Star center: N1 = leaves, N2 = empty. With delta0 = 1, a strong tie
        // needs >= 0.5 edges into the empty set — impossible.
        let g = generators::star(6);
        let s = tie_stats(&g, NodeId(0), 1);
        assert_eq!(s.n1_size, 5);
        assert_eq!(s.n2_size, 0);
        assert_eq!(s.strongly_tied, 0);
        assert_eq!(s.weakly_tied, 5);
    }

    #[test]
    fn tie_stats_on_star_leaf() {
        // A leaf: N1 = {center}, N2 = other 4 leaves. Center has 4 edges into
        // N2; with delta0 = 1 that is a strong tie.
        let g = generators::star(6);
        let s = tie_stats(&g, NodeId(1), 1);
        assert_eq!(s.n1_size, 1);
        assert_eq!(s.n2_size, 4);
        assert_eq!(s.strongly_tied, 1);
        assert_eq!(s.weakly_tied, 0);
    }

    #[test]
    fn tie_threshold_uses_delta0() {
        // Path 0-1-2-3: from node 0, N1={1}, N2={2}; node 1 has exactly 1
        // edge into N2. delta0 = 1 -> strong (1 >= 0.5); delta0 = 3 -> weak.
        let g = generators::path(4);
        assert_eq!(tie_stats(&g, NodeId(0), 1).strongly_tied, 1);
        assert_eq!(tie_stats(&g, NodeId(0), 3).strongly_tied, 0);
    }

    #[test]
    fn degree_into_counts() {
        let g = generators::complete(5);
        let mut bits = BitSet::new(5);
        bits.insert(1);
        bits.insert(2);
        assert_eq!(degree_into(&g, NodeId(0), &bits), 2);
        assert_eq!(degree_into(&g, NodeId(1), &bits), 1); // own id not adjacent to itself
    }

    #[test]
    fn small_two_hop_fraction_extremes() {
        // Complete graph: every N2 empty -> all "small".
        let k = generators::complete(6);
        assert_eq!(small_two_hop_fraction(&k, 4), 1.0);
        // Star with delta0 = 1: leaves have |N2| = 4 >= 0.5 -> only the
        // center counts.
        let s = generators::star(6);
        assert!((small_two_hop_fraction(&s, 1) - 1.0 / 6.0).abs() < 1e-12);
    }
}
