//! Core abstractions: what a gossip round *is*.
//!
//! The paper's processes share one synchronous-round skeleton: every node
//! inspects the round-start graph `G_t`, proposes edges from local random
//! choices, and all proposals are applied together to form `G_{t+1}`. A
//! [`ProposalRule`] captures the per-node choice; [`GossipGraph`] abstracts
//! the two graph types so one engine serves the undirected and directed
//! processes.

use gossip_graph::{ArenaGraph, DirectedGraph, NodeId, ShardedArenaGraph, UndirectedGraph};
use rand::rngs::SmallRng;

/// One proposal flowing through the engine's flat pipeline:
/// `(proposer, a, b)` — node `proposer` wants edge `(a, b)` to exist.
pub type TaggedProposal = (NodeId, NodeId, NodeId);

/// Up to two proposed edges, inline (no allocation on the per-node hot path).
///
/// One slot suffices for push/pull; the hybrid variant proposes both a push
/// and a pull edge in the same round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProposalSet {
    edges: [(NodeId, NodeId); 2],
    len: u8,
}

impl ProposalSet {
    /// No proposal this round.
    #[inline]
    pub fn empty() -> Self {
        ProposalSet::default()
    }

    /// A single proposed edge.
    #[inline]
    pub fn one(a: NodeId, b: NodeId) -> Self {
        ProposalSet {
            edges: [(a, b), (NodeId(0), NodeId(0))],
            len: 1,
        }
    }

    /// Two proposed edges.
    #[inline]
    pub fn two(e1: (NodeId, NodeId), e2: (NodeId, NodeId)) -> Self {
        ProposalSet {
            edges: [e1, e2],
            len: 2,
        }
    }

    /// Appends an edge.
    ///
    /// # Panics
    /// Panics if already holding two edges.
    #[inline]
    pub fn push(&mut self, e: (NodeId, NodeId)) {
        assert!(self.len < 2, "ProposalSet overflow");
        self.edges[self.len as usize] = e;
        self.len += 1;
    }

    /// Number of proposed edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no edge is proposed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The proposed edges.
    #[inline]
    pub fn as_slice(&self) -> &[(NodeId, NodeId)] {
        &self.edges[..self.len as usize]
    }
}

/// A graph the engine can run on: node enumeration + edge application.
pub trait GossipGraph: Clone + Send + Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Applies a proposed edge; returns `true` if the graph changed.
    /// Degenerate proposals (`a == b`) must be no-ops.
    fn apply_edge(&mut self, a: NodeId, b: NodeId) -> bool;
    /// Current edge/arc count.
    fn edge_count(&self) -> u64;

    /// Applies one whole round of proposals from the engine's flat
    /// pipeline: `bufs` are the per-chunk proposal buffers, concatenated
    /// in node order. `on_new(proposer, a, b)` fires once per edge that
    /// actually changed the graph, in proposal order.
    ///
    /// The default applies proposals one at a time in order — exactly the
    /// classic apply loop, so adjacency *insertion order* (the sampling
    /// surface of insertion-ordered backends like [`UndirectedGraph`]) is
    /// byte-for-byte what it always was. Backends with a canonical layout
    /// ([`ArenaGraph`]) override this with a batch sort + dedup merge.
    fn apply_proposals(
        &mut self,
        bufs: &[Vec<TaggedProposal>],
        on_new: &mut dyn FnMut(NodeId, NodeId, NodeId),
    ) -> RoundStats {
        let mut stats = RoundStats::default();
        for buf in bufs {
            for &(u, a, b) in buf {
                stats.proposed += 1;
                if self.apply_edge(a, b) {
                    stats.added += 1;
                    on_new(u, a, b);
                }
            }
        }
        stats
    }

    /// Removes member `u` for a [`MembershipPlan`](crate::MembershipPlan)
    /// leave event: every incident edge is deleted and `u`'s row retired,
    /// leaving the id addressable for a later
    /// [`GossipGraph::admit_member`]. Returns the number of edges removed.
    ///
    /// The default panics: dynamic membership is opt-in per backend (the
    /// undirected and arena-backed graphs support it; the directed variant
    /// does not participate in churn workloads).
    fn remove_member(&mut self, u: NodeId) -> u64 {
        let _ = u;
        unimplemented!("this graph backend does not support dynamic membership (remove_member)")
    }

    /// (Re-)admits member `u` for a join event: bootstrap edges
    /// `(u, c)` are added for every `c` in `contacts`. Returns the number
    /// of edges actually new. The default applies them one at a time
    /// through [`GossipGraph::apply_edge`], which every backend supports.
    fn admit_member(&mut self, u: NodeId, contacts: &[NodeId]) -> u64 {
        contacts.iter().map(|&v| self.apply_edge(u, v) as u64).sum()
    }
}

impl GossipGraph for UndirectedGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.n()
    }
    #[inline]
    fn apply_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_edge(a, b)
    }
    #[inline]
    fn edge_count(&self) -> u64 {
        self.m()
    }
    fn remove_member(&mut self, u: NodeId) -> u64 {
        self.remove_member(u)
    }
}

impl GossipGraph for DirectedGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.n()
    }
    #[inline]
    fn apply_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_arc(a, b)
    }
    #[inline]
    fn edge_count(&self) -> u64 {
        self.arc_count()
    }
}

impl GossipGraph for ArenaGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.n()
    }
    #[inline]
    fn apply_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_edge(a, b)
    }
    #[inline]
    fn edge_count(&self) -> u64 {
        self.m()
    }

    /// Whole-round batch apply: flatten the chunk buffers, then merge the
    /// round's candidates in one sort + dedup pass
    /// ([`ArenaGraph::apply_batch`]) instead of `O(n)` individual
    /// binary-search inserts that interleave badly with the sorted rows.
    /// Attribution (first proposer in node order wins) matches the default
    /// path exactly.
    fn apply_proposals(
        &mut self,
        bufs: &[Vec<TaggedProposal>],
        on_new: &mut dyn FnMut(NodeId, NodeId, NodeId),
    ) -> RoundStats {
        let mut flat: Vec<(NodeId, NodeId)> = Vec::with_capacity(bufs.iter().map(Vec::len).sum());
        let mut proposers: Vec<NodeId> = Vec::with_capacity(flat.capacity());
        for buf in bufs {
            for &(u, a, b) in buf {
                flat.push((a, b));
                proposers.push(u);
            }
        }
        let (proposed, added) = self.apply_batch(&flat, |slot, a, b| {
            on_new(proposers[slot], a, b);
        });
        RoundStats { proposed, added }
    }

    fn remove_member(&mut self, u: NodeId) -> u64 {
        self.remove_member(u)
    }
    fn admit_member(&mut self, u: NodeId, contacts: &[NodeId]) -> u64 {
        self.admit_member(u, contacts)
    }
}

/// The plain [`Engine`](crate::engine::Engine) can also drive the sharded
/// backend through the default one-at-a-time apply path — rows are sorted
/// and canonical, so the result is bit-identical to `ArenaGraph` and to the
/// mailbox-routed apply in `gossip-shard` (which is the point: the
/// sequential run is the oracle the sharded engine is pinned against).
impl GossipGraph for ShardedArenaGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.n()
    }
    #[inline]
    fn apply_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        self.add_edge(a, b)
    }
    #[inline]
    fn edge_count(&self) -> u64 {
        self.m()
    }
    fn remove_member(&mut self, u: NodeId) -> u64 {
        self.remove_member(u)
    }
    fn admit_member(&mut self, u: NodeId, contacts: &[NodeId]) -> u64 {
        self.admit_member(u, contacts)
    }
}

/// The per-node random choice of a gossip process.
///
/// Implementations must be pure given `(g, u, rng)`: all engine guarantees
/// (determinism, seq/par equivalence) follow from that purity.
pub trait ProposalRule<G: GossipGraph>: Send + Sync {
    /// Edges node `u` proposes while observing the round-start graph `g`.
    fn propose(&self, g: &G, u: NodeId, rng: &mut SmallRng) -> ProposalSet;

    /// Human-readable rule name for logs and result tables.
    fn name(&self) -> &'static str;
}

/// Statistics for one applied round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of edges proposed (including duplicates and no-ops).
    pub proposed: u64,
    /// Number of edges that were actually new.
    pub added: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposal_set_push_and_iter() {
        let mut p = ProposalSet::empty();
        assert!(p.is_empty());
        p.push((NodeId(1), NodeId(2)));
        p.push((NodeId(3), NodeId(4)));
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.as_slice(),
            &[(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))]
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn proposal_set_overflow() {
        let mut p = ProposalSet::two((NodeId(0), NodeId(1)), (NodeId(1), NodeId(2)));
        p.push((NodeId(2), NodeId(3)));
    }

    #[test]
    fn gossip_graph_undirected_apply() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.apply_edge(NodeId(0), NodeId(1)));
        assert!(!g.apply_edge(NodeId(1), NodeId(0)));
        assert!(!g.apply_edge(NodeId(2), NodeId(2)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn gossip_graph_directed_apply() {
        let mut g = DirectedGraph::new(3);
        assert!(g.apply_edge(NodeId(0), NodeId(1)));
        assert!(g.apply_edge(NodeId(1), NodeId(0)));
        assert!(!g.apply_edge(NodeId(1), NodeId(1)));
        assert_eq!(g.edge_count(), 2);
    }
}
