//! Monte Carlo trial batches.
//!
//! Convergence-time distributions are what every experiment reports, so the
//! crate ships one well-tested way to run `T` independent trials of the same
//! configuration: trial `t` gets seed `trial_seed(base_seed, t)`, its own
//! clone of the initial graph, and runs to convergence. Trials are
//! independent, so they parallelize across rayon with zero coordination;
//! within a trial the engine stays sequential (per-round work is O(n)).

use crate::builder::EngineBuilder;
use crate::convergence::ConvergenceCheck;
use crate::engine::{Parallelism, RunOutcome};
use crate::process::{GossipGraph, ProposalRule};
use crate::rng::trial_seed;
use rayon::prelude::*;

/// Configuration for a batch of independent trials.
#[derive(Clone, Copy, Debug)]
pub struct TrialConfig {
    /// Number of independent runs.
    pub trials: usize,
    /// Base seed; trial `t` derives its own seed from it.
    pub base_seed: u64,
    /// Per-trial round budget.
    pub max_rounds: u64,
    /// Run trials across rayon worker threads.
    pub parallel: bool,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            trials: 16,
            base_seed: 0x6055_1734,
            max_rounds: 100_000_000,
            parallel: true,
        }
    }
}

/// Runs `cfg.trials` independent trials of `rule` on clones of `g0`.
///
/// `make_check` builds a fresh convergence check per trial (checks may hold
/// state). Results are returned in trial order regardless of scheduling.
pub fn run_trials<G, R, C>(
    g0: &G,
    rule: R,
    make_check: impl Fn(&G) -> C + Sync,
    cfg: &TrialConfig,
) -> Vec<RunOutcome>
where
    G: GossipGraph,
    R: ProposalRule<G> + Clone,
    C: ConvergenceCheck<G>,
{
    let run_one = |t: usize| -> RunOutcome {
        let seed = trial_seed(cfg.base_seed, t);
        let mut check = make_check(g0);
        let mut engine = EngineBuilder::new(g0.clone(), rule.clone(), seed)
            .parallelism(Parallelism::Sequential)
            .build();
        engine.run_until(&mut check, cfg.max_rounds)
    };

    if cfg.parallel {
        (0..cfg.trials).into_par_iter().map(run_one).collect()
    } else {
        (0..cfg.trials).map(run_one).collect()
    }
}

/// Runs trials **one at a time**, streaming each [`RunOutcome`] to
/// `consume` as it completes instead of batching engines across workers.
///
/// This is the memory-bound entry point for giant-`n` configurations
/// (`gossip-bench`'s `exp_scale` sweeps to `n = 2^20`): at any instant
/// exactly one engine — one graph clone plus its proposal buffers — is
/// alive, so peak memory is `O(edges)`, not `O(workers · edges)` like the
/// parallel batch path, and nothing accumulates with the trial count.
/// Within the trial the engine still honors `parallelism` for its propose
/// phase, so single-trial throughput is unchanged. Outcomes arrive in
/// trial order and are bit-identical to [`run_trials`] on the same config
/// (both derive trial `t`'s seed the same way).
pub fn stream_trials<G, R, C>(
    g0: &G,
    rule: R,
    make_check: impl Fn(&G) -> C,
    cfg: &TrialConfig,
    parallelism: Parallelism,
    mut consume: impl FnMut(usize, RunOutcome),
) where
    G: GossipGraph,
    R: ProposalRule<G> + Clone,
    C: ConvergenceCheck<G>,
{
    for t in 0..cfg.trials {
        let seed = trial_seed(cfg.base_seed, t);
        let mut check = make_check(g0);
        let mut engine = EngineBuilder::new(g0.clone(), rule.clone(), seed)
            .parallelism(parallelism)
            .build();
        let outcome = engine.run_until(&mut check, cfg.max_rounds);
        consume(t, outcome);
    }
}

/// Convergence rounds of each trial; panics if any trial failed to converge
/// (use [`run_trials`] directly to handle censored runs).
pub fn convergence_rounds<G, R, C>(
    g0: &G,
    rule: R,
    make_check: impl Fn(&G) -> C + Sync,
    cfg: &TrialConfig,
) -> Vec<u64>
where
    G: GossipGraph,
    R: ProposalRule<G> + Clone,
    C: ConvergenceCheck<G>,
{
    run_trials(g0, rule, make_check, cfg)
        .into_iter()
        .enumerate()
        .map(|(t, o)| {
            assert!(
                o.converged,
                "trial {t} did not converge within {} rounds (final edges {})",
                cfg.max_rounds, o.final_edges
            );
            o.rounds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ComponentwiseComplete;
    use crate::rules::{Pull, Push};
    use gossip_graph::generators;

    #[test]
    fn trials_are_deterministic_in_base_seed() {
        let g = generators::star(12);
        let cfg = TrialConfig {
            trials: 8,
            base_seed: 77,
            max_rounds: 1_000_000,
            parallel: false,
        };
        let a = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
        let b = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_batches_agree() {
        let g = generators::cycle(10);
        let mut cfg = TrialConfig {
            trials: 6,
            base_seed: 5,
            max_rounds: 1_000_000,
            parallel: false,
        };
        let seq = convergence_rounds(&g, Pull, ComponentwiseComplete::for_graph, &cfg);
        cfg.parallel = true;
        let par = convergence_rounds(&g, Pull, ComponentwiseComplete::for_graph, &cfg);
        assert_eq!(seq, par);
    }

    #[test]
    fn trials_vary_across_index() {
        let g = generators::star(16);
        let cfg = TrialConfig {
            trials: 10,
            base_seed: 1,
            max_rounds: 1_000_000,
            parallel: true,
        };
        let rounds = convergence_rounds(&g, Push, ComponentwiseComplete::for_graph, &cfg);
        // Convergence time is random: 10 trials on a 16-star should not all
        // coincide.
        assert!(rounds.iter().any(|&r| r != rounds[0]), "{rounds:?}");
    }

    #[test]
    fn censored_runs_reported_not_panicking() {
        let g = generators::path(40);
        let cfg = TrialConfig {
            trials: 3,
            base_seed: 2,
            max_rounds: 1, // way too small
            parallel: false,
        };
        let out = run_trials(&g, Push, ComponentwiseComplete::for_graph, &cfg);
        assert!(out.iter().all(|o| !o.converged));
        assert!(out.iter().all(|o| o.rounds == 1));
    }
}
